"""repro — a reproduction of *Fast Algorithms for Projected Clustering*
(PROCLUS; Aggarwal, Procopiuc, Wolf, Yu, Park; SIGMOD 1999).

The package provides:

* :mod:`repro.core` — the PROCLUS algorithm (the paper's contribution);
* :mod:`repro.baselines` — CLIQUE, CLARANS/PAM k-medoids, k-means, and a
  global feature-selection baseline, all implemented from scratch;
* :mod:`repro.data` — the paper's synthetic workload generator and IO;
* :mod:`repro.distance` — Lp and Manhattan-segmental distances;
* :mod:`repro.metrics` — confusion matrices, overlap, dimension
  recovery, and external/internal validity indices;
* :mod:`repro.experiments` — runnable reproductions of every table and
  figure in the paper's evaluation section;
* :mod:`repro.robustness` — input sanitization, wall-clock/memory
  guards, the graceful-degradation ladder, and a fault-injection
  harness for chaos testing;
* :mod:`repro.obs` — structured observability: phase tracing, counters,
  profiling hooks, and a stdlib-logging bridge (off by default; results
  are bit-identical with tracing on).

Quickstart::

    from repro import Proclus, generate
    ds = generate(5000, 20, 5, cluster_dim_counts=[7] * 5, seed=1)
    result = Proclus(k=5, l=7, seed=1).fit(ds.points)
    print(result.summary())
"""

from __future__ import annotations

from .core import (
    PredictReport,
    Proclus,
    ProclusConfig,
    ProclusResult,
    load_result,
    load_result_with_fingerprint,
    predict_points,
    proclus,
    result_fingerprint,
    save_result,
)
from .data import Dataset, OUTLIER_LABEL, SyntheticConfig, generate
from .exceptions import (
    BudgetExceededError,
    CheckpointError,
    ConvergenceWarning,
    DataError,
    DegenerateDataError,
    NotFittedError,
    ParameterError,
    ReproError,
    SanitizationWarning,
    ServeError,
)
from .obs import Tracer, get_tracer, use_tracer
from .robustness import FaultPlan, SanitizationReport, sanitize

__version__ = "1.0.0"

__all__ = [
    "Proclus",
    "proclus",
    "ProclusConfig",
    "ProclusResult",
    "PredictReport",
    "predict_points",
    "save_result",
    "load_result",
    "load_result_with_fingerprint",
    "result_fingerprint",
    "Dataset",
    "OUTLIER_LABEL",
    "SyntheticConfig",
    "generate",
    "sanitize",
    "SanitizationReport",
    "FaultPlan",
    "Tracer",
    "get_tracer",
    "use_tracer",
    "ReproError",
    "ParameterError",
    "DataError",
    "DegenerateDataError",
    "NotFittedError",
    "BudgetExceededError",
    "CheckpointError",
    "ServeError",
    "ConvergenceWarning",
    "SanitizationWarning",
    "__version__",
]
