"""Point assignment (paper Figure 5).

Every point goes to the medoid with the smallest **Manhattan segmental
distance** relative to that medoid's dimension set ``D_i`` — a single
pass over the database.  The batch form below computes the full
``(N, k)`` segmental-distance matrix through the vectorised
multi-medoid kernel (:func:`repro.perf.kernels.segmental_columns` —
one gather over a concatenated dims layout plus ``np.add.reduceat``,
``O(N * k * l)`` work) and also backs the refinement phase's outlier
test.  During hill climbing an
:class:`~repro.perf.cache.IterativeCache` can reuse the columns of
medoids that kept both their row and their dimension set since the
previous vertex.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ParameterError
from ..perf.kernels import segmental_columns
from ..validation import check_array, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..perf.cache import IterativeCache

__all__ = ["segmental_distance_matrix", "assign_points",
           "assign_points_chunked"]


def segmental_distance_matrix(X: np.ndarray, medoids: np.ndarray,
                              dim_sets: Sequence[Sequence[int]], *,
                              cache: Optional["IterativeCache"] = None,
                              medoid_indices: Optional[np.ndarray] = None) -> np.ndarray:
    """``(N, k)`` matrix of segmental distances to each medoid.

    Column ``i`` uses medoid ``i``'s own dimension set ``D_i``, as the
    paper's assignment requires.  When ``cache`` *and* the medoids' row
    indices into ``X`` are provided, columns are served from the cache
    where possible (bit-identical to the direct computation).
    """
    X = check_array(X, name="X")
    medoids = np.atleast_2d(np.asarray(medoids, dtype=X.dtype))
    k = medoids.shape[0]
    if len(dim_sets) != k:
        raise ParameterError(
            f"need one dimension set per medoid; got {len(dim_sets)} for k={k}"
        )
    if cache is not None and medoid_indices is not None:
        return cache.segmental_matrix(X, medoid_indices, dim_sets)
    return segmental_columns(X, medoids, dim_sets)


def assign_points(X: np.ndarray, medoids: np.ndarray,
                  dim_sets: Sequence[Sequence[int]],
                  return_distances: bool = False, *,
                  cache: Optional["IterativeCache"] = None,
                  medoid_indices: Optional[np.ndarray] = None,
                  ) -> Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """Assign every point to its segmentally-closest medoid.

    Returns the label array (ids ``0..k-1``); with
    ``return_distances=True`` also returns the ``(N, k)`` distance
    matrix so callers (objective evaluation, outlier detection) can
    reuse it without a second pass.  ``cache``/``medoid_indices`` are
    forwarded to :func:`segmental_distance_matrix`.
    """
    dist = segmental_distance_matrix(X, medoids, dim_sets,
                                     cache=cache,
                                     medoid_indices=medoid_indices)
    labels = np.argmin(dist, axis=1).astype(np.int64)
    if return_distances:
        return labels, dist
    return labels


def assign_points_chunked(X: np.ndarray, medoids: np.ndarray,
                          dim_sets: Sequence[Sequence[int]],
                          chunk_size: int = 65536) -> np.ndarray:
    """Streaming variant of :func:`assign_points` with bounded memory.

    The paper's assignment is "a single pass over the database"; this
    variant makes the single-pass structure literal by processing
    ``chunk_size`` points at a time, holding only ``O(chunk_size * k)``
    distance entries.  Results are identical to :func:`assign_points`.
    """
    X = check_array(X, name="X")
    check_positive_int(chunk_size, name="chunk_size", minimum=1)
    labels = np.empty(X.shape[0], dtype=np.int64)
    for start in range(0, X.shape[0], chunk_size):
        stop = min(start + chunk_size, X.shape[0])
        labels[start:stop] = assign_points(X[start:stop], medoids, dim_sets)
    return labels
