"""Point assignment (paper Figure 5).

Every point goes to the medoid with the smallest **Manhattan segmental
distance** relative to that medoid's dimension set ``D_i`` — a single
pass over the database.  The batch form below computes the full
``(N, k)`` segmental-distance matrix one medoid-column at a time
(``O(N * k * l)`` work, ``O(N)`` extra memory per column) and also backs
the refinement phase's outlier test.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..distance.segmental import segmental_distances_to_point
from ..exceptions import ParameterError
from ..validation import check_array, check_positive_int

__all__ = ["segmental_distance_matrix", "assign_points",
           "assign_points_chunked"]


def segmental_distance_matrix(X: np.ndarray, medoids: np.ndarray,
                              dim_sets: Sequence[Sequence[int]]) -> np.ndarray:
    """``(N, k)`` matrix of segmental distances to each medoid.

    Column ``i`` uses medoid ``i``'s own dimension set ``D_i``, as the
    paper's assignment requires.
    """
    X = check_array(X, name="X")
    medoids = np.atleast_2d(np.asarray(medoids, dtype=np.float64))
    k = medoids.shape[0]
    if len(dim_sets) != k:
        raise ParameterError(
            f"need one dimension set per medoid; got {len(dim_sets)} for k={k}"
        )
    out = np.empty((X.shape[0], k), dtype=np.float64)
    for i in range(k):
        out[:, i] = segmental_distances_to_point(X, medoids[i], dim_sets[i])
    return out


def assign_points(X: np.ndarray, medoids: np.ndarray,
                  dim_sets: Sequence[Sequence[int]],
                  return_distances: bool = False):
    """Assign every point to its segmentally-closest medoid.

    Returns the label array (ids ``0..k-1``); with
    ``return_distances=True`` also returns the ``(N, k)`` distance
    matrix so callers (objective evaluation, outlier detection) can
    reuse it without a second pass.
    """
    dist = segmental_distance_matrix(X, medoids, dim_sets)
    labels = np.argmin(dist, axis=1).astype(np.int64)
    if return_distances:
        return labels, dist
    return labels


def assign_points_chunked(X: np.ndarray, medoids: np.ndarray,
                          dim_sets: Sequence[Sequence[int]],
                          chunk_size: int = 65536) -> np.ndarray:
    """Streaming variant of :func:`assign_points` with bounded memory.

    The paper's assignment is "a single pass over the database"; this
    variant makes the single-pass structure literal by processing
    ``chunk_size`` points at a time, holding only ``O(chunk_size * k)``
    distance entries.  Results are identical to :func:`assign_points`.
    """
    X = check_array(X, name="X")
    check_positive_int(chunk_size, name="chunk_size", minimum=1)
    labels = np.empty(X.shape[0], dtype=np.int64)
    for start in range(0, X.shape[0], chunk_size):
        stop = min(start + chunk_size, X.shape[0])
        labels[start:stop] = assign_points(X[start:stop], medoids, dim_sets)
    return labels
