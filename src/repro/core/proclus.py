"""Public PROCLUS API: estimator class and one-call function.

Example
-------
>>> from repro.data import generate
>>> from repro.core import Proclus
>>> ds = generate(2000, 20, 5, cluster_dim_counts=[7] * 5, seed=7)
>>> result = Proclus(k=5, l=7, seed=7).fit(ds.points)
>>> sorted(result.cluster_sizes().values())  # doctest: +SKIP
[...]
"""

from __future__ import annotations

import warnings as _warnings
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.dataset import Dataset
from ..distance.base import Metric
from ..exceptions import (
    DataError,
    NotFittedError,
    ParameterError,
    SanitizationWarning,
)
from ..obs import get_tracer, maybe_trace, monotonic_s
from ..perf.cache import IterativeCache
from ..perf.parallel import resolve_n_jobs
from ..rng import SeedLike, ensure_rng, spawn
from ..robustness.fallback import kmedoids_fallback, plan_degradation
from ..robustness.guards import Deadline
from ..robustness.sanitize import SanitizationReport, sanitize
from ..validation import (check_array, check_dtype, check_max_retries,
                          check_n_jobs, check_time_budget)
from .assignment import assign_points
from .config import ProclusConfig
from .initialization import initialize_medoid_pool
from .iterative import run_iterative_phase
from .objective import evaluate_clusters
from .refinement import refine_clusters
from .result import ProclusResult

__all__ = ["Proclus", "proclus"]


def _fit(X: np.ndarray, k: int, l: float, *,
         sample_factor: int, pool_factor: int, min_deviation: float,
         max_bad_tries: int, max_iterations: int,
         metric: Union[str, Metric], min_dims_per_cluster: int,
         handle_outliers: bool, keep_history: bool, restarts: int,
         fit_sample_size: Optional[int], seed: SeedLike,
         deadline: Optional[Deadline],
         exclude_dims: Sequence[int],
         notes: List[str], cache: bool = True,
         n_jobs: int = 1, max_retries: int = 2,
         restart_timeout_s: Optional[float] = None,
         checkpoint_dir: Optional[str] = None,
         resume: bool = False,
         profile: bool = False,
         dtype: str = "float64") -> ProclusResult:
    """Fit on already-sanitized data (the body behind :func:`proclus`).

    ``X`` arrives already converted to ``dtype`` by the public
    boundary; the parameter is threaded so restart workers, checkpoint
    fingerprints, and the validated config all agree on the precision.
    """
    tracer = get_tracer()
    if restarts > 1:
        # Multi-restart runs execute under the fault-tolerant supervisor
        # (crash retry, hang replacement, checkpoint/resume, signal-safe
        # shutdown); both its loops reduce the winner by the
        # order-independent key (iterative_objective, restart_index),
        # which equals the historical serial first-best-wins choice.
        from ..robustness.supervisor import (RunCheckpoint,
                                             run_serial_restarts,
                                             supervise_restarts)

        rng = ensure_rng(seed)
        children = spawn(rng, restarts)
        fit_kwargs = dict(
            k=k, l=l,
            sample_factor=sample_factor, pool_factor=pool_factor,
            min_deviation=min_deviation,
            max_bad_tries=max_bad_tries,
            max_iterations=max_iterations, metric=metric,
            min_dims_per_cluster=min_dims_per_cluster,
            handle_outliers=handle_outliers,
            keep_history=keep_history,
            fit_sample_size=fit_sample_size,
            exclude_dims=exclude_dims, cache=cache,
            dtype=dtype,
        )
        checkpoint = None
        if checkpoint_dir is not None:
            checkpoint = RunCheckpoint.open(
                checkpoint_dir, children=children,
                fit_kwargs=fit_kwargs, resume=resume,
            )
        fan_t0 = monotonic_s()
        with tracer.span("restarts", restarts=restarts, n_jobs=n_jobs):
            if resolve_n_jobs(n_jobs, n_tasks=restarts) > 1:
                outcome = supervise_restarts(
                    X, children, n_jobs=n_jobs, deadline=deadline,
                    fit_kwargs=fit_kwargs, max_retries=max_retries,
                    restart_timeout_s=restart_timeout_s,
                    checkpoint=checkpoint, profile=profile,
                )
            else:
                outcome = run_serial_restarts(
                    X, children, deadline=deadline, fit_kwargs=fit_kwargs,
                    checkpoint=checkpoint,
                )
        best = outcome.best
        # only the winning child's notes survive, as in the historical
        # serial loop; losers' notes describe runs that were discarded
        notes.extend(outcome.winner_notes)
        if outcome.interrupted:
            notes.append(
                f"interrupted by signal after {outcome.completed} of "
                f"{restarts} restarts; returning the best completed run"
            )
            best.terminated_by = "signal"
        elif outcome.cancelled:
            notes.append(
                f"time budget exhausted after {outcome.completed} of "
                f"{restarts} restarts; returning the best completed run"
            )
        best.parallelism = {
            "n_jobs": n_jobs,
            "n_workers": outcome.n_workers,
            "restarts_completed": outcome.completed,
            "restart_seconds": outcome.restart_seconds,
            "wall_seconds": monotonic_s() - fan_t0,
        }
        ft = outcome.fault_tolerance
        if ft is not None and not (
            checkpoint is not None or outcome.interrupted
            or any(ft[key] for key in (
                "retries", "respawns", "timeouts", "corrupt_payloads",
                "salvaged_serial", "resumed_from"))
        ):
            ft = None  # an uneventful run reports no fault diagnostics
        best.fault_tolerance = ft
        return best

    if fit_sample_size is not None and fit_sample_size < X.shape[0]:
        if fit_sample_size < max(sample_factor, pool_factor) * k:
            raise ParameterError(
                f"fit_sample_size={fit_sample_size} is smaller than the "
                f"initialization needs (A*k = {sample_factor * k})"
            )
        rng = ensure_rng(seed)
        rng_sample, rng_fit = spawn(rng, 2)
        sample_idx = rng_sample.choice(
            X.shape[0], size=fit_sample_size, replace=False,
        )
        t0 = monotonic_s()
        with tracer.phase("sample_fit", sample_size=fit_sample_size):
            sub = _fit(
                X[sample_idx], k, l,
                sample_factor=sample_factor, pool_factor=pool_factor,
                min_deviation=min_deviation, max_bad_tries=max_bad_tries,
                max_iterations=max_iterations, metric=metric,
                min_dims_per_cluster=min_dims_per_cluster,
                handle_outliers=False, keep_history=keep_history,
                restarts=1, fit_sample_size=None, seed=rng_fit,
                deadline=deadline, exclude_dims=exclude_dims, notes=notes,
                cache=cache, n_jobs=n_jobs, dtype=dtype,
            )
        t_sample_fit = monotonic_s() - t0
        # refinement over the FULL database with the sample's medoids.
        # The sample fit's cache is bound to the subsample, so the full
        # pass gets a fresh one (assignment + refinement share columns
        # for medoids whose dimension set survives).
        t0 = monotonic_s()
        with tracer.phase("refinement"):
            cache_obj = IterativeCache() if cache else None
            medoid_indices = sample_idx[sub.medoid_indices]
            dim_sets = [sub.dimensions[i] for i in range(k)]
            full_labels = assign_points(X, X[medoid_indices], dim_sets,
                                        cache=cache_obj,
                                        medoid_indices=medoid_indices)
            refined = refine_clusters(
                X, full_labels, medoid_indices, l,
                min_dims_per_cluster=min_dims_per_cluster,
                fallback_dims=dim_sets,
                handle_outliers=handle_outliers,
                exclude_dims=exclude_dims,
                cache=cache_obj,
            )
            objective = evaluate_clusters(X, refined.labels, refined.dim_sets)
        return ProclusResult(
            labels=refined.labels,
            medoids=X[medoid_indices],
            medoid_indices=medoid_indices,
            dimensions={i: d for i, d in enumerate(refined.dim_sets)},
            objective=float(objective),
            iterative_objective=sub.iterative_objective,
            n_iterations=sub.n_iterations,
            n_improvements=sub.n_improvements,
            objective_history=sub.objective_history,
            phase_seconds={
                "sample_fit": t_sample_fit,
                "refinement": monotonic_s() - t0,
            },
            terminated_by=sub.terminated_by,
            cache_stats=(cache_obj.stats_dict()
                         if cache_obj is not None else None),
        )

    config = ProclusConfig(
        k=k, l=l, sample_factor=sample_factor, pool_factor=pool_factor,
        min_deviation=min_deviation, max_bad_tries=max_bad_tries,
        max_iterations=max_iterations, metric=metric,
        min_dims_per_cluster=min_dims_per_cluster,
        time_budget_s=deadline.budget_s if deadline is not None else None,
        cache=cache,
        n_jobs=n_jobs,
        dtype=dtype,
        seed=seed,
    ).validated(X.shape[0], X.shape[1])

    rng = ensure_rng(config.seed)
    rng_init, rng_iter = spawn(rng, 2)

    # Phase 1: initialization ------------------------------------------
    t0 = monotonic_s()
    with tracer.phase("initialization", sample_size=config.sample_size,
                      pool_size=config.pool_size):
        pool = initialize_medoid_pool(
            X, config.sample_size, config.pool_size,
            metric=config.metric, seed=rng_init,
        )
    t_init = monotonic_s() - t0

    # Phase 2: iterative hill climbing ---------------------------------
    cache_obj = IterativeCache() if config.cache else None
    phase2 = run_iterative_phase(
        X, pool, config.k, config.l,
        metric=config.metric,
        min_deviation=config.min_deviation,
        max_bad_tries=config.max_bad_tries,
        max_iterations=config.max_iterations,
        min_dims_per_cluster=config.min_dims_per_cluster,
        seed=rng_iter,
        keep_history=keep_history,
        deadline=deadline,
        exclude_dims=exclude_dims,
        cache=cache_obj,
    )

    # Phase 3: refinement ----------------------------------------------
    t0 = monotonic_s()
    with tracer.phase("refinement"):
        refined = refine_clusters(
            X, phase2.labels, phase2.medoid_indices, config.l,
            min_dims_per_cluster=config.min_dims_per_cluster,
            fallback_dims=phase2.dim_sets,
            handle_outliers=handle_outliers,
            exclude_dims=exclude_dims,
            cache=cache_obj,
        )
        final_objective = evaluate_clusters(X, refined.labels,
                                            refined.dim_sets)
    t_refine = monotonic_s() - t0

    return ProclusResult(
        labels=refined.labels,
        medoids=X[phase2.medoid_indices],
        medoid_indices=phase2.medoid_indices,
        dimensions={i: dims for i, dims in enumerate(refined.dim_sets)},
        objective=float(final_objective),
        iterative_objective=float(phase2.objective),
        n_iterations=phase2.n_iterations,
        n_improvements=phase2.n_improvements,
        objective_history=phase2.objective_history,
        phase_seconds={
            "initialization": t_init,
            "iterative": phase2.seconds,
            "refinement": t_refine,
        },
        terminated_by=phase2.terminated_by,
        cache_stats=(cache_obj.stats_dict()
                     if cache_obj is not None else None),
    )


def proclus(X: Union[np.ndarray, Dataset], k: int, l: float, *,
            sample_factor: int = 30, pool_factor: int = 5,
            min_deviation: float = 0.1, max_bad_tries: int = 20,
            max_iterations: int = 300,
            metric: Union[str, Metric] = "euclidean",
            min_dims_per_cluster: int = 2,
            handle_outliers: bool = True,
            keep_history: bool = True,
            restarts: int = 1,
            fit_sample_size: Optional[int] = None,
            on_bad_values: str = "raise",
            collapse_duplicates: bool = False,
            auto_degrade: bool = False,
            time_budget_s: Optional[float] = None,
            cache: bool = True,
            n_jobs: int = 1,
            max_retries: int = 2,
            restart_timeout_s: Optional[float] = None,
            checkpoint_dir: Optional[str] = None,
            resume: bool = False,
            profile: bool = False,
            dtype: str = "float64",
            seed: SeedLike = None) -> ProclusResult:
    """Run PROCLUS end-to-end and return a :class:`ProclusResult`.

    Parameters
    ----------
    X:
        Data matrix ``(N, d)`` or a :class:`~repro.data.Dataset`.
    k, l:
        Number of clusters and average cluster dimensionality.
    handle_outliers:
        Disable to keep every point assigned (ablation hook; the paper
        always detects outliers in the refinement pass).
    restarts:
        Run the whole pipeline this many times with independent random
        streams and keep the run with the lowest *iterative-phase*
        objective.  The hill climbing is a randomised local search and
        can converge with two medoids piercing one natural cluster; the
        paper's own remedy (section 4.3) is to "simply run the
        algorithm a few times".  Selection uses the iterative objective
        because the refined one shrinks artificially when a bad
        solution declares many points outliers.
    fit_sample_size:
        CLARA-style large-database mode: run the initialization and the
        hill climbing on a uniform subsample of this size, then perform
        the refinement pass (dimension recomputation, assignment,
        outlier detection) over the *full* data.  Cuts the per-iteration
        O(N·k·d) cost to O(sample·k·d) while the final clustering still
        covers every point.  ``None`` (default) uses all points
        throughout, as the paper does.  Composes with ``restarts``:
        every restart runs in large-database mode on its own subsample.
    on_bad_values:
        Policy for NaN/inf cells: ``"raise"`` (default — the historical
        behaviour), ``"drop"``, ``"impute_median"``, or ``"clip"``.  Any
        value other than ``"raise"`` runs the sanitization pipeline; the
        returned labels are always in *original* row indexing, with
        dropped rows labelled ``-1``.
    collapse_duplicates:
        Collapse exact duplicate rows before fitting; every duplicate
        inherits its representative's label in the returned result.
    auto_degrade:
        Enable the graceful-degradation ladder for degenerate inputs:
        ``k`` is reduced below the number of distinct points, infeasible
        ``l``/pool factors are clamped, constant dimensions are excluded
        from the Z-score ranking, and — when projected clustering is
        impossible — the full-dimensional
        :func:`~repro.robustness.kmedoids_fallback` is used.  Every
        adjustment is recorded on ``result.warnings`` and flips
        ``result.degraded``.  Default off: degenerate inputs raise, as
        before.
    time_budget_s:
        Wall-clock budget for the whole fit.  On expiry the hill
        climbing returns best-so-far with
        ``result.terminated_by == "deadline"`` (the first iteration
        always completes); remaining restarts are skipped.
    cache:
        Enable the incremental per-medoid distance cache
        (:class:`~repro.perf.cache.IterativeCache`, default on): each
        hill-climbing vertex recomputes only the columns its medoid
        swaps invalidated, bounded in memory by the same budget the
        distance kernels honour.  Results are bit-identical with the
        cache on or off; hit statistics land on
        ``result.cache_stats``.  See ``docs/performance.md``.
    n_jobs:
        Worker count for the deterministic parallel execution layer
        (:mod:`repro.perf.parallel`).  ``1`` (default) is the exact
        serial code path; ``>= 2`` fans ``restarts > 1`` out over that
        many processes, sharing the sanitized data matrix through a
        zero-copy shared-memory plane; ``-1`` uses all cores.  Results
        are bit-identical to the serial loop for any ``n_jobs``: child
        seeds are spawned in the parent and the winner is reduced by
        ``(iterative_objective, restart_index)``, which is
        order-independent.  Worker/timing diagnostics land on
        ``result.parallelism``.  Each worker builds its own
        :class:`~repro.perf.cache.IterativeCache` when ``cache=True``.
    max_retries:
        Per-restart retry budget under the fault-tolerant supervisor
        that runs every multi-restart fit: a crashed or hung worker's
        restart is resubmitted (replaying the identical seed stream, so
        retries are bit-deterministic) up to this many times, then
        degrades to the in-process serial loop.  ``0`` disables
        retries.  Diagnostics land on ``result.fault_tolerance``.
    restart_timeout_s:
        Wall-clock cap per restart in the parallel fan-out; an
        in-flight restart exceeding it is treated as hung and charged a
        retry.  ``None`` (default) disables hang detection.
    checkpoint_dir:
        Persist every completed restart of a multi-restart fit to this
        directory (atomic write-temp-then-rename).  An interrupted run
        — SIGINT/SIGTERM returns best-so-far with
        ``result.terminated_by == "signal"`` — can then be resumed.
    resume:
        Resume from ``checkpoint_dir``: completed restarts are loaded
        and skipped, and the final result is bit-identical to an
        uninterrupted run.  A manifest recorded by a different run
        (other seed, restarts, or parameters) raises
        :class:`~repro.exceptions.CheckpointError`.
    profile:
        Record a structured observability profile of the fit
        (:mod:`repro.obs`): per-phase wall seconds, hot-path counters,
        and the span/event tree land on ``result.profile`` (a JSON-safe
        dict that survives ``to_dict``/``save_result``/``load_result``).
        Tracing never perturbs the clustering — results are
        bit-identical with ``profile`` on or off.  When a tracer is
        already installed via :func:`repro.obs.use_tracer`, it is used
        (and keeps the raw records) instead of a fresh one.  With
        parallel restarts each worker traces its own fit and the
        winner's worker-side profile is embedded under
        ``result.profile["winner"]``.  Default off: the no-op tracer
        costs nothing measurable.
    dtype:
        Working dtype of the compute path: ``"float64"`` (default) or
        ``"float32"``.  The input is converted **once** at this
        boundary; every kernel downstream — segmental columns, cross
        distances, the cache's stored columns, the shared-memory fan-out
        — then computes natively in that dtype, halving bytes moved for
        float32 (ranking statistics still accumulate in float64; see
        ``docs/performance.md``).  ``"float64"`` runs are bit-identical
        to the historical path; ``"float32"`` runs are deterministically
        reproducible within the dtype but not bit-comparable across
        dtypes (checkpoints record the dtype and refuse to resume a
        run of the other precision).

    Other parameters are documented on
    :class:`~repro.core.config.ProclusConfig`.
    """
    if isinstance(X, Dataset):
        X = X.points
    if restarts < 1:
        raise ParameterError(f"restarts must be >= 1; got {restarts}")
    n_jobs = check_n_jobs(n_jobs)
    max_retries = check_max_retries(max_retries)
    dtype = check_dtype(dtype)
    restart_timeout_s = check_time_budget(
        restart_timeout_s, name="restart_timeout_s")
    if resume and checkpoint_dir is None:
        raise ParameterError("resume=True requires checkpoint_dir to be set")
    deadline = Deadline.start(time_budget_s) if time_budget_s is not None else None

    notes: List[str] = []
    report: Optional[SanitizationReport] = None
    exclude_dims: Tuple[int, ...] = ()
    degraded = False

    with maybe_trace(profile) as tracer:
        if on_bad_values != "raise" or collapse_duplicates or auto_degrade:
            with tracer.span("sanitize"):
                X, report = sanitize(
                    X, on_bad_values=on_bad_values,
                    collapse_duplicates=collapse_duplicates, warn=False,
                    dtype=dtype,
                )
            notes.extend(report.messages)
            degraded = degraded or report.changed
        else:
            # the single sanctioned conversion point: everything below
            # computes natively in the working dtype
            X = check_array(X, name="X", dtype=np.dtype(dtype))

        use_kmedoids = False
        if auto_degrade:
            plan = plan_degradation(
                X, k, l, sample_factor, pool_factor,
                min_dims_per_cluster=min_dims_per_cluster,
                constant_dims=(report.constant_dims
                               if report is not None else ()),
            )
            notes.extend(plan.messages)
            degraded = degraded or plan.degraded
            k, l = plan.k, plan.l
            sample_factor, pool_factor = plan.sample_factor, plan.pool_factor
            exclude_dims = plan.exclude_dims
            use_kmedoids = plan.use_kmedoids
            if tracer.enabled and plan.degraded:
                tracer.event("degradation_planned", k=plan.k, l=plan.l,
                             use_kmedoids=plan.use_kmedoids,
                             n_excluded_dims=len(plan.exclude_dims))

        if use_kmedoids:
            result = kmedoids_fallback(X, k, seed=seed, metric=metric)
        else:
            try:
                result = _fit(
                    X, k, l,
                    sample_factor=sample_factor, pool_factor=pool_factor,
                    min_deviation=min_deviation, max_bad_tries=max_bad_tries,
                    max_iterations=max_iterations, metric=metric,
                    min_dims_per_cluster=min_dims_per_cluster,
                    handle_outliers=handle_outliers,
                    keep_history=keep_history,
                    restarts=restarts, fit_sample_size=fit_sample_size,
                    seed=seed, deadline=deadline, exclude_dims=exclude_dims,
                    notes=notes, cache=cache, n_jobs=n_jobs,
                    max_retries=max_retries,
                    restart_timeout_s=restart_timeout_s,
                    checkpoint_dir=checkpoint_dir, resume=resume,
                    profile=profile, dtype=dtype,
                )
            except (ParameterError, DataError) as exc:
                if not auto_degrade:
                    raise
                notes.append(
                    f"PROCLUS infeasible on this input ({exc}); falling "
                    "back to full-dimensional k-medoids"
                )
                degraded = True
                tracer.event("kmedoids_fallback", reason=str(exc))
                result = kmedoids_fallback(X, k, seed=seed, metric=metric)

        if report is not None and report.changed:
            result.labels = report.restore_labels(result.labels)
            result.medoid_indices = report.restore_indices(
                result.medoid_indices)
        result.sanitization = report
        result.warnings = list(result.warnings) + notes
        result.degraded = bool(result.degraded or degraded)
        if tracer.enabled:
            # keep the worker-side profile of a parallel winner nested
            # under the coordinating process's own profile
            winner_profile = result.profile
            result.profile = tracer.profile()
            if winner_profile is not None:
                result.profile["winner"] = winner_profile
    for msg in notes:
        _warnings.warn(msg, SanitizationWarning, stacklevel=2)
    return result


class Proclus:
    """Estimator-style wrapper with ``fit`` / ``fit_predict`` / ``predict``.

    Parameters match :func:`proclus`.  After :meth:`fit`, the fitted
    :class:`~repro.core.result.ProclusResult` is available as
    :attr:`result_`, with convenience mirrors :attr:`labels_`,
    :attr:`medoids_`, and :attr:`dimensions_`.
    """

    def __init__(self, k: int, l: float, *,
                 sample_factor: int = 30, pool_factor: int = 5,
                 min_deviation: float = 0.1, max_bad_tries: int = 20,
                 max_iterations: int = 300,
                 metric: Union[str, Metric] = "euclidean",
                 min_dims_per_cluster: int = 2,
                 handle_outliers: bool = True,
                 keep_history: bool = True,
                 restarts: int = 1,
                 fit_sample_size: Optional[int] = None,
                 on_bad_values: str = "raise",
                 collapse_duplicates: bool = False,
                 auto_degrade: bool = False,
                 time_budget_s: Optional[float] = None,
                 cache: bool = True,
                 n_jobs: int = 1,
                 max_retries: int = 2,
                 restart_timeout_s: Optional[float] = None,
                 checkpoint_dir: Optional[str] = None,
                 resume: bool = False,
                 profile: bool = False,
                 dtype: str = "float64",
                 seed: SeedLike = None) -> None:
        self.k = k
        self.l = l
        self.sample_factor = sample_factor
        self.pool_factor = pool_factor
        self.min_deviation = min_deviation
        self.max_bad_tries = max_bad_tries
        self.max_iterations = max_iterations
        self.metric = metric
        self.min_dims_per_cluster = min_dims_per_cluster
        self.handle_outliers = handle_outliers
        self.keep_history = keep_history
        self.restarts = restarts
        self.fit_sample_size = fit_sample_size
        self.on_bad_values = on_bad_values
        self.collapse_duplicates = collapse_duplicates
        self.auto_degrade = auto_degrade
        self.time_budget_s = time_budget_s
        self.cache = cache
        self.n_jobs = n_jobs
        self.max_retries = max_retries
        self.restart_timeout_s = restart_timeout_s
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.profile = profile
        self.dtype = dtype
        self.seed = seed
        self.result_: Optional[ProclusResult] = None

    # ------------------------------------------------------------------
    def fit(self, X: Union[np.ndarray, Dataset]) -> "Proclus":
        """Cluster ``X`` (array or Dataset); returns ``self``."""
        self.result_ = proclus(
            X, self.k, self.l,
            sample_factor=self.sample_factor,
            pool_factor=self.pool_factor,
            min_deviation=self.min_deviation,
            max_bad_tries=self.max_bad_tries,
            max_iterations=self.max_iterations,
            metric=self.metric,
            min_dims_per_cluster=self.min_dims_per_cluster,
            handle_outliers=self.handle_outliers,
            keep_history=self.keep_history,
            restarts=self.restarts,
            fit_sample_size=self.fit_sample_size,
            on_bad_values=self.on_bad_values,
            collapse_duplicates=self.collapse_duplicates,
            auto_degrade=self.auto_degrade,
            time_budget_s=self.time_budget_s,
            cache=self.cache,
            n_jobs=self.n_jobs,
            max_retries=self.max_retries,
            restart_timeout_s=self.restart_timeout_s,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
            profile=self.profile,
            dtype=self.dtype,
            seed=self.seed,
        )
        return self

    def fit_predict(self, X: Union[np.ndarray, Dataset]) -> np.ndarray:
        """Fit and return the label array."""
        return self.fit(X).labels_

    def predict(self, X: Union[np.ndarray, Dataset]) -> np.ndarray:
        """Assign *new* points to the fitted medoids (no outlier logic)."""
        result = self._fitted()
        if isinstance(X, Dataset):
            X = X.points
        # new points join the fitted precision so the assignment argmin
        # compares like-rounded segmental distances
        X = check_array(X, name="X", dtype=result.medoids.dtype)
        dim_sets = [result.dimensions[i] for i in range(result.k)]
        return assign_points(X, result.medoids, dim_sets)

    # ------------------------------------------------------------------
    def _fitted(self) -> ProclusResult:
        if self.result_ is None:
            raise NotFittedError("call fit() before accessing results")
        return self.result_

    @property
    def labels_(self) -> np.ndarray:
        """Labels from the last ``fit`` (``-1`` marks outliers)."""
        return self._fitted().labels

    @property
    def medoids_(self) -> np.ndarray:
        """Medoid coordinates from the last ``fit``."""
        return self._fitted().medoids

    @property
    def dimensions_(self) -> dict:
        """Per-cluster dimension sets from the last ``fit``."""
        return self._fitted().dimensions

    @property
    def objective_(self) -> float:
        """Final objective value from the last ``fit``."""
        return self._fitted().objective

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Proclus(k={self.k}, l={self.l})"
