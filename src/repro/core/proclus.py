"""Public PROCLUS API: estimator class and one-call function.

Example
-------
>>> from repro.data import generate
>>> from repro.core import Proclus
>>> ds = generate(2000, 20, 5, cluster_dim_counts=[7] * 5, seed=7)
>>> result = Proclus(k=5, l=7, seed=7).fit(ds.points)
>>> sorted(result.cluster_sizes().values())  # doctest: +SKIP
[...]
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from ..data.dataset import Dataset
from ..distance.base import Metric
from ..exceptions import NotFittedError, ParameterError
from ..rng import SeedLike, ensure_rng, spawn
from ..validation import check_array
from .assignment import assign_points
from .config import ProclusConfig
from .initialization import initialize_medoid_pool
from .iterative import run_iterative_phase
from .objective import evaluate_clusters
from .refinement import refine_clusters
from .result import ProclusResult

__all__ = ["Proclus", "proclus"]


def proclus(X, k: int, l: float, *,
            sample_factor: int = 30, pool_factor: int = 5,
            min_deviation: float = 0.1, max_bad_tries: int = 20,
            max_iterations: int = 300,
            metric: Union[str, Metric] = "euclidean",
            min_dims_per_cluster: int = 2,
            handle_outliers: bool = True,
            keep_history: bool = True,
            restarts: int = 1,
            fit_sample_size: Optional[int] = None,
            seed: SeedLike = None) -> ProclusResult:
    """Run PROCLUS end-to-end and return a :class:`ProclusResult`.

    Parameters
    ----------
    X:
        Data matrix ``(N, d)`` or a :class:`~repro.data.Dataset`.
    k, l:
        Number of clusters and average cluster dimensionality.
    handle_outliers:
        Disable to keep every point assigned (ablation hook; the paper
        always detects outliers in the refinement pass).
    restarts:
        Run the whole pipeline this many times with independent random
        streams and keep the run with the lowest *iterative-phase*
        objective.  The hill climbing is a randomised local search and
        can converge with two medoids piercing one natural cluster; the
        paper's own remedy (section 4.3) is to "simply run the
        algorithm a few times".  Selection uses the iterative objective
        because the refined one shrinks artificially when a bad
        solution declares many points outliers.
    fit_sample_size:
        CLARA-style large-database mode: run the initialization and the
        hill climbing on a uniform subsample of this size, then perform
        the refinement pass (dimension recomputation, assignment,
        outlier detection) over the *full* data.  Cuts the per-iteration
        O(N·k·d) cost to O(sample·k·d) while the final clustering still
        covers every point.  ``None`` (default) uses all points
        throughout, as the paper does.

    Other parameters are documented on
    :class:`~repro.core.config.ProclusConfig`.
    """
    if isinstance(X, Dataset):
        X = X.points
    X = check_array(X, name="X")
    if restarts < 1:
        raise ParameterError(f"restarts must be >= 1; got {restarts}")
    if restarts > 1:
        rng = ensure_rng(seed)
        best: Optional[ProclusResult] = None
        for child in spawn(rng, restarts):
            candidate = proclus(
                X, k, l,
                sample_factor=sample_factor, pool_factor=pool_factor,
                min_deviation=min_deviation, max_bad_tries=max_bad_tries,
                max_iterations=max_iterations, metric=metric,
                min_dims_per_cluster=min_dims_per_cluster,
                handle_outliers=handle_outliers, keep_history=keep_history,
                restarts=1, seed=child,
            )
            if best is None or candidate.iterative_objective < best.iterative_objective:
                best = candidate
        return best

    if fit_sample_size is not None and fit_sample_size < X.shape[0]:
        if fit_sample_size < max(sample_factor, pool_factor) * k:
            raise ParameterError(
                f"fit_sample_size={fit_sample_size} is smaller than the "
                f"initialization needs (A*k = {sample_factor * k})"
            )
        rng = ensure_rng(seed)
        rng_sample, rng_fit = spawn(rng, 2)
        sample_idx = rng_sample.choice(
            X.shape[0], size=fit_sample_size, replace=False,
        )
        t0 = time.perf_counter()
        sub = proclus(
            X[sample_idx], k, l,
            sample_factor=sample_factor, pool_factor=pool_factor,
            min_deviation=min_deviation, max_bad_tries=max_bad_tries,
            max_iterations=max_iterations, metric=metric,
            min_dims_per_cluster=min_dims_per_cluster,
            handle_outliers=False, keep_history=keep_history,
            seed=rng_fit,
        )
        t_sample_fit = time.perf_counter() - t0
        # refinement over the FULL database with the sample's medoids
        t0 = time.perf_counter()
        medoid_indices = sample_idx[sub.medoid_indices]
        dim_sets = [sub.dimensions[i] for i in range(k)]
        full_labels = assign_points(X, X[medoid_indices], dim_sets)
        refined = refine_clusters(
            X, full_labels, medoid_indices, l,
            min_dims_per_cluster=min_dims_per_cluster,
            fallback_dims=dim_sets,
            handle_outliers=handle_outliers,
        )
        objective = evaluate_clusters(X, refined.labels, refined.dim_sets)
        return ProclusResult(
            labels=refined.labels,
            medoids=X[medoid_indices],
            medoid_indices=medoid_indices,
            dimensions={i: d for i, d in enumerate(refined.dim_sets)},
            objective=float(objective),
            iterative_objective=sub.iterative_objective,
            n_iterations=sub.n_iterations,
            n_improvements=sub.n_improvements,
            objective_history=sub.objective_history,
            phase_seconds={
                "sample_fit": t_sample_fit,
                "refinement": time.perf_counter() - t0,
            },
            terminated_by=sub.terminated_by,
        )

    config = ProclusConfig(
        k=k, l=l, sample_factor=sample_factor, pool_factor=pool_factor,
        min_deviation=min_deviation, max_bad_tries=max_bad_tries,
        max_iterations=max_iterations, metric=metric,
        min_dims_per_cluster=min_dims_per_cluster, seed=seed,
    ).validated(X.shape[0], X.shape[1])

    rng = ensure_rng(config.seed)
    rng_init, rng_iter = spawn(rng, 2)

    # Phase 1: initialization ------------------------------------------
    t0 = time.perf_counter()
    pool = initialize_medoid_pool(
        X, config.sample_size, config.pool_size,
        metric=config.metric, seed=rng_init,
    )
    t_init = time.perf_counter() - t0

    # Phase 2: iterative hill climbing ---------------------------------
    phase2 = run_iterative_phase(
        X, pool, config.k, config.l,
        metric=config.metric,
        min_deviation=config.min_deviation,
        max_bad_tries=config.max_bad_tries,
        max_iterations=config.max_iterations,
        min_dims_per_cluster=config.min_dims_per_cluster,
        seed=rng_iter,
        keep_history=keep_history,
    )

    # Phase 3: refinement ----------------------------------------------
    t0 = time.perf_counter()
    refined = refine_clusters(
        X, phase2.labels, phase2.medoid_indices, config.l,
        min_dims_per_cluster=config.min_dims_per_cluster,
        fallback_dims=phase2.dim_sets,
        handle_outliers=handle_outliers,
    )
    final_objective = evaluate_clusters(X, refined.labels, refined.dim_sets)
    t_refine = time.perf_counter() - t0

    return ProclusResult(
        labels=refined.labels,
        medoids=X[phase2.medoid_indices],
        medoid_indices=phase2.medoid_indices,
        dimensions={i: dims for i, dims in enumerate(refined.dim_sets)},
        objective=float(final_objective),
        iterative_objective=float(phase2.objective),
        n_iterations=phase2.n_iterations,
        n_improvements=phase2.n_improvements,
        objective_history=phase2.objective_history,
        phase_seconds={
            "initialization": t_init,
            "iterative": phase2.seconds,
            "refinement": t_refine,
        },
        terminated_by=phase2.terminated_by,
    )


class Proclus:
    """Estimator-style wrapper with ``fit`` / ``fit_predict`` / ``predict``.

    Parameters match :func:`proclus`.  After :meth:`fit`, the fitted
    :class:`~repro.core.result.ProclusResult` is available as
    :attr:`result_`, with convenience mirrors :attr:`labels_`,
    :attr:`medoids_`, and :attr:`dimensions_`.
    """

    def __init__(self, k: int, l: float, *,
                 sample_factor: int = 30, pool_factor: int = 5,
                 min_deviation: float = 0.1, max_bad_tries: int = 20,
                 max_iterations: int = 300,
                 metric: Union[str, Metric] = "euclidean",
                 min_dims_per_cluster: int = 2,
                 handle_outliers: bool = True,
                 keep_history: bool = True,
                 restarts: int = 1,
                 seed: SeedLike = None):
        self.k = k
        self.l = l
        self.sample_factor = sample_factor
        self.pool_factor = pool_factor
        self.min_deviation = min_deviation
        self.max_bad_tries = max_bad_tries
        self.max_iterations = max_iterations
        self.metric = metric
        self.min_dims_per_cluster = min_dims_per_cluster
        self.handle_outliers = handle_outliers
        self.keep_history = keep_history
        self.restarts = restarts
        self.seed = seed
        self.result_: Optional[ProclusResult] = None

    # ------------------------------------------------------------------
    def fit(self, X) -> "Proclus":
        """Cluster ``X`` (array or Dataset); returns ``self``."""
        self.result_ = proclus(
            X, self.k, self.l,
            sample_factor=self.sample_factor,
            pool_factor=self.pool_factor,
            min_deviation=self.min_deviation,
            max_bad_tries=self.max_bad_tries,
            max_iterations=self.max_iterations,
            metric=self.metric,
            min_dims_per_cluster=self.min_dims_per_cluster,
            handle_outliers=self.handle_outliers,
            keep_history=self.keep_history,
            restarts=self.restarts,
            seed=self.seed,
        )
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the label array."""
        return self.fit(X).labels_

    def predict(self, X) -> np.ndarray:
        """Assign *new* points to the fitted medoids (no outlier logic)."""
        result = self._fitted()
        if isinstance(X, Dataset):
            X = X.points
        X = check_array(X, name="X")
        dim_sets = [result.dimensions[i] for i in range(result.k)]
        return assign_points(X, result.medoids, dim_sets)

    # ------------------------------------------------------------------
    def _fitted(self) -> ProclusResult:
        if self.result_ is None:
            raise NotFittedError("call fit() before accessing results")
        return self.result_

    @property
    def labels_(self) -> np.ndarray:
        """Labels from the last ``fit`` (``-1`` marks outliers)."""
        return self._fitted().labels

    @property
    def medoids_(self) -> np.ndarray:
        """Medoid coordinates from the last ``fit``."""
        return self._fitted().medoids

    @property
    def dimensions_(self) -> dict:
        """Per-cluster dimension sets from the last ``fit``."""
        return self._fitted().dimensions

    @property
    def objective_(self) -> float:
        """Final objective value from the last ``fit``."""
        return self._fitted().objective

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Proclus(k={self.k}, l={self.l})"
