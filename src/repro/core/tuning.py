"""Parameter tuning: sweeping ``l`` (and ``k``) as the paper suggests.

Section 4.3: "This very good behavior of PROCLUS with respect to l is
important for the situations in which it is not clear what value should
be chosen for parameter l: because the running time is so small, it is
easy to simply run the algorithm a few times and try different values
for l."  This module packages that workflow:

* :func:`sweep_l` runs PROCLUS for each candidate ``l`` and scores each
  result with a ground-truth-free criterion;
* :func:`sweep_k` does the same over ``k``, scored by the **segmental
  silhouette** (separation is what distinguishes a good ``k``);
* :func:`sweep_l` is scored by :func:`dimension_contrast`, whose
  plateau-then-cliff shape pairs with :meth:`SweepResult.knee_value` to
  recover the true average dimensionality (the silhouette and the raw
  objective both degrade monotonically in ``l`` and under-select).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import ParameterError
from ..metrics.internal import segmental_silhouette
from ..rng import SeedLike, ensure_rng
from ..validation import check_array
from .proclus import proclus
from .result import ProclusResult

__all__ = ["SweepResult", "sweep_l", "sweep_k", "dimension_contrast"]

Criterion = Callable[[np.ndarray, ProclusResult], float]


def _silhouette_criterion(X: np.ndarray, result: ProclusResult) -> float:
    """Model-selection score for ``k`` (higher is better)."""
    labels = result.labels
    present = [i for i in range(result.k)
               if np.count_nonzero(labels == i) > 0]
    if len(present) < 2:
        return -1.0
    return segmental_silhouette(X, labels, result.dimensions)


def dimension_contrast(X: np.ndarray, result: ProclusResult) -> float:
    """Model-selection score for ``l`` (higher = better, always <= 0).

    For each cluster: the ratio of its dispersion *in its chosen
    dimensions* to its dispersion *over all dimensions*; the score is
    the negated size-weighted mean ratio.  While every chosen dimension
    is truly correlated the ratio stays small; as soon as the budget
    forces uncorrelated (uniform) dimensions into some cluster's set,
    that cluster's numerator jumps toward its full-space dispersion.
    The score therefore plateaus up to the true average dimensionality
    and drops beyond it — exactly the shape the knee rule of
    :meth:`SweepResult.knee_index` expects.  (The segmental silhouette
    lacks this plateau: more true-but-wider dimensions still dilute
    cohesion, so it systematically under-selects ``l``.)
    """
    labels = result.labels
    ratios: List[float] = []
    weights: List[int] = []
    for cid, dims in result.dimensions.items():
        members = labels == cid
        n = int(np.count_nonzero(members))
        if n < 2:
            continue
        sub = X[members]
        centroid = sub.mean(axis=0)
        diffs = np.abs(sub - centroid)
        disp_all = float(diffs.mean())
        if disp_all <= 0:
            continue
        disp_dims = float(diffs[:, list(dims)].mean())
        ratios.append(disp_dims / disp_all)
        weights.append(n)
    if not ratios:
        return -1.0
    return -float(np.average(ratios, weights=weights))


@dataclass
class SweepResult:
    """Outcome of a parameter sweep."""

    parameter: str
    values: List[float]
    scores: List[float]
    results: List[ProclusResult]

    @property
    def best_index(self) -> int:
        """Index of the best-scoring value."""
        return int(np.argmax(self.scores))

    @property
    def best_value(self) -> float:
        """The winning parameter value."""
        return self.values[self.best_index]

    @property
    def best_result(self) -> ProclusResult:
        """The fitted result for the winning value."""
        return self.results[self.best_index]

    def knee_index(self, tolerance: float = 0.05) -> int:
        """Index of the *largest* value scoring within ``tolerance`` of
        the best.

        The right selection rule for ``l``: any subset of a cluster's
        true dimensions is tight, so the silhouette plateaus for every
        ``l`` up to the true dimensionality and only degrades beyond it
        — picking the argmax under-selects.  The knee rule takes the
        largest value still on the plateau.
        """
        best = max(self.scores)
        candidates = [i for i, s in enumerate(self.scores)
                      if s >= best - tolerance]
        return max(candidates, key=lambda i: self.values[i])

    def knee_value(self, tolerance: float = 0.05) -> float:
        """The parameter value chosen by :meth:`knee_index`."""
        return self.values[self.knee_index(tolerance)]

    def knee_result(self, tolerance: float = 0.05) -> ProclusResult:
        """The fitted result chosen by :meth:`knee_index`."""
        return self.results[self.knee_index(tolerance)]

    def to_text(self) -> str:
        """One row per candidate value with its score."""
        lines = [f"sweep over {self.parameter}:"]
        for i, (v, s) in enumerate(zip(self.values, self.scores)):
            marker = "  <-- best" if i == self.best_index else ""
            lines.append(f"  {self.parameter}={v:g}: score={s:.4f}{marker}")
        return "\n".join(lines)


def sweep_l(X: np.ndarray, k: int, l_values: Sequence[float], *,
            criterion: Optional[Criterion] = None,
            seed: SeedLike = None, **proclus_kwargs: Any) -> SweepResult:
    """Run PROCLUS for each candidate ``l`` and rank by ``criterion``.

    Parameters
    ----------
    X:
        Data matrix.
    k:
        Number of clusters (fixed).
    l_values:
        Candidate average dimensionalities; each must satisfy the
        paper's constraints (``l >= 2``, ``k*l`` integral).
    criterion:
        ``(X, result) -> score`` (higher = better); defaults to
        :func:`dimension_contrast`, whose plateau-then-cliff shape
        pairs with :meth:`SweepResult.knee_value` to recover the true
        average dimensionality.
    seed:
        Base seed; each candidate uses an independent child stream so
        results do not depend on sweep order.
    """
    X = check_array(X, name="X")
    if not l_values:
        raise ParameterError("l_values must be non-empty")
    criterion = criterion or dimension_contrast
    rng = ensure_rng(seed)
    values: List[float] = []
    scores: List[float] = []
    results: List[ProclusResult] = []
    for l in l_values:
        child_seed = int(rng.integers(2**31 - 1))
        result = proclus(X, k, l, seed=child_seed, **proclus_kwargs)
        values.append(float(l))
        scores.append(float(criterion(X, result)))
        results.append(result)
    return SweepResult(parameter="l", values=values, scores=scores,
                       results=results)


def sweep_k(X: np.ndarray, k_values: Sequence[int], l: float, *,
            criterion: Optional[Criterion] = None,
            seed: SeedLike = None, **proclus_kwargs: Any) -> SweepResult:
    """Run PROCLUS for each candidate ``k`` and rank by ``criterion``."""
    X = check_array(X, name="X")
    if not k_values:
        raise ParameterError("k_values must be non-empty")
    criterion = criterion or _silhouette_criterion
    rng = ensure_rng(seed)
    values: List[float] = []
    scores: List[float] = []
    results: List[ProclusResult] = []
    for k in k_values:
        child_seed = int(rng.integers(2**31 - 1))
        result = proclus(X, int(k), l, seed=child_seed, **proclus_kwargs)
        values.append(float(k))
        scores.append(float(criterion(X, result)))
        results.append(result)
    return SweepResult(parameter="k", values=values, scores=scores,
                       results=results)
