"""Result objects returned by PROCLUS (and reused by the baselines).

:class:`ProclusResult` is the library's canonical description of a
projected clustering: labels (with ``-1`` outliers), the medoids, the
per-cluster dimension sets, the final objective value, and run
diagnostics.  The experiment harness consumes these objects directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import OUTLIER_LABEL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..robustness.guards import Deadline
    from ..robustness.sanitize import SanitizationReport
    from .predict import PredictReport

__all__ = ["ProclusResult"]


@dataclass
class ProclusResult:
    """A fitted projected clustering.

    Attributes
    ----------
    labels:
        Integer array ``(n_points,)``; cluster ids ``0..k-1`` or ``-1``.
    medoids:
        Float array ``(k, d)`` of medoid coordinates.
    medoid_indices:
        Indices of the medoids in the original data matrix.
    dimensions:
        Mapping cluster id -> sorted tuple of that cluster's dimensions.
    objective:
        Final value of the paper's EvaluateClusters criterion (lower is
        better) on the refined clustering (outliers excluded from the
        numerator).
    iterative_objective:
        The hill-climbing phase's best objective, computed with *every*
        point assigned.  Comparable across runs — use this to pick among
        restarts (the refined ``objective`` shrinks artificially when a
        bad solution dumps many points to outliers).
    n_iterations / n_improvements:
        Hill-climbing diagnostics.
    objective_history:
        Objective value of every vertex visited during hill climbing.
    phase_seconds:
        Wall-clock per phase: ``{"initialization": .., "iterative": ..,
        "refinement": ..}``.
    terminated_by:
        Why the hill climbing stopped: ``"no_improvement"`` (its
        convergence criterion), ``"pool_exhausted"``,
        ``"max_iterations"``, ``"deadline"`` (wall-clock budget hit —
        best-so-far returned), ``"signal"`` (SIGINT/SIGTERM stopped a
        supervised multi-restart run — best completed restart
        returned), or ``"fallback_kmedoids"`` (the degradation ladder
        bottomed out).
    warnings:
        Messages from the robustness layer: sanitization actions and
        every degradation-ladder rung that fired.  Empty for a clean,
        non-degraded fit.
    degraded:
        True when any fallback changed the requested computation
        (reduced ``k``, clamped factors, k-medoids fallback, ...).
    sanitization:
        The :class:`~repro.robustness.sanitize.SanitizationReport` when
        input sanitization ran, else ``None``.  ``labels`` and
        ``medoid_indices`` are always in *original* row indexing — the
        mapping back has already been applied.
    cache_stats:
        Hit/miss/eviction counters of the incremental distance cache
        (per store, plus a ``"memory"`` entry), when the fit ran with
        ``cache=True``; ``None`` otherwise.  See ``docs/performance.md``
        for how to read them.
    parallelism:
        Restart fan-out diagnostics when the fit ran with
        ``restarts > 1``: the requested ``n_jobs``, the worker count
        actually used (``n_workers``), how many restarts completed
        (``restarts_completed`` — fewer than requested when a deadline
        cancelled the tail), per-restart worker wall times
        (``restart_seconds``, ``None`` for cancelled restarts), and the
        fan-out's total ``wall_seconds``.  ``None`` for single-restart
        fits.  Feed it to :func:`repro.core.diagnostics.parallel_report`
        for an efficiency summary.
    fault_tolerance:
        Supervisor diagnostics when a multi-restart fit ran under the
        fault-tolerant supervisor (checkpointing, retries, or a signal
        in play): retry/respawn/timeout counters, restarts salvaged by
        the serial degradation path, restarts resumed from a
        checkpoint, and whether a signal terminated the run (in which
        case ``terminated_by`` is ``"signal"``).  ``None`` for plain
        fits.
    profile:
        Structured observability report when the fit ran with
        ``profile=True``: per-phase wall seconds, counter totals, and
        the recorded span/event records (see :mod:`repro.obs` and
        ``docs/observability.md``).  For parallel multi-restart fits
        the winning restart's worker-side profile is nested under
        ``profile["winner"]``.  ``None`` for untraced fits.
    """

    labels: np.ndarray
    medoids: np.ndarray
    medoid_indices: np.ndarray
    dimensions: Dict[int, Tuple[int, ...]]
    objective: float
    iterative_objective: float = float("inf")
    n_iterations: int = 0
    n_improvements: int = 0
    objective_history: List[float] = field(default_factory=list)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    terminated_by: str = ""
    warnings: List[str] = field(default_factory=list)
    degraded: bool = False
    sanitization: Optional["SanitizationReport"] = None
    cache_stats: Optional[Dict[str, Dict[str, float]]] = None
    parallelism: Optional[Dict[str, object]] = None
    fault_tolerance: Optional[Dict[str, object]] = None
    profile: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.medoids.shape[0])

    @property
    def n_points(self) -> int:
        """Number of clustered input points (incl. outliers)."""
        return int(self.labels.shape[0])

    @property
    def n_outliers(self) -> int:
        """Number of points labelled as outliers."""
        return int(np.count_nonzero(self.labels == OUTLIER_LABEL))

    @property
    def outlier_indices(self) -> np.ndarray:
        """Indices of points labelled as outliers."""
        return np.flatnonzero(self.labels == OUTLIER_LABEL)

    def cluster_indices(self, cluster_id: int) -> np.ndarray:
        """Indices of points assigned to ``cluster_id``."""
        return np.flatnonzero(self.labels == cluster_id)

    def cluster_sizes(self) -> Dict[int, int]:
        """Mapping cluster id -> assigned point count."""
        return {
            cid: int(np.count_nonzero(self.labels == cid))
            for cid in range(self.k)
        }

    def clusters(self) -> Dict[int, np.ndarray]:
        """Mapping cluster id -> indices of member points."""
        return {cid: self.cluster_indices(cid) for cid in range(self.k)}

    @property
    def average_dimensionality(self) -> float:
        """Mean ``|D_i|`` over clusters — should equal the input ``l``."""
        if not self.dimensions:
            return 0.0
        return float(np.mean([len(d) for d in self.dimensions.values()]))

    def predict(self, X: Any, *, handle_outliers: bool = True,
                on_bad_values: str = "raise",
                chunk_size: Optional[int] = None,
                memory_budget_bytes: Optional[int] = None,
                deadline: Optional["Deadline"] = None) -> np.ndarray:
        """Assign new points to this fitted clustering; labels only.

        The paper's refinement-phase semantics applied to unseen data:
        Manhattan segmental distance to each medoid in its own dimension
        set, argmin assignment, and (with ``handle_outliers``) the
        sphere-of-influence outlier rule.  On the training matrix of a
        clean fit this reproduces :attr:`labels` bit-identically.  See
        :func:`repro.core.predict.predict_points` for the full knob set
        and :meth:`predict_report` for per-batch diagnostics.
        """
        return self.predict_report(
            X, handle_outliers=handle_outliers, on_bad_values=on_bad_values,
            chunk_size=chunk_size, memory_budget_bytes=memory_budget_bytes,
            deadline=deadline).labels

    def predict_report(self, X: Any, *, handle_outliers: bool = True,
                       spheres: Optional[np.ndarray] = None,
                       on_bad_values: str = "raise",
                       max_points: Optional[int] = None,
                       chunk_size: Optional[int] = None,
                       memory_budget_bytes: Optional[int] = None,
                       deadline: Optional["Deadline"] = None,
                       return_distances: bool = False) -> "PredictReport":
        """:meth:`predict` plus diagnostics (outlier count, spheres, ...).

        Thin delegation to :func:`repro.core.predict.predict_points`
        with this result's medoids and dimension sets; all keyword
        arguments are forwarded.
        """
        from .predict import predict_points

        return predict_points(
            X, self.medoids, self.dimensions,
            handle_outliers=handle_outliers, spheres=spheres,
            on_bad_values=on_bad_values, max_points=max_points,
            chunk_size=chunk_size, memory_budget_bytes=memory_budget_bytes,
            deadline=deadline, return_distances=return_distances)

    def to_dict(self) -> dict:
        """JSON-friendly summary (labels omitted; sizes included)."""
        return {
            "k": self.k,
            "objective": self.objective,
            "n_outliers": self.n_outliers,
            "cluster_sizes": self.cluster_sizes(),
            "dimensions": {cid: list(d) for cid, d in self.dimensions.items()},
            "n_iterations": self.n_iterations,
            "n_improvements": self.n_improvements,
            "terminated_by": self.terminated_by,
            "phase_seconds": dict(self.phase_seconds),
            "degraded": self.degraded,
            "warnings": list(self.warnings),
            "cache_stats": self.cache_stats,
            "parallelism": (dict(self.parallelism)
                            if self.parallelism is not None else None),
            "fault_tolerance": (dict(self.fault_tolerance)
                                if self.fault_tolerance is not None else None),
            "profile": (dict(self.profile)
                        if self.profile is not None else None),
        }

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"PROCLUS result: k={self.k}, N={self.n_points}, "
            f"objective={self.objective:.4f}, outliers={self.n_outliers}",
        ]
        sizes = self.cluster_sizes()
        for cid in range(self.k):
            dims = ", ".join(str(j) for j in self.dimensions.get(cid, ()))
            lines.append(
                f"  cluster {cid}: {sizes[cid]:>8d} points, dims [{dims}]"
            )
        lines.append(
            f"  iterations={self.n_iterations}, improvements="
            f"{self.n_improvements}, stop={self.terminated_by or 'n/a'}"
        )
        if self.degraded:
            lines.append("  DEGRADED result (a robustness fallback fired)")
        for msg in self.warnings:
            lines.append(f"  warning: {msg}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProclusResult(k={self.k}, N={self.n_points}, "
            f"objective={self.objective:.4f}, outliers={self.n_outliers})"
        )
