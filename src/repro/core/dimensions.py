"""Locality analysis and dimension selection (paper Figure 4).

Given medoids ``m_1..m_k``:

* ``delta_i = min_{j != i} d(m_i, m_j)`` and the *locality* ``L_i`` is
  the set of points within ``delta_i`` of ``m_i``;
* ``X_{i,j}`` is the average distance along dimension ``j`` from the
  points of ``L_i`` to ``m_i``;
* ``Y_i`` is the row mean of ``X_{i,.}`` and ``sigma_i`` its sample
  standard deviation; ``Z_{i,j} = (X_{i,j} - Y_i) / sigma_i``;
* the ``k*l`` most negative ``Z_{i,j}`` are selected subject to "at
  least 2 per medoid" — a separable convex resource-allocation problem
  (ref [16]) solved exactly by the paper's greedy: preallocate the 2
  smallest per row, then take the remaining ``k*(l-2)`` smallest overall.

Degenerate cases handled beyond the paper's pseudocode (all tested):

* a locality smaller than 2 points (coincident/crowded medoids) falls
  back to the nearest ``min_locality_size`` points, so statistics are
  always defined;
* ``sigma_i == 0`` (perfectly isotropic locality) yields a zero Z-row,
  i.e. no dimension of that medoid looks special — ties are broken by
  the global sort;
* ``exclude_dims`` (the robustness layer's constant-dimension fallback)
  soft-excludes dimensions from the ranking: a zero-variance dimension
  has average distance 0 everywhere, which would otherwise make it look
  maximally "tight" to every cluster.  Excluded dimensions sort last
  (``+inf`` Z-score) rather than dividing by ``sigma_i = 0`` — they are
  only picked when nothing else can satisfy the per-cluster floor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..distance.base import Metric
from ..distance.matrix import cross_distances, per_dimension_average_distance
from ..distance.segmental import segmental_distances_to_point
from ..dtypes import as_working, to_float64
from ..exceptions import ParameterError
from ..validation import check_array

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..perf.cache import IterativeCache

__all__ = [
    "compute_localities",
    "dimension_statistics",
    "zscores",
    "allocate_dimensions",
    "find_dimensions",
    "find_dimensions_from_clusters",
]

DimensionSets = List[Tuple[int, ...]]


def compute_localities(X: np.ndarray, medoid_indices: np.ndarray, *,
                       metric: Union[str, Metric] = "euclidean",
                       min_locality_size: int = 2,
                       cache: Optional["IterativeCache"] = None) -> Tuple[List[np.ndarray], np.ndarray]:
    """Locality point-index sets and radii for each medoid.

    Returns
    -------
    (localities, deltas):
        ``localities[i]`` holds indices (into ``X``) of the points whose
        full-dimensional distance to medoid ``i`` is at most ``delta_i``,
        the medoid itself excluded.  ``deltas[i]`` is the radius.  When
        fewer than ``min_locality_size`` points qualify, the nearest
        ``min_locality_size`` non-medoid points are used instead.

    With a :class:`~repro.perf.cache.IterativeCache`, distance columns
    and member sets of medoids unchanged since the previous vertex are
    reused instead of recomputed; results are bit-identical either way.
    """
    X = check_array(X, name="X")
    medoid_indices = np.asarray(medoid_indices, dtype=np.intp)
    k = medoid_indices.size
    if k < 2:
        raise ParameterError("localities need at least 2 medoids")
    if cache is not None:
        point_dist = cache.distance_columns(X, medoid_indices, metric)  # (N, k)
        med_dist = point_dist[medoid_indices].copy()
    else:
        medoids = X[medoid_indices]
        med_dist = cross_distances(medoids, medoids, metric)
        point_dist = cross_distances(X, medoids, metric)  # (N, k)
    np.fill_diagonal(med_dist, np.inf)
    deltas = med_dist.min(axis=1)

    localities: List[np.ndarray] = []
    for i in range(k):
        if cache is not None:
            members = cache.locality_members(
                medoid_indices[i], deltas[i], min_locality_size, metric
            )
            if members is not None:
                localities.append(members)
                continue
        dist_i = point_dist[:, i]
        mask = dist_i <= deltas[i]
        mask[medoid_indices[i]] = False
        members = np.flatnonzero(mask)
        if members.size < min_locality_size:
            order = np.argsort(dist_i, kind="stable")
            order = order[order != medoid_indices[i]]
            members = order[:min_locality_size]
        if cache is not None:
            cache.store_locality_members(
                medoid_indices[i], deltas[i], min_locality_size, metric,
                members,
            )
        localities.append(members)
    return localities, deltas


def dimension_statistics(X: np.ndarray, medoids: np.ndarray,
                         localities: Sequence[np.ndarray]) -> np.ndarray:
    """The matrix ``X_{i,j}`` of per-dimension average distances.

    ``medoids`` is ``(k, d)``; ``localities[i]`` indexes into ``X``.
    """
    X = as_working(X)
    medoids = np.atleast_2d(np.asarray(medoids, dtype=X.dtype))
    k, d = medoids.shape
    # float64 rows for any working dtype — the statistics feed the
    # Z-score ranking (see per_dimension_average_distance's
    # accumulation policy) and at (k, d) they are tiny
    stats = np.empty((k, d), dtype=np.float64)
    for i in range(k):
        members = np.asarray(localities[i], dtype=np.intp)
        if members.size == 0:
            raise ParameterError(
                f"locality of medoid {i} is empty; use compute_localities "
                "which guarantees a non-empty fallback"
            )
        stats[i] = per_dimension_average_distance(X[members], medoids[i])
    return stats


def zscores(stats: np.ndarray) -> np.ndarray:
    """Row-standardised Z-scores ``(X_ij - Y_i) / sigma_i``.

    Uses the paper's sample standard deviation (``ddof=1``).  Rows with
    zero deviation map to all-zero scores.
    """
    stats = to_float64(stats)  # ranking domain: Z-scores are float64
    y = stats.mean(axis=1, keepdims=True)
    if stats.shape[1] < 2:
        raise ParameterError("Z-scores need at least 2 dimensions")
    sigma = stats.std(axis=1, ddof=1, keepdims=True)
    z = np.zeros_like(stats)
    nz = sigma[:, 0] > 0
    z[nz] = (stats[nz] - y[nz]) / sigma[nz]
    return z


def allocate_dimensions(z: np.ndarray, total: int, *,
                        min_per_row: int = 2) -> DimensionSets:
    """Pick the ``total`` most negative entries of ``z`` with a row floor.

    Exactly the paper's greedy for the separable convex resource
    allocation problem: sort all ``Z_{i,j}``, preallocate the
    ``min_per_row`` smallest per row, then take the remaining
    ``total - k*min_per_row`` smallest among the rest.

    Returns a list of sorted dimension tuples, one per row.
    """
    z = to_float64(z)  # ranking domain: allocation sorts float64 scores
    k, d = z.shape
    if min_per_row > d:
        raise ParameterError(
            f"min_per_row={min_per_row} exceeds dimensionality d={d}"
        )
    if total < k * min_per_row:
        raise ParameterError(
            f"total={total} cannot satisfy the floor of {min_per_row} "
            f"dimensions for each of the {k} clusters"
        )
    if total > k * d:
        raise ParameterError(f"total={total} exceeds the k*d={k * d} available")

    chosen = [set() for _ in range(k)]
    # preallocation: the min_per_row smallest Z in each row
    for i in range(k):
        order = np.argsort(z[i], kind="stable")[:min_per_row]
        chosen[i].update(int(j) for j in order)
    remaining = total - k * min_per_row
    if remaining > 0:
        flat_order = np.argsort(z, axis=None, kind="stable")
        for flat in flat_order:
            if remaining == 0:
                break
            i, j = divmod(int(flat), d)
            if j not in chosen[i]:
                chosen[i].add(j)
                remaining -= 1
    return [tuple(sorted(s)) for s in chosen]


def _mask_excluded(z: np.ndarray,
                   exclude_dims: Optional[Sequence[int]]) -> np.ndarray:
    """Push excluded dimensions to the back of the Z-score ranking.

    Soft exclusion: entries become ``+inf`` so the allocator only picks
    them once every other dimension is taken.  Exclusions that would
    leave no rankable dimension are ignored.
    """
    if not exclude_dims:
        return z
    cols = [j for j in sorted(set(int(j) for j in exclude_dims))
            if 0 <= j < z.shape[1]]
    if not cols or len(cols) >= z.shape[1]:
        return z
    z = z.copy()
    z[:, cols] = np.inf
    return z


def find_dimensions(X: np.ndarray, medoid_indices: np.ndarray, l: float, *,
                    metric: Union[str, Metric] = "euclidean",
                    min_per_cluster: int = 2,
                    localities: Optional[Sequence[np.ndarray]] = None,
                    exclude_dims: Optional[Sequence[int]] = None,
                    cache: Optional["IterativeCache"] = None,
                    deltas: Optional[np.ndarray] = None) -> DimensionSets:
    """The paper's ``FindDimensions`` for a concrete medoid set.

    Computes localities (unless given), the ``X_{i,j}`` statistics, the
    Z-scores, and the constrained allocation of ``k*l`` dimensions.
    ``exclude_dims`` soft-excludes dimensions from the ranking (see the
    module docstring).  With ``cache`` and the ``deltas`` that produced
    ``localities``, statistic rows of medoids whose locality is
    unchanged since the previous vertex are reused (bit-identical).
    """
    medoid_indices = np.asarray(medoid_indices, dtype=np.intp)
    k = medoid_indices.size
    total = int(round(k * l))
    if localities is None:
        localities, deltas = compute_localities(
            X, medoid_indices, metric=metric,
            min_locality_size=max(2, min_per_cluster),
            cache=cache,
        )
    if cache is not None and deltas is not None:
        stats = cache.dimension_stats(
            X, medoid_indices, localities, deltas,
            min_size=max(2, min_per_cluster), metric=metric,
        )
    else:
        stats = dimension_statistics(X, X[medoid_indices], localities)
    z = _mask_excluded(zscores(stats), exclude_dims)
    return allocate_dimensions(z, total, min_per_row=min_per_cluster)


def find_dimensions_from_clusters(X: np.ndarray, labels: np.ndarray,
                                  medoid_indices: np.ndarray, l: float, *,
                                  min_per_cluster: int = 2,
                                  fallback: Optional[DimensionSets] = None,
                                  exclude_dims: Optional[Sequence[int]] = None) -> DimensionSets:
    """Refinement-phase variant: statistics from clusters, not localities.

    For each medoid the distribution of its *assigned cluster* replaces
    the locality (paper section 2.3: "we use C_i instead of L_i").
    A cluster that ended up empty falls back to the corresponding entry
    of ``fallback`` (the iterative-phase dimensions) when provided, or
    to the medoid's nearest 2 points otherwise.
    """
    X = check_array(X, name="X")
    labels = np.asarray(labels)
    medoid_indices = np.asarray(medoid_indices, dtype=np.intp)
    k = medoid_indices.size
    total = int(round(k * l))

    groups: List[np.ndarray] = []
    empty_rows: List[int] = []
    for i in range(k):
        members = np.flatnonzero(labels == i)
        if members.size == 0:
            empty_rows.append(i)
            # placeholder: nearest 2 points in full space.  Routed
            # through the budget-honouring segmental kernel (mean over
            # all d dimensions = full Manhattan sum / d, and dividing
            # by the same positive constant preserves the nearest-2
            # ordering) instead of materialising an unbudgeted
            # |X - medoid| temporary.
            dist = segmental_distances_to_point(
                X, X[medoid_indices[i]], np.arange(X.shape[1])
            )
            dist[medoid_indices[i]] = np.inf
            members = np.argsort(dist, kind="stable")[:2]
        groups.append(members)

    stats = dimension_statistics(X, X[medoid_indices], groups)
    z = _mask_excluded(zscores(stats), exclude_dims)
    sets = allocate_dimensions(z, total, min_per_row=min_per_cluster)
    if fallback is not None:
        for i in empty_rows:
            sets[i] = tuple(sorted(fallback[i]))
    return sets
