"""PROCLUS: the paper's primary contribution.

The algorithm runs in three phases (paper section 2):

1. **Initialization** (:mod:`repro.core.initialization`): draw a random
   sample of size ``A*k``, then apply the Gonzalez greedy farthest-point
   technique (:mod:`repro.core.greedy`) to obtain a candidate medoid pool
   ``M`` of size ``B*k`` that is, with high probability, a superset of a
   *piercing* set (one point per natural cluster).
2. **Iterative phase** (:mod:`repro.core.iterative`): CLARANS-style hill
   climbing over k-subsets of ``M``.  Each candidate set of medoids is
   scored by (a) finding per-medoid dimension sets from locality
   statistics (:mod:`repro.core.dimensions`), (b) assigning all points by
   Manhattan segmental distance (:mod:`repro.core.assignment`), and
   (c) the size-weighted dispersion objective
   (:mod:`repro.core.objective`).  Bad medoids (smallest cluster, or any
   below ``N/k * min_deviation`` points) are swapped for random pool
   points until no improvement persists.
3. **Refinement** (:mod:`repro.core.refinement`): recompute dimensions
   once from the actual clusters, reassign, and flag outliers via each
   medoid's sphere of influence.

Use :class:`~repro.core.proclus.Proclus` (estimator API) or
:func:`~repro.core.proclus.proclus` (one-call functional API).
"""

from __future__ import annotations

from .assignment import assign_points
from .config import ProclusConfig
from .diagnostics import (
    CacheReport,
    LocalityReport,
    ParallelReport,
    PiercingReport,
    cache_report,
    locality_report,
    parallel_report,
    piercing_report,
)
from .dimensions import (
    allocate_dimensions,
    compute_localities,
    dimension_statistics,
    find_dimensions,
    find_dimensions_from_clusters,
)
from .greedy import greedy_select
from .initialization import initialize_medoid_pool
from .iterative import IterationRecord, IterativePhaseResult, run_iterative_phase
from .objective import evaluate_clusters
from .predict import PredictReport, predict_points
from .proclus import Proclus, proclus
from .refinement import refine_clusters
from .result import ProclusResult
from .serialization import (load_result, load_result_with_fingerprint,
                            result_fingerprint, save_result)
from .tuning import SweepResult, sweep_k, sweep_l

__all__ = [
    "Proclus",
    "proclus",
    "ProclusConfig",
    "ProclusResult",
    "greedy_select",
    "initialize_medoid_pool",
    "compute_localities",
    "dimension_statistics",
    "allocate_dimensions",
    "find_dimensions",
    "find_dimensions_from_clusters",
    "assign_points",
    "evaluate_clusters",
    "run_iterative_phase",
    "IterativePhaseResult",
    "IterationRecord",
    "refine_clusters",
    "piercing_report",
    "PiercingReport",
    "locality_report",
    "LocalityReport",
    "cache_report",
    "CacheReport",
    "parallel_report",
    "ParallelReport",
    "predict_points",
    "PredictReport",
    "save_result",
    "load_result",
    "load_result_with_fingerprint",
    "result_fingerprint",
    "sweep_l",
    "sweep_k",
    "SweepResult",
]
