"""Gonzalez greedy farthest-point selection (paper Figure 3, ref [14]).

Starting from one random point, each subsequent pick is the point whose
distance to its closest already-chosen point is maximal.  On well
separated, outlier-free data the first ``k`` picks pierce all ``k``
clusters; PROCLUS runs it on a random *sample* (which dilutes outliers)
and over-selects (``B*k`` points) to make piercing likely despite both
outliers and projected structure.

The implementation maintains the classic ``dist`` array of
closest-chosen-point distances, updated incrementally, for
``O(|S| * k)`` metric evaluations.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..distance.base import Metric, get_metric
from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from ..validation import check_array, check_positive_int

__all__ = ["greedy_select"]


def greedy_select(S: np.ndarray, n_select: int, *,
                  metric: Union[str, Metric] = "euclidean",
                  first: Optional[int] = None,
                  seed: SeedLike = None) -> np.ndarray:
    """Select ``n_select`` mutually far points from ``S``.

    Parameters
    ----------
    S:
        Candidate points, shape ``(m, d)``.
    n_select:
        Number of points to pick (``<= m``).
    metric:
        Distance used for the farthest-point criterion.
    first:
        Optional index of the first pick; random when ``None`` (the
        paper starts from a random point of ``S``).
    seed:
        Seed for the random first pick.

    Returns
    -------
    numpy.ndarray
        Indices into ``S`` of the selected points, in pick order.
    """
    S = check_array(S, name="S")
    m = S.shape[0]
    n_select = check_positive_int(n_select, name="n_select", minimum=1)
    if n_select > m:
        raise ParameterError(
            f"cannot select {n_select} points from a set of {m}"
        )
    metric = get_metric(metric)
    rng = ensure_rng(seed)

    if first is None:
        first = int(rng.integers(m))
    elif not 0 <= first < m:
        raise ParameterError(f"first must index into S (0..{m - 1}); got {first}")

    chosen = np.empty(n_select, dtype=np.intp)
    chosen[0] = first
    # dist[x] = distance from x to its nearest already-chosen point
    dist = metric.pairwise_to_point(S, S[first])
    dist[first] = -np.inf  # never re-pick
    for i in range(1, n_select):
        nxt = int(np.argmax(dist))
        chosen[i] = nxt
        new_dist = metric.pairwise_to_point(S, S[nxt])
        np.minimum(dist, new_dist, out=dist)
        dist[nxt] = -np.inf
    return chosen
