"""Refinement phase (paper section 2.3).

One more pass over the data after hill climbing:

1. **Redo dimensions** using the distribution of each *cluster*
   (``C_i``) instead of the medoid's locality (``L_i``) — the clusters
   formed by the iterative phase describe the data better than raw
   localities.
2. **Reassign** all points with the new dimension sets.
3. **Outliers**: medoid ``i``'s *sphere of influence* is
   ``Delta_i = min_{j != i} d_{D_i}(m_i, m_j)`` — the smallest segmental
   distance to another medoid, measured in ``m_i``'s own subspace.  A
   point is an outlier when its segmental distance to *every* medoid
   exceeds that medoid's sphere of influence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import OUTLIER_LABEL
from ..exceptions import ParameterError
from ..dtypes import as_working
from ..obs import get_tracer
from ..validation import check_array
from .assignment import segmental_distance_matrix
from .dimensions import find_dimensions_from_clusters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..perf.cache import IterativeCache

__all__ = ["spheres_of_influence", "detect_outliers", "refine_clusters",
           "RefinementResult"]


@dataclass
class RefinementResult:
    """Final labels, dimensions, and outlier diagnostics."""

    labels: np.ndarray
    dim_sets: List[Tuple[int, ...]]
    spheres: np.ndarray
    n_outliers: int


def spheres_of_influence(medoids: np.ndarray,
                         dim_sets: Sequence[Sequence[int]]) -> np.ndarray:
    """``Delta_i`` for every medoid (segmental, in the medoid's own dims).

    Builds the full ``(k, k)`` medoid-to-medoid segmental matrix (column
    ``i`` measured in ``D_i``), masks the diagonal with ``inf``, and
    takes the column minima.  The earlier per-medoid loop re-materialised
    ``np.delete(np.arange(k), i)`` and an ``(k-1, |D_i|)`` gather through
    the point kernel for every medoid; filling whole columns over all
    ``k`` rows does the same row-independent ``mean(|diff|)`` reduction
    (so the values are bit-identical) with one gather per column and no
    index juggling.  ``k == 1`` falls out naturally: the only entry is
    the masked diagonal, so the sphere is ``inf``.
    """
    medoids = np.atleast_2d(as_working(medoids))
    k = medoids.shape[0]
    if len(dim_sets) != k:
        raise ParameterError(
            f"{len(dim_sets)} dimension sets for {k} medoids")
    # spheres stay in the working dtype so the outlier comparison pits
    # like-rounded segmental means against the assignment columns
    med_dist = np.empty((k, k), dtype=medoids.dtype)
    for i in range(k):
        dims = np.asarray(list(dim_sets[i]), dtype=np.intp)
        if dims.size == 0:
            raise ParameterError(f"medoid {i} has an empty dimension set")
        if k == 2:
            # numpy's mean sums pairwise over a contiguous inner run but
            # sequentially over a strided one; with two medoids the
            # historical (k-1, |D|) gather was a single contiguous row,
            # so reduce a contiguous row here too to keep the same bits.
            med_dist[1 - i, i] = float(
                np.abs(medoids[1 - i, dims] - medoids[i, dims]).mean())
            med_dist[i, i] = 0.0
        else:
            med_dist[:, i] = np.abs(
                medoids[:, dims] - medoids[i, dims]).mean(axis=1)
    np.fill_diagonal(med_dist, np.inf)
    return med_dist.min(axis=0)


def detect_outliers(dist_matrix: np.ndarray, spheres: np.ndarray) -> np.ndarray:
    """Boolean mask of points outside every medoid's sphere of influence.

    ``dist_matrix`` is the ``(N, k)`` segmental-distance matrix where
    column ``i`` uses ``D_i``.
    """
    return np.all(dist_matrix > spheres[None, :], axis=1)


def refine_clusters(X: np.ndarray, labels: np.ndarray,
                    medoid_indices: np.ndarray, l: float, *,
                    min_dims_per_cluster: int = 2,
                    fallback_dims: Optional[Sequence[Sequence[int]]] = None,
                    handle_outliers: bool = True,
                    exclude_dims: Optional[Sequence[int]] = None,
                    cache: Optional["IterativeCache"] = None) -> RefinementResult:
    """Run the full refinement pass and return the final clustering.

    Parameters
    ----------
    X, labels, medoid_indices:
        Data, iterative-phase labels, and the best medoid set.
    l:
        Average dimensionality (the dimension budget is ``k*l``).
    fallback_dims:
        Iterative-phase dimension sets, used for clusters that came out
        empty (cannot be analysed).
    handle_outliers:
        The paper always detects outliers here; switchable for ablation.
    exclude_dims:
        Dimensions to soft-exclude from the Z-score ranking (the
        robustness layer's constant-dimension fallback).
    cache:
        Optional :class:`~repro.perf.cache.IterativeCache` (usually the
        one the iterative phase just used): segmental columns of
        medoids whose dimension set survived the cluster-based
        recomputation are reused instead of recomputed.
    """
    X = check_array(X, name="X")
    medoid_indices = np.asarray(medoid_indices, dtype=np.intp)
    fallback = (
        [tuple(d) for d in fallback_dims] if fallback_dims is not None else None
    )
    dims = find_dimensions_from_clusters(
        X, labels, medoid_indices, l,
        min_per_cluster=min_dims_per_cluster, fallback=fallback,
        exclude_dims=exclude_dims,
    )
    medoids = X[medoid_indices]
    dist = segmental_distance_matrix(X, medoids, dims,
                                     cache=cache,
                                     medoid_indices=medoid_indices)
    new_labels = np.argmin(dist, axis=1).astype(np.int64)

    spheres = spheres_of_influence(medoids, dims)
    if handle_outliers:
        outlier_mask = detect_outliers(dist, spheres)
        new_labels[outlier_mask] = OUTLIER_LABEL
        n_outliers = int(outlier_mask.sum())
    else:
        n_outliers = 0
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("refinement.outliers_marked", n_outliers)
        tracer.event("refinement_done", n_outliers=n_outliers,
                     spheres_finite=int(np.isfinite(spheres).sum()))

    return RefinementResult(
        labels=new_labels,
        dim_sets=dims,
        spheres=spheres,
        n_outliers=n_outliers,
    )
