"""PROCLUS configuration.

The paper exposes two user parameters — the number of clusters ``k`` and
the average cluster dimensionality ``l`` — plus several internal
constants it names but does not fix numerically.  All of them live here
with documented defaults:

* ``sample_factor`` (the paper's ``A``): the initialization phase samples
  ``A*k`` points.
* ``pool_factor`` (the paper's ``B``, "a small constant"): the greedy
  technique reduces the sample to a candidate pool of ``B*k`` medoids.
* ``min_deviation``: clusters smaller than ``N/k * min_deviation`` mark
  their medoid bad (paper: "in most experiments, we choose 0.1").
* ``max_bad_tries``: the hill climbing stops after this many consecutive
  vertices that fail to improve the best objective (the paper's
  "certain number of vertices").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..distance.base import Metric
from ..exceptions import ParameterError
from ..rng import SeedLike
from ..validation import (
    check_dtype,
    check_fraction,
    check_k_l,
    check_max_retries,
    check_n_jobs,
    check_positive_int,
    check_time_budget,
)

__all__ = ["ProclusConfig"]


@dataclass
class ProclusConfig:
    """All PROCLUS knobs in one validated bundle.

    Parameters
    ----------
    k:
        Number of clusters to find.
    l:
        Average number of dimensions per cluster; ``l >= 2`` and ``k*l``
        integral (paper section 1).
    sample_factor:
        ``A`` — random-sample size multiplier for the initialization phase.
    pool_factor:
        ``B`` — candidate-medoid pool size multiplier (``B <= A``).
    min_deviation:
        Bad-medoid threshold fraction (paper default 0.1).
    max_bad_tries:
        Consecutive non-improving medoid swaps before termination.
    max_iterations:
        Absolute safety cap on hill-climbing iterations.
    metric:
        Full-dimensional metric for initialization/locality radii
        (the paper leaves ``d(.,.)`` generic; default Euclidean).
    min_dims_per_cluster:
        The paper hard-codes 2; configurable for ablations.
    time_budget_s:
        Optional wall-clock budget for the fit.  When it expires the
        hill climbing returns its best-so-far vertex with
        ``terminated_by="deadline"`` instead of raising.  ``None``
        (default) means unlimited.
    cache:
        Enable the incremental per-medoid distance cache
        (:class:`~repro.perf.cache.IterativeCache`) in the iterative
        and refinement phases.  Default on; results are bit-identical
        either way, only the wall clock changes.
    n_jobs:
        Worker count for the deterministic parallel execution layer
        (:mod:`repro.perf.parallel`): ``1`` (default) is the exact
        serial code path, ``>= 2`` fans multi-restart fits out over a
        process pool with a shared-memory data plane, ``-1`` uses all
        cores.  Results are bit-identical for any value.
    max_retries:
        Retry budget per restart under the fault-tolerant supervisor
        (:mod:`repro.robustness.supervisor`): a crashed or hung worker's
        restart is resubmitted up to this many times (deterministic —
        each attempt replays the identical seed stream) before the
        restart degrades to the in-process serial loop.  ``0`` disables
        retries (failed restarts go straight to serial salvage).
    restart_timeout_s:
        Per-restart wall-clock cap in the multi-restart fan-out;
        an in-flight restart exceeding it is treated as hung: the
        worker is replaced and the restart charged a retry.  ``None``
        (default) disables hang detection.
    checkpoint_dir:
        Directory for atomic per-restart checkpoints of a multi-restart
        fit.  Each completed restart persists immediately; an
        interrupted run can later be resumed (``resume=True``) and is
        bit-identical to an uninterrupted one.  ``None`` (default)
        disables checkpointing.
    resume:
        Resume a previous checkpointed run from ``checkpoint_dir``:
        completed restarts are loaded, only the remainder is computed.
        Requires ``checkpoint_dir``; raises
        :class:`~repro.exceptions.CheckpointError` when the directory
        records a different run (other seed, restarts, or parameters).
    dtype:
        Working dtype of the compute path: ``"float64"`` (default, the
        historical bit-exact path) or ``"float32"`` (half the memory
        bandwidth in every kernel; deterministic within the dtype but
        not bit-comparable to float64 runs).  See ``docs/performance.md``.
    seed:
        Seed or generator for all randomised steps.
    """

    k: int
    l: float
    sample_factor: int = 30
    pool_factor: int = 5
    min_deviation: float = 0.1
    max_bad_tries: int = 20
    max_iterations: int = 300
    metric: Union[str, Metric] = "euclidean"
    min_dims_per_cluster: int = 2
    time_budget_s: Optional[float] = None
    cache: bool = True
    n_jobs: int = 1
    max_retries: int = 2
    restart_timeout_s: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    dtype: str = "float64"
    seed: SeedLike = None
    extra: dict = field(default_factory=dict)

    def validated(self, n_points: int, n_dims: int) -> "ProclusConfig":
        """Validate against a concrete dataset shape; returns ``self``."""
        self.k, self.l = check_k_l(self.k, self.l, n_dims, n_points)
        check_positive_int(self.sample_factor, name="sample_factor", minimum=1)
        check_positive_int(self.pool_factor, name="pool_factor", minimum=1)
        if self.pool_factor > self.sample_factor:
            raise ParameterError(
                "pool_factor (B) must be <= sample_factor (A); got "
                f"B={self.pool_factor}, A={self.sample_factor}"
            )
        self.min_deviation = check_fraction(
            self.min_deviation, name="min_deviation", inclusive_high=False
        )
        check_positive_int(self.max_bad_tries, name="max_bad_tries", minimum=1)
        check_positive_int(self.max_iterations, name="max_iterations", minimum=1)
        check_positive_int(
            self.min_dims_per_cluster, name="min_dims_per_cluster", minimum=1
        )
        self.time_budget_s = check_time_budget(self.time_budget_s)
        self.cache = bool(self.cache)
        self.n_jobs = check_n_jobs(self.n_jobs)
        self.max_retries = check_max_retries(self.max_retries)
        self.restart_timeout_s = check_time_budget(
            self.restart_timeout_s, name="restart_timeout_s")
        self.resume = bool(self.resume)
        self.dtype = check_dtype(self.dtype)
        if self.checkpoint_dir is not None:
            self.checkpoint_dir = str(self.checkpoint_dir)
        if self.resume and self.checkpoint_dir is None:
            raise ParameterError(
                "resume=True requires checkpoint_dir to be set"
            )
        if self.min_dims_per_cluster > self.l:
            raise ParameterError(
                f"min_dims_per_cluster={self.min_dims_per_cluster} exceeds l={self.l}"
            )
        if self.k > n_points:
            raise ParameterError(f"k={self.k} exceeds N={n_points}")
        return self

    @property
    def total_dimensions(self) -> int:
        """The dimension budget ``k * l`` distributed by FindDimensions."""
        return int(round(self.k * self.l))

    @property
    def sample_size(self) -> int:
        """Initialization-phase random sample size ``A * k``."""
        return self.sample_factor * self.k

    @property
    def pool_size(self) -> int:
        """Candidate medoid pool size ``B * k``."""
        return self.pool_factor * self.k
