"""Clustering objective (paper Figure 6, ``EvaluateClusters``).

For each cluster ``C_i`` with dimension set ``D_i``:

* ``Y_{i,j}`` = average distance of the points of ``C_i`` to the
  cluster *centroid* (not the medoid) along dimension ``j in D_i``;
* ``w_i = mean_{j in D_i} Y_{i,j}`` — the cluster's segmental dispersion.

The objective is the size-weighted mean ``sum_i |C_i| * w_i / N``;
lower is better.  Points labelled as outliers (label ``-1``) are skipped
in the numerator but the paper's normalisation by the full ``N`` is kept
(during the iterative phase every point is assigned, so the distinction
only matters if callers evaluate a refined clustering).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..exceptions import ParameterError
from ..validation import check_array

__all__ = ["evaluate_clusters", "cluster_dispersions"]


def cluster_dispersions(X: np.ndarray, labels: np.ndarray,
                        dim_sets: Sequence[Sequence[int]]) -> Dict[int, float]:
    """Per-cluster segmental dispersion ``w_i`` about the centroid.

    Empty clusters get ``w_i = 0.0`` (they contribute nothing to the
    objective but are flagged as bad medoids by the caller).
    """
    X = check_array(X, name="X")
    labels = np.asarray(labels)
    k = len(dim_sets)
    out: Dict[int, float] = {}
    for i in range(k):
        dims = np.asarray(list(dim_sets[i]), dtype=np.intp)
        if dims.size == 0:
            raise ParameterError(f"cluster {i} has an empty dimension set")
        members = labels == i
        if not members.any():
            out[i] = 0.0
            continue
        sub = X[members][:, dims]
        centroid = sub.mean(axis=0)
        out[i] = float(np.abs(sub - centroid).mean())
    return out


def evaluate_clusters(X: np.ndarray, labels: np.ndarray,
                      dim_sets: Sequence[Sequence[int]]) -> float:
    """The paper's objective: size-weighted mean dispersion, lower is better."""
    labels = np.asarray(labels)
    n = labels.shape[0]
    if n == 0:
        raise ParameterError("cannot evaluate an empty clustering")
    dispersions = cluster_dispersions(X, labels, dim_sets)
    total = 0.0
    for i, w in dispersions.items():
        size = int(np.count_nonzero(labels == i))
        total += size * w
    return total / n
