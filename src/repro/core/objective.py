"""Clustering objective (paper Figure 6, ``EvaluateClusters``).

For each cluster ``C_i`` with dimension set ``D_i``:

* ``Y_{i,j}`` = average distance of the points of ``C_i`` to the
  cluster *centroid* (not the medoid) along dimension ``j in D_i``;
* ``w_i = mean_{j in D_i} Y_{i,j}`` — the cluster's segmental dispersion.

The objective is the size-weighted mean ``sum_i |C_i| * w_i / N``;
lower is better.  Points labelled as outliers (label ``-1``) are skipped
in the numerator but the paper's normalisation by the full ``N`` is kept
(during the iterative phase every point is assigned, so the distinction
only matters if callers evaluate a refined clustering).

Labels outside ``{-1, 0..k-1}`` are rejected with a
:class:`~repro.exceptions.ParameterError`: they would silently drop
from every numerator while still inflating the denominator, skewing the
objective without any visible failure.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..data.dataset import OUTLIER_LABEL
from ..exceptions import ParameterError
from ..validation import check_array

__all__ = ["evaluate_clusters", "cluster_dispersions",
           "cluster_dispersions_and_sizes"]


def _check_labels(labels: np.ndarray, k: int) -> None:
    """Reject labels outside ``{OUTLIER_LABEL, 0..k-1}``."""
    if labels.size == 0:
        return
    lo = int(labels.min())
    hi = int(labels.max())
    if lo < OUTLIER_LABEL or hi >= k:
        bad = lo if lo < OUTLIER_LABEL else hi
        raise ParameterError(
            f"label {bad} is outside the valid range "
            f"{{{OUTLIER_LABEL}, 0..{k - 1}}} for {k} dimension sets"
        )


def cluster_dispersions_and_sizes(
    X: np.ndarray, labels: np.ndarray,
    dim_sets: Sequence[Sequence[int]],
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Per-cluster dispersion ``w_i`` and size ``|C_i|`` in one pass.

    One membership mask per cluster serves both quantities — the
    objective needs the sizes anyway, and rebuilding ``labels == i``
    a second time doubled the label-scan cost of every evaluation in
    the hill climb.  Empty clusters get ``w_i = 0.0`` (they contribute
    nothing to the objective but are flagged as bad medoids by the
    caller).
    """
    X = check_array(X, name="X")
    labels = np.asarray(labels)
    k = len(dim_sets)
    _check_labels(labels, k)
    dispersions: Dict[int, float] = {}
    sizes: Dict[int, int] = {}
    for i in range(k):
        dims = np.asarray(list(dim_sets[i]), dtype=np.intp)
        if dims.size == 0:
            raise ParameterError(f"cluster {i} has an empty dimension set")
        members = labels == i
        size = int(np.count_nonzero(members))
        sizes[i] = size
        if size == 0:
            dispersions[i] = 0.0
            continue
        sub = X[members][:, dims]
        # the objective steers the hill climb's accept/reject decisions,
        # so its long reductions accumulate in float64 for any working
        # dtype (bit-identical for float64 input; for float32 the diffs
        # stay float32 but the sums do not lose mass to cancellation)
        centroid = sub.mean(axis=0, dtype=np.float64).astype(sub.dtype,
                                                            copy=False)
        dispersions[i] = float(np.abs(sub - centroid).mean(dtype=np.float64))
    return dispersions, sizes


def cluster_dispersions(X: np.ndarray, labels: np.ndarray,
                        dim_sets: Sequence[Sequence[int]]) -> Dict[int, float]:
    """Per-cluster segmental dispersion ``w_i`` about the centroid."""
    dispersions, _ = cluster_dispersions_and_sizes(X, labels, dim_sets)
    return dispersions


def evaluate_clusters(X: np.ndarray, labels: np.ndarray,
                      dim_sets: Sequence[Sequence[int]]) -> float:
    """The paper's objective: size-weighted mean dispersion, lower is better."""
    labels = np.asarray(labels)
    n = labels.shape[0]
    if n == 0:
        raise ParameterError("cannot evaluate an empty clustering")
    dispersions, sizes = cluster_dispersions_and_sizes(X, labels, dim_sets)
    total = 0.0
    for i, w in dispersions.items():
        total += sizes[i] * w
    return total / n
