"""Persist fitted results: save/load :class:`ProclusResult` as ``.npz``.

A fitted projected clustering is often computed once and consumed by
downstream jobs (reporting, assignment of new records).  The format is
a single compressed ``.npz``: arrays stored natively, scalar/structured
metadata as one JSON blob — no pickle, so files are safe to share.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import DataError
from .result import ProclusResult

__all__ = ["save_result", "load_result"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_result(result: ProclusResult, path: PathLike) -> Path:
    """Write ``result`` to ``path`` (``.npz``); returns the path."""
    path = Path(path)
    meta = {
        "format_version": _FORMAT_VERSION,
        "dimensions": {str(k): list(v) for k, v in result.dimensions.items()},
        "objective": result.objective,
        "iterative_objective": result.iterative_objective,
        "n_iterations": result.n_iterations,
        "n_improvements": result.n_improvements,
        "objective_history": list(result.objective_history),
        "phase_seconds": dict(result.phase_seconds),
        "terminated_by": result.terminated_by,
        "warnings": list(result.warnings),
        "degraded": bool(result.degraded),
        "cache_stats": result.cache_stats,
        "parallelism": result.parallelism,
        "fault_tolerance": result.fault_tolerance,
        "profile": result.profile,
    }
    np.savez_compressed(
        path,
        labels=result.labels,
        medoids=result.medoids,
        medoid_indices=result.medoid_indices,
        meta_json=np.asarray(json.dumps(meta)),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_result(path: PathLike) -> ProclusResult:
    """Read a result previously written by :func:`save_result`."""
    with np.load(Path(path), allow_pickle=False) as data:
        try:
            meta = json.loads(str(data["meta_json"]))
            labels = data["labels"]
            medoids = data["medoids"]
            medoid_indices = data["medoid_indices"]
        except KeyError as exc:
            raise DataError(f"{path} is not a saved ProclusResult: missing {exc}")
    version = meta.get("format_version")
    if version != _FORMAT_VERSION:
        raise DataError(
            f"{path} has format version {version}; this library reads "
            f"version {_FORMAT_VERSION}"
        )
    return ProclusResult(
        labels=labels,
        medoids=medoids,
        medoid_indices=medoid_indices,
        dimensions={int(k): tuple(v) for k, v in meta["dimensions"].items()},
        objective=float(meta["objective"]),
        iterative_objective=float(meta.get("iterative_objective", np.inf)),
        n_iterations=int(meta["n_iterations"]),
        n_improvements=int(meta["n_improvements"]),
        objective_history=[float(x) for x in meta["objective_history"]],
        phase_seconds={k: float(v) for k, v in meta["phase_seconds"].items()},
        terminated_by=str(meta["terminated_by"]),
        warnings=[str(m) for m in meta.get("warnings", [])],
        degraded=bool(meta.get("degraded", False)),
        cache_stats=meta.get("cache_stats"),
        parallelism=meta.get("parallelism"),
        fault_tolerance=meta.get("fault_tolerance"),
        profile=meta.get("profile"),
    )
