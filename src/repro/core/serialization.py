"""Persist fitted results: save/load :class:`ProclusResult` as ``.npz``.

A fitted projected clustering is often computed once and consumed by
downstream jobs (reporting, the query server, assignment of new
records).  The format is a single compressed ``.npz``: arrays stored
natively, scalar/structured metadata as one JSON blob — no pickle, so
files are safe to share.

Two integrity guarantees, both motivated by the serving path (a daemon
hot-loading a model must never serve a half-written file):

* **Atomic writes** — :func:`save_result` stages the payload through
  :func:`repro.robustness.atomicio.atomic_write` (write-temp-then-
  ``os.replace``), so a crash mid-save can never leave a truncated
  model at the destination path.
* **Content fingerprint** — format version 2 embeds a sha256 digest of
  the arrays and the metadata blob.  :func:`load_result` recomputes and
  compares it; a corrupt, truncated, or tampered file raises
  :class:`~repro.exceptions.CheckpointError` (CLI exit code 4), the
  same typed failure the checkpoint/resume machinery uses for an
  unusable on-disk artifact.  Version-1 files (pre-fingerprint) still
  load.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from ..exceptions import CheckpointError, DataError
from ..robustness.atomicio import atomic_write
from .result import ProclusResult

__all__ = ["save_result", "load_result", "load_result_with_fingerprint",
           "result_fingerprint"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 2
#: Format versions :func:`load_result` accepts (1 = legacy, no
#: fingerprint; 2 = fingerprinted).
_READABLE_VERSIONS = (1, 2)


def _content_fingerprint(labels: np.ndarray, medoids: np.ndarray,
                         medoid_indices: np.ndarray, meta_json: str) -> str:
    """sha256 over the saved arrays (dtype+shape+bytes) and metadata."""
    digest = hashlib.sha256()
    for array in (labels, medoids, medoid_indices):
        arr = np.ascontiguousarray(array)
        digest.update(arr.dtype.str.encode("utf-8"))
        digest.update(repr(arr.shape).encode("utf-8"))
        digest.update(arr.tobytes())
    digest.update(meta_json.encode("utf-8"))
    return digest.hexdigest()


def _resolve_npz_path(path: PathLike) -> Path:
    """The on-disk path ``np.savez`` semantics would produce."""
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz")


def save_result(result: ProclusResult, path: PathLike) -> Path:
    """Write ``result`` to ``path`` (``.npz``) atomically; returns the path.

    The file lands under its final name only after the complete payload
    (including the content fingerprint) has been written — a reader can
    never observe a torn save.
    """
    final = _resolve_npz_path(path)
    meta = {
        "format_version": _FORMAT_VERSION,
        "dimensions": {str(k): list(v) for k, v in result.dimensions.items()},
        "objective": result.objective,
        "iterative_objective": result.iterative_objective,
        "n_iterations": result.n_iterations,
        "n_improvements": result.n_improvements,
        "objective_history": list(result.objective_history),
        "phase_seconds": dict(result.phase_seconds),
        "terminated_by": result.terminated_by,
        "warnings": list(result.warnings),
        "degraded": bool(result.degraded),
        "cache_stats": result.cache_stats,
        "parallelism": result.parallelism,
        "fault_tolerance": result.fault_tolerance,
        "profile": result.profile,
    }
    meta_json = json.dumps(meta)
    fingerprint = _content_fingerprint(
        result.labels, result.medoids, result.medoid_indices, meta_json)
    with atomic_write(final) as tmp:
        # write through a file handle so numpy cannot re-suffix the
        # staging path out from under the atomic replace
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                labels=result.labels,
                medoids=result.medoids,
                medoid_indices=result.medoid_indices,
                meta_json=np.asarray(meta_json),
                fingerprint=np.asarray(fingerprint),
            )
    return final


def load_result(path: PathLike) -> ProclusResult:
    """Read a result previously written by :func:`save_result`.

    Raises
    ------
    CheckpointError
        The file is corrupt, truncated, or its content fingerprint does
        not match — loading it would serve a model that differs from
        what was saved.
    DataError
        The file is a well-formed archive but not a saved
        :class:`ProclusResult`, or its format version is unreadable.
    """
    return load_result_with_fingerprint(path)[0]


def load_result_with_fingerprint(
        path: PathLike) -> Tuple[ProclusResult, str]:
    """Like :func:`load_result`, plus the file's content fingerprint.

    The fingerprint comes from the *same single read* as the arrays —
    callers that need both (the query server pairing responses with a
    model identity) must not re-read the file, because a concurrent
    atomic replace between two reads would pair one file's arrays with
    another file's fingerprint.  For version-2 files this is the stored
    (and verified) sha256; for legacy version-1 files it is computed
    from the loaded content.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            try:
                meta_json = str(data["meta_json"])
                labels = data["labels"]
                medoids = data["medoids"]
                medoid_indices = data["medoid_indices"]
            except KeyError as exc:
                raise DataError(
                    f"{path} is not a saved ProclusResult: missing {exc}")
            stored_fingerprint = (
                str(data["fingerprint"]) if "fingerprint" in data else None)
    except DataError:
        raise
    except (OSError, EOFError, ValueError, zipfile.BadZipFile) as exc:
        # numpy raises plain ValueError for torn/garbled array payloads
        raise CheckpointError(
            f"saved result {path} is corrupt or truncated: {exc}")
    try:
        meta = json.loads(meta_json)
    except ValueError as exc:
        raise CheckpointError(
            f"saved result {path} has an unreadable metadata blob: {exc}")
    version = meta.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise DataError(
            f"{path} has format version {version}; this library reads "
            f"versions {list(_READABLE_VERSIONS)}"
        )
    fingerprint = _content_fingerprint(labels, medoids, medoid_indices,
                                       meta_json)
    if version >= 2 and stored_fingerprint != fingerprint:
        raise CheckpointError(
            f"saved result {path} fails its content fingerprint check "
            f"(stored {stored_fingerprint!r}); the file was tampered "
            "with or corrupted after the save"
        )
    result = ProclusResult(
        labels=labels,
        medoids=medoids,
        medoid_indices=medoid_indices,
        dimensions={int(k): tuple(v) for k, v in meta["dimensions"].items()},
        objective=float(meta["objective"]),
        iterative_objective=float(meta.get("iterative_objective", np.inf)),
        n_iterations=int(meta["n_iterations"]),
        n_improvements=int(meta["n_improvements"]),
        objective_history=[float(x) for x in meta["objective_history"]],
        phase_seconds={k: float(v) for k, v in meta["phase_seconds"].items()},
        terminated_by=str(meta["terminated_by"]),
        warnings=[str(m) for m in meta.get("warnings", [])],
        degraded=bool(meta.get("degraded", False)),
        cache_stats=meta.get("cache_stats"),
        parallelism=meta.get("parallelism"),
        fault_tolerance=meta.get("fault_tolerance"),
        profile=meta.get("profile"),
    )
    return result, fingerprint


def result_fingerprint(path: PathLike) -> str:
    """The content fingerprint of a saved result file.

    For version-2 files this is the stored (and verified) sha256; for
    legacy version-1 files the digest is computed on the fly so callers
    (the query server's model registry) always get a stable identity.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            if "fingerprint" in data:
                return str(data["fingerprint"])
            try:
                return _content_fingerprint(
                    data["labels"], data["medoids"], data["medoid_indices"],
                    str(data["meta_json"]))
            except KeyError as exc:
                raise DataError(
                    f"{path} is not a saved ProclusResult: missing {exc}")
    except DataError:
        raise
    except (OSError, EOFError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"saved result {path} is corrupt or truncated: {exc}")
