"""Diagnostics for the paper's robustness analysis (section 3).

PROCLUS's accuracy rests on two properties the paper argues for:

* the candidate pool (and the final medoid set) should be **piercing**
  — contain at least one point from every natural cluster;
* each medoid's **locality** should hold enough points (expected
  ``N/k`` for random medoids, Theorem 3.1; more for the spread-out
  medoids the greedy picks) for the dimension statistics to be robust.

These helpers quantify both on concrete runs, for tests, benches, and
users debugging a bad clustering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.dataset import OUTLIER_LABEL
from ..distance.base import Metric
from ..validation import check_array
from .dimensions import compute_localities

__all__ = ["PiercingReport", "piercing_report", "LocalityReport",
           "locality_report", "CacheReport", "cache_report",
           "ParallelReport", "parallel_report"]


@dataclass
class PiercingReport:
    """Does a point set pierce every ground-truth cluster?"""

    clusters_hit: Tuple[int, ...]
    clusters_missed: Tuple[int, ...]
    points_per_cluster: Dict[int, int]
    n_outlier_points: int

    @property
    def is_piercing(self) -> bool:
        """True when every ground-truth cluster is represented."""
        return not self.clusters_missed

    @property
    def n_duplicated_clusters(self) -> int:
        """Clusters represented by more than one chosen point."""
        return sum(1 for c in self.points_per_cluster.values() if c > 1)

    def to_text(self) -> str:
        """One-line verdict plus per-cluster counts."""
        verdict = "piercing" if self.is_piercing else (
            f"NOT piercing (missed clusters {list(self.clusters_missed)})"
        )
        counts = ", ".join(
            f"{cid}:{n}" for cid, n in sorted(self.points_per_cluster.items())
        )
        return (
            f"{verdict}; points per cluster {{{counts}}}, "
            f"{self.n_outlier_points} outlier pick(s)"
        )


def piercing_report(chosen_indices: Sequence[int],
                    true_labels: np.ndarray) -> PiercingReport:
    """Check a chosen point set (pool or medoids) against ground truth."""
    true_labels = np.asarray(true_labels)
    chosen = np.asarray(chosen_indices, dtype=np.intp)
    cluster_ids = sorted(
        int(c) for c in np.unique(true_labels) if c != OUTLIER_LABEL
    )
    picked_labels = true_labels[chosen]
    per_cluster = {
        cid: int(np.count_nonzero(picked_labels == cid))
        for cid in cluster_ids
    }
    hit = tuple(cid for cid, n in per_cluster.items() if n > 0)
    missed = tuple(cid for cid, n in per_cluster.items() if n == 0)
    return PiercingReport(
        clusters_hit=hit,
        clusters_missed=missed,
        points_per_cluster=per_cluster,
        n_outlier_points=int(np.count_nonzero(picked_labels == OUTLIER_LABEL)),
    )


@dataclass
class LocalityReport:
    """Locality sizes for a medoid set (Theorem 3.1's quantity)."""

    sizes: Tuple[int, ...]
    deltas: Tuple[float, ...]
    expected_random: float

    @property
    def mean_size(self) -> float:
        """Mean locality size across medoids."""
        return float(np.mean(self.sizes))

    @property
    def min_size(self) -> int:
        """Smallest locality (the robustness bottleneck)."""
        return int(min(self.sizes))

    @property
    def meets_theorem_bound(self) -> bool:
        """Paper section 3: greedy-selected medoids are far apart, so
        localities are expected to hold *at least* N/k points each on
        average."""
        return self.mean_size >= self.expected_random

    def to_text(self) -> str:
        """Sizes, radii, and the N/k reference."""
        sizes = ", ".join(str(s) for s in self.sizes)
        return (
            f"locality sizes [{sizes}] (mean {self.mean_size:.0f}, "
            f"min {self.min_size}); random-medoid expectation "
            f"N/k = {self.expected_random:.0f}"
        )


def locality_report(X: np.ndarray, medoid_indices: Sequence[int], *,
                    metric: Union[str, Metric] = "euclidean") -> LocalityReport:
    """Locality sizes and radii for a concrete medoid set."""
    X = check_array(X, name="X")
    medoid_indices = np.asarray(medoid_indices, dtype=np.intp)
    localities, deltas = compute_localities(X, medoid_indices, metric=metric,
                                            min_locality_size=0)
    return LocalityReport(
        sizes=tuple(len(loc) for loc in localities),
        deltas=tuple(float(d) for d in deltas),
        expected_random=X.shape[0] / medoid_indices.size,
    )


@dataclass
class CacheReport:
    """Aggregated view of the incremental distance cache's counters.

    Built from ``result.cache_stats`` (or
    :meth:`repro.perf.IterativeCache.stats_dict`); answers "did the
    cache actually pay off on this run?".
    """

    hits: int
    misses: int
    evictions: int
    bytes_held: int
    budget_bytes: int
    per_store: Dict[str, Dict[str, float]]

    @property
    def lookups(self) -> int:
        """Total cache probes across all stores."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Overall fraction of probes served from cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def thrashing(self) -> bool:
        """True when evictions outnumber hits — the budget is too small
        for the working set and the cache is mostly churning."""
        return self.evictions > self.hits

    def to_text(self) -> str:
        """One-line verdict plus per-store hit rates."""
        stores = ", ".join(
            f"{name}={s.get('hit_rate', 0.0):.0%}"
            for name, s in sorted(self.per_store.items())
        )
        verdict = "THRASHING (raise the memory budget)" if self.thrashing \
            else f"{self.hit_rate:.0%} overall hit rate"
        return (
            f"cache: {verdict}; per store [{stores}]; "
            f"{self.bytes_held >> 10} KiB held of "
            f"{self.budget_bytes >> 20} MiB budget"
        )


def cache_report(stats: Optional[Mapping[str, Mapping[str, float]]]) -> Optional[CacheReport]:
    """Summarise ``result.cache_stats``; ``None`` for uncached runs."""
    if stats is None:
        return None
    memory = stats.get("memory", {})
    stores = {name: dict(s) for name, s in stats.items() if name != "memory"}
    return CacheReport(
        hits=int(sum(s.get("hits", 0) for s in stores.values())),
        misses=int(sum(s.get("misses", 0) for s in stores.values())),
        evictions=int(sum(s.get("evictions", 0) for s in stores.values())),
        bytes_held=int(memory.get("bytes", 0)),
        budget_bytes=int(memory.get("budget_bytes", 0)),
        per_store=stores,
    )


@dataclass
class ParallelReport:
    """Aggregated view of a restart fan-out's worker utilisation.

    Built from ``result.parallelism``; answers "did the extra workers
    actually pay off on this fit?".
    """

    n_jobs: int
    n_workers: int
    restarts_completed: int
    restart_seconds: Sequence[Optional[float]]
    wall_seconds: float

    @property
    def busy_seconds(self) -> float:
        """Total worker wall time over the completed restarts."""
        return float(sum(s for s in self.restart_seconds if s is not None))

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual fan-out wall time."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.busy_seconds / self.wall_seconds

    @property
    def efficiency(self) -> float:
        """:attr:`speedup` per worker (1.0 = perfectly parallel)."""
        return self.speedup / max(1, self.n_workers)

    def to_text(self) -> str:
        """One-line utilisation summary."""
        return (
            f"parallel: {self.restarts_completed} restart(s) on "
            f"{self.n_workers} worker(s) (n_jobs={self.n_jobs}); "
            f"{self.busy_seconds:.3f}s of work in {self.wall_seconds:.3f}s "
            f"wall ({self.speedup:.2f}x, {self.efficiency:.0%} efficiency)"
        )


def parallel_report(parallelism: Optional[Mapping[str, object]]) -> Optional[ParallelReport]:
    """Summarise ``result.parallelism``; ``None`` for single-restart fits."""
    if parallelism is None:
        return None
    return ParallelReport(
        n_jobs=int(parallelism.get("n_jobs", 1)),
        n_workers=int(parallelism.get("n_workers", 1)),
        restarts_completed=int(parallelism.get("restarts_completed", 0)),
        restart_seconds=list(parallelism.get("restart_seconds", [])),
        wall_seconds=float(parallelism.get("wall_seconds", 0.0)),
    )
