"""Assign *new* points to a fitted PROCLUS clustering (the predict path).

The paper fits a clustering once over a database; a production system
then has to answer "which projected cluster does this fresh record
belong to?" continuously, without refitting.  This module is that
inference core, shared by
:meth:`repro.core.result.ProclusResult.predict` and the hardened query
server in :mod:`repro.serve`.

Semantics mirror the refinement phase (paper section 2.3) exactly:

* every query point is assigned to the medoid with the smallest
  **Manhattan segmental distance** measured in that medoid's own
  dimension set ``D_i``;
* a point is an **outlier** (label ``-1``) when its segmental distance
  to every medoid ``i`` exceeds that medoid's *sphere of influence*
  ``Delta_i = min_{j != i} d_{D_i}(m_i, m_j)`` — the same strict ``>``
  rule the refinement pass applies.

Because the distance kernel, the spheres, and the argmin tie-break are
the ones the fit itself used, ``predict(X_train)`` on a clean fit is
**bit-identical** to ``result.labels`` — across working dtypes, cache
on/off, and serial/parallel fits (test-enforced).  Queries run through
the chunked memory-budget kernel, compute natively in the fitted
working dtype, and honour an optional per-call wall-clock
:class:`~repro.robustness.guards.Deadline`: when the budget expires
mid-batch the partial result is *discarded* and a typed
:class:`~repro.exceptions.BudgetExceededError` is raised — a serving
layer must never return half-assigned batches as if they were whole.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, List, Mapping, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from ..data.dataset import OUTLIER_LABEL
from ..exceptions import DegenerateDataError, ParameterError
from ..obs import get_tracer
from ..perf.kernels import segmental_columns
from ..robustness.guards import Deadline
from ..validation import check_array, check_positive_int
from .refinement import detect_outliers, spheres_of_influence

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..robustness.sanitize import SanitizationReport

__all__ = ["PredictReport", "predict_points", "normalize_dimension_sets",
           "DEFAULT_PREDICT_CHUNK"]

#: Row-chunk granularity of the predict loop.  Chunk boundaries never
#: change a bit of the output (segment reductions are row-independent);
#: they bound peak memory and set how often the deadline is polled.
DEFAULT_PREDICT_CHUNK: int = 8192

DimensionSets = Union[Mapping[int, Sequence[int]], Sequence[Sequence[int]]]


@dataclass
class PredictReport:
    """Labels and diagnostics for one predict batch.

    Attributes
    ----------
    labels:
        ``(n_points,)`` int64 array of cluster ids ``0..k-1`` or ``-1``
        for outliers, in the *caller's* row order (rows a sanitization
        policy dropped are labelled ``-1``).
    n_points / n_outliers:
        Batch size (original rows) and how many rows ended up labelled
        ``-1``.
    spheres:
        The per-medoid spheres of influence used for the outlier test
        (``inf`` for ``k == 1``: a lone medoid rejects nothing).
    sanitization:
        The :class:`~repro.robustness.sanitize.SanitizationReport` when
        a non-``"raise"`` bad-value policy inspected the batch, else
        ``None``.
    distances:
        The ``(n_clean, k)`` segmental-distance matrix when
        ``return_distances=True`` was requested, else ``None`` (row
        order follows the sanitized matrix, not the caller's).
    warnings:
        Human-readable notes (sanitization modifications, degenerate
        batches); the serving layer forwards these in the response body.
    """

    labels: np.ndarray
    n_points: int
    n_outliers: int
    spheres: np.ndarray
    sanitization: Optional["SanitizationReport"] = None
    distances: Optional[np.ndarray] = None
    warnings: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (the wire shape the query server returns)."""
        return {
            "labels": [int(v) for v in self.labels],
            "n_points": int(self.n_points),
            "n_outliers": int(self.n_outliers),
            "warnings": list(self.warnings),
        }


def normalize_dimension_sets(dimensions: DimensionSets, k: int,
                             d: int) -> List[Tuple[int, ...]]:
    """Validate and order per-cluster dimension sets for ``k`` medoids.

    Accepts the :attr:`ProclusResult.dimensions` mapping (cluster id ->
    dims) or a plain sequence; returns one sorted tuple per cluster id
    ``0..k-1``.  Missing ids, empty sets, or out-of-range dimension
    indices raise :class:`~repro.exceptions.ParameterError`.
    """
    ordered: List[Sequence[int]]
    if isinstance(dimensions, Mapping):
        try:
            ordered = [dimensions[i] for i in range(k)]
        except KeyError as exc:
            raise ParameterError(
                f"dimensions mapping is missing cluster id {exc} "
                f"(need ids 0..{k - 1})"
            )
    else:
        ordered = list(dimensions)
        if len(ordered) != k:
            raise ParameterError(
                f"need one dimension set per medoid; got {len(ordered)} "
                f"for k={k}"
            )
    out: List[Tuple[int, ...]] = []
    for cid, dims in enumerate(ordered):
        dim_tuple = tuple(sorted(int(j) for j in dims))
        if not dim_tuple:
            raise ParameterError(f"cluster {cid} has an empty dimension set")
        if dim_tuple[0] < 0 or dim_tuple[-1] >= d:
            raise ParameterError(
                f"cluster {cid} has dimension indices outside [0, {d - 1}]: "
                f"{list(dim_tuple)}"
            )
        out.append(dim_tuple)
    return out


def _coerce_queries(X: Any, d: int, dtype: np.dtype,
                    max_points: Optional[int]) -> np.ndarray:
    """Shape/size-validate a query batch into fitted-dtype matrix form.

    Every rejection is a typed :class:`~repro.exceptions.ParameterError`
    so the serving layer can map it to a structured HTTP 400 — a
    malformed query must never surface as an internal error.  Content
    (NaN/inf) is *not* checked here; that is the bad-value policy's job.
    """
    try:
        arr = np.asarray(X, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"query batch is not numeric matrix data: {exc}")
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ParameterError(
            "query batch must be 2-dimensional (n_points, d); got "
            f"ndim={arr.ndim}"
        )
    if arr.shape[0] == 0:
        raise ParameterError("query batch is empty")
    if arr.shape[1] != d:
        raise ParameterError(
            f"query batch has {arr.shape[1]} dimension(s); the fitted "
            f"model expects d={d}"
        )
    if max_points is not None:
        check_positive_int(max_points, name="max_points", minimum=1)
        if arr.shape[0] > max_points:
            raise ParameterError(
                f"query batch has {arr.shape[0]} points; at most "
                f"{max_points} are accepted per request"
            )
    return np.ascontiguousarray(arr)


def predict_points(
    X: Any,
    medoids: np.ndarray,
    dimensions: DimensionSets,
    *,
    handle_outliers: bool = True,
    spheres: Optional[np.ndarray] = None,
    on_bad_values: str = "raise",
    max_points: Optional[int] = None,
    chunk_size: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    deadline: Optional[Deadline] = None,
    return_distances: bool = False,
) -> PredictReport:
    """Assign a batch of new points to a fitted projected clustering.

    Parameters
    ----------
    X:
        Query batch ``(n, d)`` (a single ``(d,)`` point is accepted and
        treated as one row).
    medoids, dimensions:
        The fitted model: medoid coordinates ``(k, d)`` in the fitted
        working dtype, and per-cluster dimension sets (the
        :attr:`ProclusResult.dimensions` mapping or a sequence).
    handle_outliers:
        Apply the refinement phase's sphere-of-influence rule and label
        rejected points ``-1``.  Disable for fits that ran with
        ``handle_outliers=False``, whose training labels were produced
        without the rule.
    spheres:
        Precomputed spheres of influence (one per medoid).  ``None``
        recomputes them from the model — a server computes them once at
        model-load time and passes them in on every request.
    on_bad_values:
        NaN/inf policy for the *queries*: ``"raise"`` (default) rejects
        the batch with :class:`~repro.exceptions.ParameterError`;
        ``"drop"`` labels affected rows ``-1``; ``"impute_median"`` /
        ``"clip"`` repair cells from the batch's own column statistics.
    max_points:
        Reject batches larger than this (request-size admission for the
        serving layer).
    chunk_size:
        Rows per kernel call (default :data:`DEFAULT_PREDICT_CHUNK`).
        Never changes the output bits; bounds memory and sets the
        deadline polling granularity.
    memory_budget_bytes:
        Forwarded to the segmental kernel's internal row-chunking guard.
    deadline:
        Optional wall-clock budget.  Expiry *between* chunks discards
        the partial batch and raises
        :class:`~repro.exceptions.BudgetExceededError` — the caller
        gets all assignments or none.
    return_distances:
        Also keep the full ``(n_clean, k)`` distance matrix on the
        report.

    Returns
    -------
    PredictReport
        Labels in the caller's row order plus diagnostics.
    """
    medoid_arr = check_array(medoids, name="medoids")
    k, d = int(medoid_arr.shape[0]), int(medoid_arr.shape[1])
    dim_sets = normalize_dimension_sets(dimensions, k, d)

    if spheres is None:
        sphere_arr = spheres_of_influence(medoid_arr, dim_sets)
    else:
        sphere_arr = np.asarray(spheres, dtype=medoid_arr.dtype)
        if sphere_arr.shape != (k,):
            raise ParameterError(
                f"spheres must have shape ({k},); got {sphere_arr.shape}")

    queries = _coerce_queries(X, d, medoid_arr.dtype, max_points)
    n_original = int(queries.shape[0])
    report: Optional["SanitizationReport"] = None
    if on_bad_values == "raise":
        if not bool(np.isfinite(queries).all()):
            raise ParameterError(
                "query batch contains NaN or infinite values; pass "
                "on_bad_values='drop', 'impute_median', or 'clip' to "
                "sanitize"
            )
    else:
        from ..robustness.sanitize import sanitize

        try:
            queries, report = sanitize(
                queries, on_bad_values=on_bad_values,
                collapse_duplicates=False, detect_constant_dims=False,
                warn=False, dtype=medoid_arr.dtype)
        except DegenerateDataError:
            # every row was dropped by the policy: nothing to assign —
            # the whole batch is outliers by construction, not an error
            return PredictReport(
                labels=np.full(n_original, OUTLIER_LABEL, dtype=np.int64),
                n_points=n_original,
                n_outliers=n_original,
                spheres=sphere_arr,
                warnings=["every query row was dropped by the bad-value "
                          "policy; the whole batch is labelled -1"],
            )

    n = int(queries.shape[0])
    if chunk_size is None:
        step = min(DEFAULT_PREDICT_CHUNK, n)
    else:
        step = min(check_positive_int(chunk_size, name="chunk_size",
                                      minimum=1), n)
    tracer = get_tracer()
    dist = np.empty((n, k), dtype=queries.dtype)
    with tracer.span("predict", n_points=n, k=k) as span:
        for start in range(0, n, step):
            if deadline is not None:
                deadline.check("predict")
            block = queries[start:start + step]
            segmental_columns(
                block, medoid_arr, dim_sets,
                memory_budget_bytes=memory_budget_bytes,
                out=dist[start:start + block.shape[0]],
            )
        if deadline is not None:
            deadline.check("predict")
        clean_labels = np.argmin(dist, axis=1).astype(np.int64)
        if handle_outliers:
            outlier_mask = detect_outliers(dist, sphere_arr)
            clean_labels[outlier_mask] = OUTLIER_LABEL
        span.set(n_outliers=int(np.count_nonzero(
            clean_labels == OUTLIER_LABEL)))

    warnings: List[str] = []
    if report is not None and report.changed:
        labels = report.restore_labels(clean_labels, fill=OUTLIER_LABEL)
        warnings.extend(report.messages)
    else:
        labels = clean_labels
    n_outliers = int(np.count_nonzero(labels == OUTLIER_LABEL))
    if tracer.enabled:
        tracer.count("predict.points", n_original)
        tracer.count("predict.outliers", n_outliers)
    return PredictReport(
        labels=labels,
        n_points=n_original,
        n_outliers=n_outliers,
        spheres=sphere_arr,
        sanitization=report,
        distances=dist if return_distances else None,
        warnings=warnings,
    )
