"""Iterative phase: CLARANS-style hill climbing over medoid sets (§2.2).

The search graph's vertices are the k-subsets of the candidate pool
``M``.  From the best vertex found so far, the algorithm repeatedly
replaces that vertex's *bad* medoids with random pool points and keeps
the new vertex iff its objective improves.  Bad medoids are:

* the medoid of the cluster with the fewest points, always; and
* the medoid of any cluster with fewer than ``N/k * min_deviation``
  points — heuristically an outlier medoid, or one of several medoids
  piercing the same natural cluster.

Termination: ``max_bad_tries`` consecutive non-improving vertices, the
``max_iterations`` safety cap (which emits a
:class:`~repro.exceptions.ConvergenceWarning` — the search stopped on
its guard rail, not its criterion), or an expired wall-clock
:class:`~repro.robustness.guards.Deadline` — the latter returns the
best-so-far vertex with ``terminated_by="deadline"`` instead of
raising, so bounded-latency callers always get a usable result.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..distance.base import Metric
from ..exceptions import ConvergenceWarning, ParameterError
from ..obs import get_tracer, monotonic_s
from ..perf.cache import IterativeCache
from ..rng import SeedLike, ensure_rng
from ..robustness.guards import Deadline
from ..validation import check_array
from .assignment import assign_points
from .dimensions import compute_localities, find_dimensions
from .objective import evaluate_clusters

__all__ = [
    "find_bad_medoids",
    "replace_bad_medoids",
    "run_iterative_phase",
    "IterationRecord",
    "IterativePhaseResult",
]


@dataclass
class IterationRecord:
    """One vertex visit during hill climbing (for diagnostics/ablations)."""

    iteration: int
    objective: float
    improved: bool
    medoid_indices: Tuple[int, ...]
    bad_positions: Tuple[int, ...]
    locality_sizes: Tuple[int, ...]


@dataclass
class IterativePhaseResult:
    """Outcome of the hill-climbing phase."""

    medoid_indices: np.ndarray
    dim_sets: List[Tuple[int, ...]]
    labels: np.ndarray
    objective: float
    n_iterations: int
    n_improvements: int
    terminated_by: str
    history: List[IterationRecord] = field(default_factory=list)
    seconds: float = 0.0
    cache_stats: Optional[Dict[str, Dict[str, float]]] = None

    @property
    def objective_history(self) -> List[float]:
        """Objective of every visited vertex, in visit order."""
        return [rec.objective for rec in self.history]


def find_bad_medoids(labels: np.ndarray, k: int, min_deviation: float) -> List[int]:
    """Positions (0..k-1) of the bad medoids for the current clustering."""
    labels = np.asarray(labels)
    n = labels.shape[0]
    # one O(N) bincount pass instead of k full label scans; outlier
    # labels (-1) are filtered first so the counts match the historical
    # per-cluster count_nonzero loop exactly
    valid = labels[labels >= 0] if labels.size and int(labels.min()) < 0 else labels
    sizes = np.bincount(valid.astype(np.intp, copy=False),
                        minlength=k)[:k]
    threshold = (n / k) * min_deviation
    bad = set(np.flatnonzero(sizes < threshold).tolist())
    bad.add(int(np.argmin(sizes)))  # the smallest cluster is always bad
    return sorted(bad)


def replace_bad_medoids(current: np.ndarray, bad_positions: Sequence[int],
                        pool: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """New medoid-index set with bad positions swapped for fresh pool points.

    Replacement points are drawn uniformly from pool points not already
    in the (kept part of the) set, so the result has ``k`` distinct
    indices.  If the pool is exhausted the bad medoids are kept.
    """
    current = np.asarray(current, dtype=np.intp)
    new = current.copy()
    keep = np.delete(current, list(bad_positions))
    available = np.setdiff1d(pool, keep, assume_unique=False)
    # also exclude the bad medoids themselves: a swap must move the vertex
    available = np.setdiff1d(available, current[list(bad_positions)])
    rng.shuffle(available)
    for slot, pos in enumerate(bad_positions):
        if slot >= available.size:
            break  # pool exhausted; keep the old medoid at this position
        new[pos] = available[slot]
    return new


def run_iterative_phase(X: np.ndarray, pool: np.ndarray, k: int, l: float, *,
                        metric: Union[str, Metric] = "euclidean",
                        min_deviation: float = 0.1,
                        max_bad_tries: int = 20,
                        max_iterations: int = 300,
                        min_dims_per_cluster: int = 2,
                        seed: SeedLike = None,
                        keep_history: bool = True,
                        deadline: Optional[Deadline] = None,
                        exclude_dims: Sequence[int] = (),
                        cache: Union[bool, IterativeCache, None] = None) -> IterativePhaseResult:
    """Hill-climb to the best medoid set drawn from ``pool``.

    Parameters mirror :class:`~repro.core.config.ProclusConfig`;
    ``pool`` holds candidate medoid indices into ``X``.  When
    ``deadline`` expires the best vertex found so far is returned with
    ``terminated_by="deadline"`` — the first iteration always runs to
    completion so the result is well-formed.  ``exclude_dims`` is
    forwarded to :func:`~repro.core.dimensions.find_dimensions`.

    ``cache`` enables the incremental per-medoid cache
    (:class:`~repro.perf.cache.IterativeCache`): ``True`` builds one
    with the default memory budget, an instance is used as-is (and can
    be shared with the refinement phase), ``None``/``False`` recomputes
    every vertex from scratch.  Cached and uncached runs produce
    bit-identical results; only the wall clock differs.
    """
    t0 = monotonic_s()
    tracer = get_tracer()
    if cache is True:
        cache = IterativeCache()
    elif cache is False:
        cache = None
    X = check_array(X, name="X")
    pool = np.asarray(pool, dtype=np.intp)
    if pool.size < k:
        raise ParameterError(
            f"medoid pool has {pool.size} points but k={k} are needed"
        )
    rng = ensure_rng(seed)

    current = rng.choice(pool, size=k, replace=False)
    best_obj = np.inf
    best_medoids = current.copy()
    best_dims: List[Tuple[int, ...]] = []
    best_labels = np.zeros(X.shape[0], dtype=np.int64)
    bad_positions: List[int] = list(range(k))
    history: List[IterationRecord] = []
    n_improvements = 0
    tries_without_improvement = 0
    terminated_by = "max_iterations"

    def out_of_time() -> bool:
        # the first iteration must complete so best_dims/labels are valid
        return (deadline is not None and bool(best_dims)
                and deadline.expired())

    iteration = 0
    with tracer.phase("iterative", k=k, pool_size=int(pool.size)) as phase_span:
        while iteration < max_iterations:
            if out_of_time():
                terminated_by = "deadline"
                if tracer.enabled:
                    tracer.event("deadline_expired", iteration=iteration)
                break
            iteration += 1
            localities, deltas = compute_localities(
                X, current, metric=metric,
                min_locality_size=max(2, min_dims_per_cluster),
                cache=cache,
            )
            if out_of_time():
                terminated_by = "deadline"
                iteration -= 1  # this vertex was never evaluated
                if tracer.enabled:
                    tracer.event("deadline_expired", iteration=iteration)
                break
            dims = find_dimensions(
                X, current, l, metric=metric,
                min_per_cluster=min_dims_per_cluster, localities=localities,
                exclude_dims=exclude_dims, cache=cache, deltas=deltas,
            )
            labels = assign_points(X, X[current], dims,
                                   cache=cache, medoid_indices=current)
            objective = evaluate_clusters(X, labels, dims)

            improved = objective < best_obj
            visited_bad = (find_bad_medoids(labels, k, min_deviation)
                           if improved or keep_history else [])
            if improved:
                best_obj = objective
                best_medoids = current.copy()
                best_dims = dims
                best_labels = labels
                bad_positions = visited_bad
                n_improvements += 1
                tries_without_improvement = 0
            else:
                tries_without_improvement += 1
                if cache is not None:
                    # a rejected vertex's swapped-in medoids are unlikely
                    # to be drawn again soon; drop their columns to keep
                    # the cache at the surviving vertex's working set
                    cache.discard_rows(np.setdiff1d(current, best_medoids))
            if tracer.enabled:
                tracer.event("iteration", iteration=iteration,
                             objective=float(objective), improved=improved,
                             n_bad=len(visited_bad))

            if keep_history:
                history.append(IterationRecord(
                    iteration=iteration,
                    objective=float(objective),
                    improved=improved,
                    medoid_indices=tuple(int(i) for i in current),
                    bad_positions=tuple(visited_bad),
                    locality_sizes=tuple(len(loc) for loc in localities),
                ))

            if tries_without_improvement >= max_bad_tries:
                terminated_by = "no_improvement"
                break
            current = replace_bad_medoids(best_medoids, bad_positions,
                                          pool, rng)
            if tracer.enabled:
                swapped = int(np.count_nonzero(current != best_medoids))
                if swapped:
                    tracer.count("iterative.bad_medoid_swaps", swapped)
                    tracer.event("medoid_swap", n_swapped=swapped,
                                 positions=list(bad_positions))
            if np.array_equal(np.sort(current), np.sort(best_medoids)):
                # pool exhausted: no neighbouring vertex remains to try
                terminated_by = "pool_exhausted"
                break
        phase_span.set(iterations=iteration, improvements=n_improvements,
                       terminated_by=terminated_by)

    if terminated_by == "max_iterations":
        warnings.warn(
            f"hill climbing stopped at the max_iterations={max_iterations} "
            f"safety cap after {n_improvements} improvement(s), before "
            f"reaching {max_bad_tries} consecutive non-improving vertices; "
            "the medoid search may not have converged",
            ConvergenceWarning, stacklevel=2,
        )

    return IterativePhaseResult(
        medoid_indices=best_medoids,
        dim_sets=best_dims,
        labels=best_labels,
        objective=float(best_obj),
        n_iterations=iteration,
        n_improvements=n_improvements,
        terminated_by=terminated_by,
        history=history,
        seconds=monotonic_s() - t0,
        cache_stats=cache.stats_dict() if cache is not None else None,
    )
