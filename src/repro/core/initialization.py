"""PROCLUS initialization phase (paper section 2.1).

Two successive reductions produce the candidate medoid pool ``M``:

1. a uniform random sample ``S`` of size ``A*k`` — cheap, and because
   outliers are rare the sample is dominated by cluster points;
2. the Gonzalez greedy technique applied to ``S``, keeping ``B*k``
   points — far-apart representatives, likely piercing every cluster.

The paper motivates the split: greedy alone over-picks outliers (they
are far from everything), while sampling alone gives no separation
guarantee.  Running greedy *on the sample* gets both properties and cuts
initialization cost.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..distance.base import Metric
from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from ..validation import check_array
from .greedy import greedy_select

__all__ = ["initialize_medoid_pool"]


def initialize_medoid_pool(X: np.ndarray, sample_size: int, pool_size: int, *,
                           metric: Union[str, Metric] = "euclidean",
                           seed: SeedLike = None) -> np.ndarray:
    """Return indices (into ``X``) of the candidate medoid pool ``M``.

    Parameters
    ----------
    X:
        Data matrix ``(N, d)``.
    sample_size:
        ``A*k`` — size of the intermediate random sample ``S``.  Clamped
        to ``N`` when the dataset is smaller than the requested sample.
    pool_size:
        ``B*k`` — size of the returned pool; must be ``<= sample_size``.
    metric:
        Distance for the greedy farthest-point step.
    seed:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        ``pool_size`` distinct indices into ``X``.
    """
    X = check_array(X, name="X")
    n = X.shape[0]
    if pool_size > sample_size:
        raise ParameterError(
            f"pool_size ({pool_size}) must be <= sample_size ({sample_size})"
        )
    if pool_size > n:
        raise ParameterError(
            f"pool_size ({pool_size}) exceeds the number of points ({n}); "
            "reduce k or the pool_factor (B)"
        )
    rng = ensure_rng(seed)
    sample_size = min(sample_size, n)
    sample_indices = rng.choice(n, size=sample_size, replace=False)
    local = greedy_select(
        X[sample_indices], pool_size, metric=metric, seed=rng
    )
    return sample_indices[local]
