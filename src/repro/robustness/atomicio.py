"""Atomic file writes: the write-temp-then-``os.replace`` seam.

Both the fault-tolerant supervisor (checkpoint manifests and payloads)
and the model serialization layer (:mod:`repro.core.serialization`)
persist artifacts that another process may load at any moment — a
resumed run, or a serving daemon hot-reloading its model.  A plain
``open(path, "wb")`` can tear: a crash mid-write leaves a truncated
file that *looks* present, and a reader that trusts it serves garbage.

:func:`atomic_write` closes that window.  The payload is written to a
temporary sibling in the same directory (same filesystem, so the final
rename cannot cross a device boundary) and moved into place with
``os.replace``, which POSIX guarantees to be atomic: a concurrent
reader observes either the complete old file or the complete new file,
never a mixture.  On failure the temporary file is removed and the
destination is untouched.

Atomicity alone only covers crashes of the *writer process*; it says
nothing about power loss, where the rename can reach disk before the
data it points at.  So before the replace the temporary file is
``fsync``'d, and afterwards the parent directory is too (where the
platform allows opening directories) — the destination durably holds
either the old payload or the complete new one.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

__all__ = ["atomic_write"]

PathLike = Union[str, Path]


@contextmanager
def atomic_write(path: PathLike, *, suffix: str = ".tmp") -> Iterator[Path]:
    """Yield a temporary sibling path; publish it to ``path`` on success.

    The caller writes the complete payload to the yielded path.  When
    the block exits cleanly the temporary file replaces ``path``
    atomically; when it raises, the temporary file is deleted and the
    exception propagates with the destination unchanged.

    The temporary name embeds the process id so concurrent writers in
    different processes (e.g. two checkpointing runs pointed at the same
    directory by mistake) cannot corrupt each other's staging file; the
    last ``os.replace`` still wins, as with any same-path race.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}{suffix}.{os.getpid()}")
    try:
        yield tmp
        # flush the payload to stable storage *before* publishing the
        # name: without this, a power loss can persist the rename but
        # not the data, leaving the destination durably truncated
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def _fsync_directory(directory: Path) -> None:
    """Persist a rename by syncing its directory entry (best effort).

    Windows cannot open directories at all, and some filesystems reject
    ``fsync`` on a directory fd — neither failure can un-publish the
    already-completed ``os.replace``, so both are swallowed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
