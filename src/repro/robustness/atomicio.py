"""Atomic file writes: the write-temp-then-``os.replace`` seam.

Both the fault-tolerant supervisor (checkpoint manifests and payloads)
and the model serialization layer (:mod:`repro.core.serialization`)
persist artifacts that another process may load at any moment — a
resumed run, or a serving daemon hot-reloading its model.  A plain
``open(path, "wb")`` can tear: a crash mid-write leaves a truncated
file that *looks* present, and a reader that trusts it serves garbage.

:func:`atomic_write` closes that window.  The payload is written to a
temporary sibling in the same directory (same filesystem, so the final
rename cannot cross a device boundary) and moved into place with
``os.replace``, which POSIX guarantees to be atomic: a concurrent
reader observes either the complete old file or the complete new file,
never a mixture.  On failure the temporary file is removed and the
destination is untouched.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

__all__ = ["atomic_write"]

PathLike = Union[str, Path]


@contextmanager
def atomic_write(path: PathLike, *, suffix: str = ".tmp") -> Iterator[Path]:
    """Yield a temporary sibling path; publish it to ``path`` on success.

    The caller writes the complete payload to the yielded path.  When
    the block exits cleanly the temporary file replaces ``path``
    atomically; when it raises, the temporary file is deleted and the
    exception propagates with the destination unchanged.

    The temporary name embeds the process id so concurrent writers in
    different processes (e.g. two checkpointing runs pointed at the same
    directory by mistake) cannot corrupt each other's staging file; the
    last ``os.replace`` still wins, as with any same-path race.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}{suffix}.{os.getpid()}")
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
