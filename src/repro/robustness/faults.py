"""Fault-injection harness for chaos-testing the clustering pipeline.

Two fault families live here:

* **Data faults** — each injector takes a clean matrix and returns a
  *corrupted copy* exhibiting one real-world pathology: NaN/inf cells,
  exact duplicate rows, dead (constant) columns, or wildly mis-scaled
  features.  :class:`FaultPlan` composes injectors so the chaos suite
  can exercise the full cross-product.
* **Process faults** — :class:`ProcessFaultSpec` describes a worker
  pathology in the restart fan-out (a worker that crashes, hangs, or
  returns a corrupt payload) for the fault-tolerant supervisor
  (:mod:`repro.robustness.supervisor`) to survive.  The spec travels to
  the worker as an ordinary pickled argument, so injection works under
  every multiprocessing start method, and it is keyed by
  ``(restart index, attempt)`` so chaos tests are fully deterministic.

The contract both families drive: every ``proclus()`` call either
returns a labelled result or raises a typed
:class:`~repro.exceptions.ReproError` — never an uncaught numpy error,
a hang, or a :class:`concurrent.futures.process.BrokenProcessPool`.

The injectors are deterministic given a seed and never mutate their
input.
"""

from __future__ import annotations

import itertools
import math
import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng

__all__ = [
    "inject_nan_rows",
    "inject_duplicates",
    "inject_constant_dims",
    "inject_extreme_scale",
    "Fault",
    "FaultPlan",
    "standard_faults",
    "standard_fault_matrix",
    "PROCESS_FAULT_KINDS",
    "ProcessFaultSpec",
    "apply_process_fault",
    "SERVE_FAULT_KINDS",
    "ServeFaultSpec",
    "apply_serve_fault",
]


def inject_nan_rows(X: np.ndarray, fraction: float = 0.05, *, value: float = math.nan,
                    seed: SeedLike = None) -> np.ndarray:
    """Poison a fraction of rows with a non-finite cell each.

    ``value`` defaults to NaN; pass ``math.inf`` to simulate overflowed
    sensor readings instead.
    """
    X = np.array(X, dtype=np.float64, copy=True)
    rng = ensure_rng(seed)
    n, d = X.shape
    n_rows = max(1, int(math.ceil(fraction * n)))
    rows = rng.choice(n, size=min(n_rows, n), replace=False)
    cols = rng.integers(0, d, size=rows.size)
    X[rows, cols] = value
    return X


def inject_duplicates(X: np.ndarray, fraction: float = 0.3, *,
                      seed: SeedLike = None) -> np.ndarray:
    """Append exact copies of randomly chosen rows (``fraction`` of N)."""
    X = np.asarray(X, dtype=np.float64)
    rng = ensure_rng(seed)
    n = X.shape[0]
    n_dup = max(1, int(math.ceil(fraction * n)))
    rows = rng.integers(0, n, size=n_dup)
    return np.vstack([X, X[rows]])


def inject_constant_dims(X: np.ndarray, n_dims: int = 1, *, value: float = 0.0,
                         seed: SeedLike = None) -> np.ndarray:
    """Overwrite random columns with a constant (dead sensors)."""
    X = np.array(X, dtype=np.float64, copy=True)
    rng = ensure_rng(seed)
    d = X.shape[1]
    cols = rng.choice(d, size=min(n_dims, d), replace=False)
    X[:, cols] = value
    return X


def inject_extreme_scale(X: np.ndarray, factor: float = 1e9, *,
                         dims: Optional[Sequence[int]] = None,
                         seed: SeedLike = None) -> np.ndarray:
    """Multiply some columns by a huge factor (unit mismatches)."""
    X = np.array(X, dtype=np.float64, copy=True)
    rng = ensure_rng(seed)
    d = X.shape[1]
    if dims is None:
        dims = rng.choice(d, size=max(1, d // 4), replace=False)
    X[:, np.asarray(dims, dtype=np.intp)] *= factor
    return X


@dataclass(frozen=True)
class Fault:
    """A named, seedable corruption of a data matrix."""

    name: str
    apply: Callable[[np.ndarray, np.random.Generator], np.ndarray]

    def __call__(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply the fault to ``X`` using ``rng`` for randomness."""
        return self.apply(X, rng)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered composition of :class:`Fault` instances.

    ``FaultPlan.apply`` threads one RNG through the sequence so a plan
    is reproducible from a single seed.
    """

    faults: Tuple[Fault, ...]

    @property
    def name(self) -> str:
        """Readable plan identity, e.g. ``"nan_rows+duplicates"``."""
        return "+".join(f.name for f in self.faults) or "clean"

    def apply(self, X: np.ndarray, *, seed: SeedLike = None) -> np.ndarray:
        """Run every fault in order on a copy of ``X``."""
        rng = ensure_rng(seed)
        X = np.array(X, dtype=np.float64, copy=True)
        for fault in self.faults:
            X = fault(X, rng)
        return X

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.name})"


def standard_faults() -> List[Fault]:
    """The four canonical single faults used by the chaos suite."""
    return [
        Fault("nan_rows", lambda X, rng: inject_nan_rows(X, 0.05, seed=rng)),
        Fault("inf_rows",
              lambda X, rng: inject_nan_rows(X, 0.03, value=math.inf,
                                             seed=rng)),
        Fault("duplicates",
              lambda X, rng: inject_duplicates(X, 0.3, seed=rng)),
        Fault("constant_dims",
              lambda X, rng: inject_constant_dims(X, 2, seed=rng)),
        Fault("extreme_scale",
              lambda X, rng: inject_extreme_scale(X, 1e9, seed=rng)),
    ]


# ----------------------------------------------------------------------
# Process-level faults (restart fan-out workers)
# ----------------------------------------------------------------------

#: Worker pathologies the supervisor's chaos suite injects.
PROCESS_FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "corrupt")


@dataclass(frozen=True)
class ProcessFaultSpec:
    """A deterministic worker fault in the restart fan-out.

    Targets the restart with index :attr:`index` and fires on its first
    :attr:`times` attempts (attempt numbering starts at 0), so a spec
    with ``times=1`` models a transient fault the first retry survives
    and a large ``times`` models a persistently broken worker that
    exhausts the retry budget.

    Kinds
    -----
    ``"crash"``
        The worker process dies abruptly (``os._exit``), breaking the
        whole pool — the OOM-killer scenario.
    ``"hang"``
        The worker sleeps for :attr:`hang_s` seconds, never producing a
        result — the stuck-on-IO scenario the per-restart wall-clock
        cap exists for.
    ``"corrupt"``
        The worker returns a malformed payload instead of a fitted
        result — the torn-write / bad-deserialization scenario.
    """

    kind: str
    index: int = 0
    times: int = 1
    hang_s: float = 3600.0
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.kind not in PROCESS_FAULT_KINDS:
            raise ParameterError(
                f"process fault kind must be one of {PROCESS_FAULT_KINDS}; "
                f"got {self.kind!r}"
            )

    def fires(self, index: int, attempt: int) -> bool:
        """True when this spec targets ``(index, attempt)``."""
        return index == int(self.index) and attempt < int(self.times)


def apply_process_fault(fault: Optional[ProcessFaultSpec], index: int,
                        attempt: int) -> bool:
    """Worker-side fault application; runs inside the pool process.

    Returns ``True`` when the caller should return a *corrupt payload*
    instead of computing; crashes or hangs the process directly for the
    other kinds; returns ``False`` when no fault fires.
    """
    if fault is None or not fault.fires(index, attempt):
        return False
    if fault.kind == "crash":
        os._exit(fault.exit_code)
    if fault.kind == "hang":
        time.sleep(fault.hang_s)
    return fault.kind == "corrupt"


# ----------------------------------------------------------------------
# Serving-path faults (query-server predict kernel)
# ----------------------------------------------------------------------

#: Kernel pathologies the serving chaos suite injects per request.
SERVE_FAULT_KINDS: Tuple[str, ...] = ("kernel_error", "kernel_hang")


@dataclass(frozen=True)
class ServeFaultSpec:
    """A deterministic predict-kernel fault in the query server.

    Fires on :attr:`times` consecutive predict requests starting at
    request ordinal :attr:`first` (ordinals count kernel dispatches —
    requests past both admission and the circuit breaker — starting
    at 0).  ``kernel_error`` raises an *untyped*
    ``RuntimeError`` from inside the kernel — the unexpected-crash class
    the circuit breaker exists for; ``kernel_hang`` sleeps for
    :attr:`hang_s` seconds, the slow-dependency scenario the per-request
    deadline and the admission queue absorb.  The spec is a frozen
    value object (scalars only) so it can cross any worker handoff
    boundary, in-process or pickled.
    """

    kind: str
    first: int = 0
    times: int = 1
    hang_s: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in SERVE_FAULT_KINDS:
            raise ParameterError(
                f"serve fault kind must be one of {SERVE_FAULT_KINDS}; "
                f"got {self.kind!r}"
            )

    def fires(self, ordinal: int) -> bool:
        """True when this spec targets predict request ``ordinal``."""
        return int(self.first) <= ordinal < int(self.first) + int(self.times)


def apply_serve_fault(fault: Optional[ServeFaultSpec], ordinal: int) -> None:
    """Request-side fault application; runs on the serving thread.

    Raises an untyped ``RuntimeError`` for ``kernel_error`` (the breaker
    must treat it as a kernel failure precisely because it is not a
    typed :class:`~repro.exceptions.ReproError`), sleeps for
    ``kernel_hang``, and does nothing when no fault fires.
    """
    if fault is None or not fault.fires(ordinal):
        return
    if fault.kind == "kernel_hang":
        time.sleep(fault.hang_s)
        return
    raise RuntimeError(
        f"injected predict-kernel fault (request ordinal {ordinal})"
    )


def standard_fault_matrix(max_combination: int = 2) -> List[FaultPlan]:
    """Every combination of standard faults up to ``max_combination``.

    With the default this is 5 singles + 10 pairs = 15 plans; the chaos
    suite runs ``proclus()`` under each.
    """
    faults = standard_faults()
    plans: List[FaultPlan] = []
    for r in range(1, max_combination + 1):
        for combo in itertools.combinations(faults, r):
            plans.append(FaultPlan(tuple(combo)))
    return plans
