"""Fault-tolerant run supervisor for multi-restart PROCLUS fits.

PROCLUS is pitched at large databases, and the ROADMAP's north star is a
long-running production service — which means the restart fan-out of
:mod:`repro.perf.parallel` must survive the failures long-lived jobs
actually see.  This module wraps the fan-out in a supervisor providing
four guarantees on top of the raw pool primitive:

* **Crash recovery** — a worker killed mid-restart (OOM, segfault,
  ``os._exit``) breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`.
  The supervisor catches the breakage, respawns the pool, and retries the
  failed restart indices with bounded exponential backoff.  Retries are
  *deterministic*: each restart replays its own parent-spawned seed
  stream (the parent's generator copy is never advanced — workers only
  ever receive pickled snapshots), so attempt N computes bit-identical
  results to attempt 0.  Once a restart exhausts ``max_retries``, the
  completed restarts are salvaged and the stubborn remainder degrades to
  the in-process serial loop — the same degradation philosophy as the
  PR-1 ladder: a usable, correct result instead of a raised
  ``BrokenProcessPool``.
* **Hung-worker detection** — the supervision loop polls with a bounded
  ``wait`` timeout and tracks per-restart wall clock from submission.
  In-flight restarts exceeding ``restart_timeout_s`` are charged a
  failed attempt, the pool is terminated (running futures cannot be
  cancelled), innocent in-flight work is requeued at its current
  attempt, and a fresh pool resumes.  Deadline expiry is observed every
  tick even when nothing completes.
* **Checkpoint / resume** — with a ``checkpoint_dir``, every completed
  restart is persisted atomically (write-temp-then-``os.replace``):
  the fitted child result as an ``.npz`` via
  :func:`repro.core.serialization.save_result`, plus a JSON manifest
  keying each entry by ``(restart_index, seed-state token)``.  A
  resumed run (``resume=True``) validates the manifest against the
  freshly spawned seed streams and fit parameters, loads the completed
  restarts, and computes only the rest — the reduction over the union
  is bit-identical to an uninterrupted run.  A manifest from a
  *different* run raises :class:`~repro.exceptions.CheckpointError`;
  a corrupt per-restart payload file is discarded and recomputed.
* **Signal-safe shutdown** — SIGINT/SIGTERM install a one-shot handler
  (main thread only) that stops dispatch, cancels pending restarts,
  flushes the checkpoint, and returns the best completed restart with
  ``terminated_by="signal"``.  The first signal restores the previous
  handlers, so a second signal falls through to the default behaviour —
  a hard exit.

Two entry points mirror the two execution modes of
:func:`repro.core.proclus._fit`: :func:`supervise_restarts` (process
pool, ``n_jobs >= 2``) and :func:`run_serial_restarts` (in-process
loop, exact serial semantics).  Both return a :class:`SupervisedOutcome`
whose winner is reduced by ``(iterative_objective, restart_index)`` —
the order-independent equivalent of the serial first-best-wins rule —
and whose ``fault_tolerance`` dict lands on
``ProclusResult.fault_tolerance``.

Heavy imports (:mod:`repro.perf.parallel`, :mod:`repro.core`) are
deferred to call time: this package sits near the bottom of the
dependency stack and must stay importable from :mod:`repro.distance`.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Dict, Iterator, List, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from ..exceptions import CheckpointError, ParameterError
from ..obs import get_tracer
from .atomicio import atomic_write
from .guards import Deadline

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from ..core.result import ProclusResult

from .faults import ProcessFaultSpec, apply_process_fault

__all__ = [
    "SupervisedOutcome",
    "RunCheckpoint",
    "SignalWatch",
    "signal_guard",
    "seed_state_token",
    "run_fingerprint",
    "supervise_restarts",
    "run_serial_restarts",
]

#: Supervision-loop tick: upper bound on how long the parent blocks in
#: ``wait`` before re-checking the deadline, signals, and hang caps.
POLL_INTERVAL_S: float = 0.05

#: Exponential-backoff schedule for pool respawns after a crash:
#: ``min(BACKOFF_CAP_S, BACKOFF_BASE_S * 2**(respawn-1))`` seconds.
BACKOFF_BASE_S: float = 0.05
BACKOFF_CAP_S: float = 2.0

#: Manifest schema version; bumped on incompatible layout changes.
MANIFEST_VERSION: int = 1

#: Test hooks (module-level so the chaos suite can monkeypatch them and
#: drive faults through the public ``proclus()`` surface): a process
#: fault shipped to every worker, and a deterministic stand-in for a
#: SIGINT arriving after N newly computed restarts.
_TEST_FAULT_SPEC: Optional[ProcessFaultSpec] = None
_TEST_INTERRUPT_AFTER: Optional[int] = None


# ----------------------------------------------------------------------
# Signal-safe shutdown
# ----------------------------------------------------------------------

class SignalWatch:
    """Flag set by the one-shot SIGINT/SIGTERM handler."""

    def __init__(self) -> None:
        self.stop_requested = False
        self.signum: Optional[int] = None

    def request_stop(self, signum: int) -> None:
        """Record a stop request (called by the handler or test hooks)."""
        self.stop_requested = True
        self.signum = signum


@contextmanager
def signal_guard(enabled: bool = True) -> Iterator[SignalWatch]:
    """Install a one-shot SIGINT/SIGTERM handler around a block.

    The handler only sets a flag the supervision loops poll — no work is
    interrupted mid-restart — and immediately restores the previous
    handlers so a *second* signal takes the default path (hard exit for
    SIGTERM, ``KeyboardInterrupt`` for SIGINT).  Outside the main
    thread (or with ``enabled=False``) this is a no-op that yields a
    watch nobody sets.
    """
    watch = SignalWatch()
    if not enabled or threading.current_thread() is not threading.main_thread():
        yield watch
        return

    previous: Dict[int, Any] = {}

    def _restore() -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover - teardown race
                pass

    def _handler(signum: int, frame: Any) -> None:
        watch.request_stop(signum)
        _restore()  # one-shot: the next signal is a hard exit

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platform
            pass
    try:
        yield watch
    finally:
        for signum, handler in previous.items():
            try:
                if signal.getsignal(signum) is _handler:
                    signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

def seed_state_token(rng: np.random.Generator) -> str:
    """A short stable digest of a generator's exact bit-level state.

    Two generators with equal tokens produce identical streams, so a
    checkpoint entry keyed by ``(restart_index, token)`` can only be
    resumed into a run that would recompute the identical restart.
    """
    state = rng.bit_generator.state
    blob = json.dumps(state, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _canonical(value: Any) -> Any:
    """JSON-stable view of a fit parameter for fingerprinting."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(value[k]) for k in sorted(value)}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    # objects (e.g. Metric instances): identity by class name only
    return f"<{type(value).__name__}>"


def run_fingerprint(fit_kwargs: Dict[str, Any], n_restarts: int,
                    seed_tokens: Sequence[str]) -> str:
    """Digest identifying a multi-restart run for checkpoint validation."""
    blob = json.dumps(
        {
            "fit": _canonical(fit_kwargs),
            "restarts": int(n_restarts),
            "seeds": list(seed_tokens),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class _CheckpointEntry:
    """One completed restart as recorded in the manifest."""

    file: str
    seconds: float
    notes: List[str]
    seed_token: str


class RunCheckpoint:
    """Atomic on-disk progress record for one multi-restart run.

    Layout under ``directory``::

        manifest.json          # run identity + completed-entry index
        restart_00000.npz      # one saved ProclusResult per restart
        restart_00003.npz

    Every write is temp-file-then-``os.replace`` so a crash mid-write
    can never tear the manifest or a payload: the worst case is a stale
    temp file next to a consistent checkpoint.
    """

    MANIFEST_NAME = "manifest.json"

    def __init__(self, directory: Union[str, Path], n_restarts: int,
                 seed_tokens: Sequence[str], fingerprint: str) -> None:
        self.directory = Path(directory)
        self.n_restarts = int(n_restarts)
        self.seed_tokens = list(seed_tokens)
        self.fingerprint = fingerprint
        self.entries: Dict[int, _CheckpointEntry] = {}
        #: Corrupt per-restart files dropped (and recomputed) on resume.
        self.discarded: int = 0
        #: True when this checkpoint was opened with ``resume=True``.
        self.resumed: bool = False

    # -- construction ---------------------------------------------------
    @classmethod
    def open(cls, directory: Union[str, Path], *,
             children: Sequence[np.random.Generator],
             fit_kwargs: Dict[str, Any], resume: bool) -> "RunCheckpoint":
        """Open (or start) the checkpoint for a concrete run.

        ``resume=False`` starts fresh: the directory is created and a
        new manifest overwrites any stale one.  ``resume=True``
        validates an existing manifest against this run's identity and
        loads its completed entries; any mismatch raises
        :class:`~repro.exceptions.CheckpointError`.
        """
        tokens = [seed_state_token(child) for child in children]
        fingerprint = run_fingerprint(fit_kwargs, len(children), tokens)
        ckpt = cls(directory, len(children), tokens, fingerprint)
        if resume:
            ckpt.resumed = True
            ckpt._load_manifest()
        else:
            ckpt.directory.mkdir(parents=True, exist_ok=True)
            ckpt._write_manifest()
        return ckpt

    # -- persistence ----------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_NAME

    def _write_manifest(self) -> None:
        payload = {
            "format_version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "n_restarts": self.n_restarts,
            "seed_tokens": self.seed_tokens,
            "entries": {
                str(i): {
                    "file": e.file,
                    "seconds": e.seconds,
                    "notes": e.notes,
                    "seed_token": e.seed_token,
                }
                for i, e in sorted(self.entries.items())
            },
        }
        with atomic_write(self._manifest_path()) as tmp:
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not path.is_file():
            raise CheckpointError(
                f"resume requested but no checkpoint manifest at {path}"
            )
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint manifest {path} is unreadable: {exc}"
            )
        version = payload.get("format_version")
        if version != MANIFEST_VERSION:
            raise CheckpointError(
                f"checkpoint manifest {path} has format version {version}; "
                f"this library reads version {MANIFEST_VERSION}"
            )
        if payload.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint at {self.directory} records a different run "
                "(seed stream, restart count, or fit parameters changed); "
                "refusing to resume — results would not be reproducible"
            )
        for key, raw in dict(payload.get("entries", {})).items():
            index = int(key)
            if not (0 <= index < self.n_restarts):
                self.discarded += 1
                continue
            if raw.get("seed_token") != self.seed_tokens[index]:
                self.discarded += 1
                continue
            self.entries[index] = _CheckpointEntry(
                file=str(raw["file"]),
                seconds=float(raw["seconds"]),
                notes=[str(n) for n in raw.get("notes", [])],
                seed_token=str(raw["seed_token"]),
            )

    def record(self, index: int, result: "ProclusResult",
               notes: Sequence[str], seconds: float) -> None:
        """Persist one completed restart, atomically, then the manifest."""
        from ..core.serialization import save_result

        # save_result stages through the same atomic_write helper, so
        # the payload is already torn-write-proof under its final name
        name = f"restart_{index:05d}.npz"
        save_result(result, self.directory / name)
        self.entries[index] = _CheckpointEntry(
            file=name, seconds=float(seconds), notes=list(notes),
            seed_token=self.seed_tokens[index],
        )
        self._write_manifest()

    def completed(self) -> Dict[int, Tuple["ProclusResult", List[str], float]]:
        """Load every resumable restart: index -> (result, notes, seconds).

        A payload file that is missing or fails to load (torn write,
        disk corruption) is *discarded* — the restart is recomputed —
        rather than raised: progress loss is bounded to that one entry.
        """
        from ..core.serialization import load_result
        from ..exceptions import DataError

        loaded: Dict[int, Tuple["ProclusResult", List[str], float]] = {}
        for index in sorted(self.entries):
            entry = self.entries[index]
            path = self.directory / entry.file
            try:
                result = load_result(path)
            except (OSError, ValueError, KeyError, DataError,
                    CheckpointError):
                self.discarded += 1
                del self.entries[index]
                continue
            loaded[index] = (result, list(entry.notes), entry.seconds)
        return loaded


# ----------------------------------------------------------------------
# Outcome
# ----------------------------------------------------------------------

@dataclass
class SupervisedOutcome:
    """What the supervised restart loops hand back to ``_fit``.

    Field semantics match
    :class:`repro.perf.parallel.RestartFanoutOutcome` — ``cancelled``
    counts restarts the expired *deadline* cancelled before they
    started (signal-cancelled ones are visible as
    ``n_restarts - completed`` instead) — plus the supervisor's own
    diagnostics: ``fault_tolerance`` (retry/respawn/timeout/salvage/
    resume counters destined for ``ProclusResult.fault_tolerance``)
    and ``interrupted``/``signum`` describing a signal-triggered
    shutdown.
    """

    best: "ProclusResult"
    best_index: int
    winner_notes: List[str]
    completed: int
    cancelled: int
    restart_seconds: List[Optional[float]]
    n_workers: int
    fault_tolerance: Optional[Dict[str, Any]] = None
    interrupted: bool = False
    signum: Optional[int] = None


def _reduce(results: Dict[int, "ProclusResult"],
            child_notes: Dict[int, List[str]],
            seconds: List[Optional[float]], *,
            cancelled: int, n_workers: int,
            fault_tolerance: Optional[Dict[str, Any]],
            watch: SignalWatch) -> SupervisedOutcome:
    """Order-independent winner reduction shared by both loops."""
    if not results:
        if watch.stop_requested:
            # nothing to salvage: honour the user's interrupt verbatim
            raise KeyboardInterrupt(
                "interrupted before any restart completed"
            )
        raise ParameterError("no restart completed")
    best_index = min(
        results, key=lambda i: (results[i].iterative_objective, i),
    )
    return SupervisedOutcome(
        best=results[best_index],
        best_index=best_index,
        winner_notes=child_notes.get(best_index, []),
        completed=len(results),
        cancelled=cancelled,
        restart_seconds=seconds,
        n_workers=n_workers,
        fault_tolerance=fault_tolerance,
        interrupted=watch.stop_requested,
        signum=watch.signum,
    )


def _fault_tolerance_dict(*, max_retries: int,
                          restart_timeout_s: Optional[float],
                          checkpoint: Optional[RunCheckpoint],
                          resumed: int, retries: int, respawns: int,
                          timeouts: int, corrupt_payloads: int,
                          salvaged: int,
                          watch: SignalWatch) -> Dict[str, Any]:
    """The diagnostics blob surfaced as ``result.fault_tolerance``."""
    return {
        "max_retries": int(max_retries),
        "restart_timeout_s": restart_timeout_s,
        "retries": int(retries),
        "respawns": int(respawns),
        "timeouts": int(timeouts),
        "corrupt_payloads": int(corrupt_payloads),
        "salvaged_serial": int(salvaged),
        "resumed_from": int(resumed),
        "checkpoint_dir": (str(checkpoint.directory)
                           if checkpoint is not None else None),
        "checkpoint_discarded": (checkpoint.discarded
                                 if checkpoint is not None else 0),
        "terminated_by_signal": bool(watch.stop_requested),
    }


# ----------------------------------------------------------------------
# Worker entry point (module level, declared-shareable params: RPR005)
# ----------------------------------------------------------------------

def _supervised_worker(
    descriptor: Dict[str, object], index: int, seed: np.random.Generator,
    remaining_s: Optional[float], fit_kwargs: Dict, attempt: int,
    fault: Optional[ProcessFaultSpec], profile: bool = False,
) -> Tuple[int, object, List[str], float]:
    """One supervised restart inside a pool worker.

    Thin shell over :func:`repro.perf.parallel._restart_worker` that
    first applies any injected process fault — crash and hang never
    return; ``corrupt`` returns a malformed payload the parent-side
    validator must reject and retry.
    """
    if apply_process_fault(fault, index, attempt):
        return (index, None, [], 0.0)  # corrupt payload
    from ..perf.parallel import _restart_worker

    return _restart_worker(descriptor, index, seed, remaining_s, fit_kwargs,
                           profile)


def _valid_payload(payload: object, index: int) -> bool:
    """Parent-side payload validation (defence against corrupt returns)."""
    if not isinstance(payload, tuple) or len(payload) != 4:
        return False
    got_index, result, notes, secs = payload
    if got_index != index or not isinstance(notes, list):
        return False
    if not isinstance(secs, (int, float)):
        return False
    return all(
        hasattr(result, attr)
        for attr in ("iterative_objective", "labels", "terminated_by")
    )


# ----------------------------------------------------------------------
# In-process restart runner (shared by the serial loop and salvage)
# ----------------------------------------------------------------------

def _run_one_serial(X: np.ndarray, child: np.random.Generator,
                    deadline: Optional[Deadline],
                    fit_kwargs: Dict[str, Any],
                    index: Optional[int] = None,
                    ) -> Tuple["ProclusResult", List[str], float]:
    """One restart computed in the parent process (exact serial path)."""
    from ..core.proclus import _fit

    params = dict(fit_kwargs)
    k = params.pop("k")
    l = params.pop("l")
    notes: List[str] = []
    t0 = time.perf_counter()
    with get_tracer().span("restart", index=index):
        result = _fit(X, k, l, restarts=1, seed=child, deadline=deadline,
                      notes=notes, n_jobs=1, **params)
    return result, notes, time.perf_counter() - t0


# ----------------------------------------------------------------------
# Serial supervised loop
# ----------------------------------------------------------------------

def run_serial_restarts(X: np.ndarray,
                        children: Sequence[np.random.Generator], *,
                        deadline: Optional[Deadline],
                        fit_kwargs: Dict[str, Any],
                        checkpoint: Optional[RunCheckpoint] = None,
                        interrupt_after: Optional[int] = None,
                        ) -> SupervisedOutcome:
    """The serial restart loop with checkpointing and signal safety.

    Computes restarts in index order in the parent process — the exact
    serial code path, including the deadline semantics (each restart is
    checked only *after* it completes, so at least one always finishes).
    With a checkpoint, completed restarts persist after each finish and
    resumed entries are skipped; the signal guard is installed only when
    checkpointing is active, preserving the historical
    ``KeyboardInterrupt`` behaviour of plain runs.
    """
    if interrupt_after is None:
        interrupt_after = _TEST_INTERRUPT_AFTER
    restarts = len(children)
    results: Dict[int, "ProclusResult"] = {}
    child_notes: Dict[int, List[str]] = {}
    seconds: List[Optional[float]] = [None] * restarts
    resumed = 0
    if checkpoint is not None:
        for index, (res, notes_i, secs) in checkpoint.completed().items():
            results[index] = res
            child_notes[index] = notes_i
            seconds[index] = secs
        resumed = len(results)

    deadline_hit = False
    computed = 0
    with signal_guard(enabled=checkpoint is not None) as watch:
        for i, child in enumerate(children):
            if i in results:
                continue
            if watch.stop_requested:
                break
            if interrupt_after is not None and computed >= interrupt_after:
                watch.request_stop(signal.SIGINT)
                break
            result, notes_i, secs = _run_one_serial(
                X, child, deadline, fit_kwargs, index=i)
            results[i] = result
            child_notes[i] = notes_i
            seconds[i] = secs
            computed += 1
            if checkpoint is not None:
                checkpoint.record(i, result, notes_i, secs)
            if (deadline is not None and deadline.expired()
                    and len(results) < restarts):
                deadline_hit = True
                break

    cancelled = restarts - len(results) if deadline_hit else 0
    fault_tolerance = None
    if checkpoint is not None or watch.stop_requested:
        fault_tolerance = _fault_tolerance_dict(
            max_retries=0, restart_timeout_s=None, checkpoint=checkpoint,
            resumed=resumed, retries=0, respawns=0, timeouts=0,
            corrupt_payloads=0, salvaged=0, watch=watch,
        )
    return _reduce(results, child_notes, seconds, cancelled=cancelled,
                   n_workers=1, fault_tolerance=fault_tolerance, watch=watch)


# ----------------------------------------------------------------------
# Pooled supervision loop
# ----------------------------------------------------------------------

def _terminate_pool(pool: Any, kill: bool) -> None:
    """Shut a pool down; ``kill=True`` also terminates worker processes.

    Killing is the only way to reclaim a *running* future — executor
    ``cancel`` only reaches queued ones — so the hang and signal paths
    use it.  The clean path (nothing in flight) joins workers normally.
    """
    if not kill:
        pool.shutdown(wait=True, cancel_futures=True)
        return
    procs = list(getattr(pool, "_processes", None) or {}.values())
    if isinstance(getattr(pool, "_processes", None), dict):
        procs = list(pool._processes.values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            if proc.is_alive():
                proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - reap race
            pass
    for proc in procs:
        try:
            proc.join(timeout=5)
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass


def supervise_restarts(X: np.ndarray,
                       children: Sequence[np.random.Generator], *,
                       n_jobs: int,
                       deadline: Optional[Deadline],
                       fit_kwargs: Dict[str, Any],
                       max_retries: int = 2,
                       restart_timeout_s: Optional[float] = None,
                       checkpoint: Optional[RunCheckpoint] = None,
                       fault_spec: Optional[ProcessFaultSpec] = None,
                       interrupt_after: Optional[int] = None,
                       poll_interval_s: float = POLL_INTERVAL_S,
                       backoff_base_s: float = BACKOFF_BASE_S,
                       backoff_cap_s: float = BACKOFF_CAP_S,
                       profile: bool = False,
                       ) -> SupervisedOutcome:
    """Fan restarts out over a process pool under full supervision.

    Submission is windowed (at most ``n_workers`` in flight), which
    keeps the per-restart wall-clock cap meaningful — an in-flight
    restart is actually running — and lets deadline expiry cancel
    queued restarts without waiting for a completion.  See the module
    docstring for the recovery, timeout, checkpoint, and signal
    contracts.

    ``fault_spec``/``interrupt_after`` are chaos-test hooks: the former
    ships a :class:`~repro.robustness.faults.ProcessFaultSpec` to every
    worker, the latter simulates a SIGINT arriving after N newly
    computed restarts complete.

    ``profile=True`` asks each worker to run its restart under a fresh
    tracer (:mod:`repro.obs`) and attach the per-restart profile to the
    result it ships back; the caller surfaces the winner's profile.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
    from concurrent.futures import wait as futures_wait
    from concurrent.futures.process import BrokenProcessPool

    from ..perf.parallel import SharedMatrix, resolve_n_jobs

    if fault_spec is None:
        fault_spec = _TEST_FAULT_SPEC
    if interrupt_after is None:
        interrupt_after = _TEST_INTERRUPT_AFTER

    restarts = len(children)
    workers = resolve_n_jobs(n_jobs, n_tasks=restarts)
    results: Dict[int, "ProclusResult"] = {}
    child_notes: Dict[int, List[str]] = {}
    seconds: List[Optional[float]] = [None] * restarts
    retries = respawns = timeouts = corrupt_payloads = salvaged = 0
    resumed = 0
    deadline_cancelled = 0
    exhausted: List[int] = []
    tracer = get_tracer()

    if checkpoint is not None:
        for index, (res, notes_i, secs) in checkpoint.completed().items():
            results[index] = res
            child_notes[index] = notes_i
            seconds[index] = secs
        resumed = len(results)
        if resumed and tracer.enabled:
            tracer.event("resume_loaded", n_restarts=resumed)

    todo: "deque[Tuple[int, int]]" = deque(
        (i, 0) for i in range(restarts) if i not in results
    )
    inflight: Dict[Any, Tuple[int, int, float]] = {}
    pool: Optional[ProcessPoolExecutor] = None
    plane: Optional[SharedMatrix] = None

    def _record(index: int, result: "ProclusResult", notes_i: List[str],
                secs: float) -> None:
        results[index] = result
        child_notes[index] = notes_i
        seconds[index] = secs
        if checkpoint is not None:
            checkpoint.record(index, result, notes_i, secs)
        if tracer.enabled:
            tracer.event("restart_completed", index=index,
                         seconds=float(secs))

    def _fail(index: int, attempt: int) -> None:
        nonlocal retries
        if attempt < max_retries:
            retries += 1
            todo.append((index, attempt + 1))
            if tracer.enabled:
                tracer.count("supervisor.retries")
                tracer.event("restart_retry", index=index,
                             attempt=attempt + 1)
        elif index not in exhausted:
            exhausted.append(index)

    def _backoff() -> None:
        pause = min(backoff_cap_s, backoff_base_s * (2 ** max(0, respawns - 1)))
        if deadline is not None and not deadline.unlimited:
            pause = min(pause, deadline.remaining())
        if pause > 0:
            time.sleep(pause)

    with signal_guard(enabled=True) as watch:
        try:
            if todo:
                plane = SharedMatrix.publish(X)
                pool = ProcessPoolExecutor(max_workers=workers)
            while todo or inflight:
                if watch.stop_requested:
                    if tracer.enabled:
                        tracer.event("signal_stop",
                                     pending=len(todo) + len(inflight))
                    break
                if (interrupt_after is not None
                        and len(results) - resumed >= interrupt_after):
                    watch.request_stop(signal.SIGINT)
                    break
                if deadline is not None and deadline.expired() and todo:
                    deadline_cancelled += len(todo)
                    todo.clear()
                    if not inflight:
                        break
                broken = False
                while todo and len(inflight) < workers and pool is not None:
                    index, attempt = todo.popleft()
                    remaining = None
                    if deadline is not None and not deadline.unlimited:
                        remaining = deadline.remaining()
                    try:
                        fut = pool.submit(
                            _supervised_worker, plane.descriptor, index,
                            children[index], remaining, fit_kwargs, attempt,
                            fault_spec, profile,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        # pool already broken: nothing was dispatched, so
                        # the attempt is not charged
                        todo.appendleft((index, attempt))
                        broken = True
                        break
                    inflight[fut] = (index, attempt, time.perf_counter())
                if inflight and not broken:
                    done, _ = futures_wait(
                        set(inflight), timeout=poll_interval_s,
                        return_when=FIRST_COMPLETED,
                    )
                    for fut in done:
                        index, attempt, _t0 = inflight.pop(fut)
                        try:
                            payload = fut.result()
                        except BrokenProcessPool:
                            broken = True
                            _fail(index, attempt)
                            continue
                        if not _valid_payload(payload, index):
                            corrupt_payloads += 1
                            if tracer.enabled:
                                tracer.event("corrupt_payload", index=index,
                                             attempt=attempt)
                            _fail(index, attempt)
                            continue
                        _, result, notes_i, secs = payload
                        _record(index, result, notes_i, secs)
                if broken:
                    # the pool death took every in-flight restart with it;
                    # we cannot tell the guilty worker from the innocent,
                    # so each in-flight attempt is charged and requeued
                    for fut, (index, attempt, _t0) in list(inflight.items()):
                        _fail(index, attempt)
                    inflight.clear()
                    _terminate_pool(pool, kill=True)
                    respawns += 1
                    if tracer.enabled:
                        tracer.event("pool_respawn", respawns=respawns)
                    _backoff()
                    pool = ProcessPoolExecutor(max_workers=workers)
                    continue
                if restart_timeout_s is not None and inflight:
                    now = time.perf_counter()
                    hung = [
                        (fut, index, attempt)
                        for fut, (index, attempt, t0) in inflight.items()
                        if now - t0 > restart_timeout_s
                    ]
                    if hung:
                        for fut, index, attempt in hung:
                            timeouts += 1
                            if tracer.enabled:
                                tracer.event("restart_timeout", index=index,
                                             attempt=attempt)
                            _fail(index, attempt)
                            del inflight[fut]
                        # running futures cannot be cancelled: kill the
                        # pool, requeue the innocent bystanders at their
                        # current attempt, and start fresh
                        for fut, (index, attempt, _t0) in inflight.items():
                            todo.appendleft((index, attempt))
                        inflight.clear()
                        _terminate_pool(pool, kill=True)
                        respawns += 1
                        pool = ProcessPoolExecutor(max_workers=workers)
        finally:
            if pool is not None:
                _terminate_pool(
                    pool, kill=bool(inflight) or watch.stop_requested)
            if plane is not None:
                plane.unlink()

    # Degradation ladder: restarts that exhausted the retry budget run
    # in-process — slower, but correct and deterministic.
    if exhausted and not watch.stop_requested:
        for index in sorted(exhausted):
            if watch.stop_requested:
                break
            if deadline is not None and deadline.expired():
                deadline_cancelled += 1
                continue
            if tracer.enabled:
                tracer.event("salvage_serial", index=index)
            result, notes_i, secs = _run_one_serial(
                X, children[index], deadline, fit_kwargs, index=index)
            _record(index, result, notes_i, secs)
            salvaged += 1

    fault_tolerance = _fault_tolerance_dict(
        max_retries=max_retries, restart_timeout_s=restart_timeout_s,
        checkpoint=checkpoint, resumed=resumed, retries=retries,
        respawns=respawns, timeouts=timeouts,
        corrupt_payloads=corrupt_payloads, salvaged=salvaged, watch=watch,
    )
    return _reduce(results, child_notes, seconds,
                   cancelled=deadline_cancelled, n_workers=workers,
                   fault_tolerance=fault_tolerance, watch=watch)
