"""Robustness layer: sanitization, budgets, degradation, fault injection.

The PROCLUS reproduction's graceful-degradation subsystem, in four
parts:

* :mod:`~repro.robustness.sanitize` — configurable input sanitization
  (:func:`sanitize`) producing a :class:`SanitizationReport` that maps
  results back to original row indices;
* :mod:`~repro.robustness.guards` — runtime budget guards: the
  :class:`Deadline` wall-clock budget honoured by the hill climbing, and
  the memory-estimate guard behind row-chunked distance kernels;
* :mod:`~repro.robustness.fallback` — the degradation ladder for
  degenerate inputs (:func:`plan_degradation`,
  :func:`kmedoids_fallback`);
* :mod:`~repro.robustness.faults` — a fault-injection harness
  (:func:`inject_nan_rows` and friends, composed by :class:`FaultPlan`;
  process-level worker faults via :class:`ProcessFaultSpec`) used by
  the chaos test suite;
* :mod:`~repro.robustness.supervisor` — the fault-tolerant execution
  supervisor for multi-restart runs: crash retry with deterministic
  seed replay, hung-worker replacement, atomic checkpoint/resume
  (:class:`RunCheckpoint`), and signal-safe shutdown.

``guards`` sits at the very bottom of the dependency stack (it is
imported by :mod:`repro.distance`), so this package must not import
heavyweight modules at import time — :mod:`.fallback` defers its
``baselines``/``core`` imports to call time.
"""

from .atomicio import atomic_write
from .faults import (
    PROCESS_FAULT_KINDS,
    SERVE_FAULT_KINDS,
    ServeFaultSpec,
    apply_serve_fault,
    Fault,
    FaultPlan,
    ProcessFaultSpec,
    inject_constant_dims,
    inject_duplicates,
    inject_extreme_scale,
    inject_nan_rows,
    standard_fault_matrix,
    standard_faults,
)
from .fallback import (
    DegradationPlan,
    distinct_row_count,
    kmedoids_fallback,
    plan_degradation,
)
from .guards import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    Deadline,
    estimate_cross_distance_temp_bytes,
    resolve_row_chunk,
)
from .sanitize import BAD_VALUE_POLICIES, SanitizationReport, sanitize
from .supervisor import (
    RunCheckpoint,
    SignalWatch,
    SupervisedOutcome,
    run_serial_restarts,
    seed_state_token,
    signal_guard,
    supervise_restarts,
)

__all__ = [
    "atomic_write",
    "SERVE_FAULT_KINDS",
    "ServeFaultSpec",
    "apply_serve_fault",
    "sanitize",
    "SanitizationReport",
    "BAD_VALUE_POLICIES",
    "Deadline",
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "estimate_cross_distance_temp_bytes",
    "resolve_row_chunk",
    "DegradationPlan",
    "plan_degradation",
    "distinct_row_count",
    "kmedoids_fallback",
    "Fault",
    "FaultPlan",
    "inject_nan_rows",
    "inject_duplicates",
    "inject_constant_dims",
    "inject_extreme_scale",
    "standard_faults",
    "standard_fault_matrix",
    "PROCESS_FAULT_KINDS",
    "ProcessFaultSpec",
    "SupervisedOutcome",
    "RunCheckpoint",
    "SignalWatch",
    "signal_guard",
    "seed_state_token",
    "supervise_restarts",
    "run_serial_restarts",
]
