"""Graceful-degradation ladder for degenerate PROCLUS inputs.

PROCLUS assumes well-conditioned input: more distinct points than
medoids, a samplable pool, localities with spread in several dimensions.
When those assumptions fail, the library historically raised (or worse,
produced meaningless output).  This module implements the documented
ladder instead:

1. ``k`` >= number of distinct points — reduce ``k`` with a warning;
2. infeasible ``l`` (``l > d``, non-integral ``k*l``) — clamp/round
   with a warning;
3. pool/sample factors larger than the data — clamp so the
   initialization phase can run at all;
4. constant dimensions — exclude them from the Z-score ranking (soft:
   they are only picked if nothing else satisfies the per-cluster
   floor);
5. anything still infeasible (fewer than 2 usable medoids, pool
   exhaustion) — fall back to the full-dimensional
   :mod:`repro.baselines.kmedoids` solution.

Every rung is recorded on ``ProclusResult.warnings`` and flips
``ProclusResult.degraded``; the caller decides whether degradation is
acceptable (``auto_degrade=True``) or errors should propagate.

Imports of :mod:`repro.baselines` and :mod:`repro.core` are deferred to
call time so that :mod:`repro.robustness` stays importable from the
bottom of the dependency stack (:mod:`repro.distance` imports
:mod:`.guards`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..exceptions import DegenerateDataError
from ..rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..core.result import ProclusResult

__all__ = ["DegradationPlan", "plan_degradation", "distinct_row_count",
           "kmedoids_fallback"]


def distinct_row_count(X: np.ndarray) -> int:
    """Number of distinct rows in ``X``."""
    X = np.asarray(X)
    if X.shape[0] == 0:
        return 0
    return int(np.unique(X, axis=0).shape[0])


@dataclass
class DegradationPlan:
    """Adjusted parameters produced by :func:`plan_degradation`.

    ``use_kmedoids`` signals that PROCLUS cannot run meaningfully even
    after adjustment and the caller should use
    :func:`kmedoids_fallback`.  ``messages`` documents every rung of the
    ladder that fired; ``degraded`` is true iff any did.
    """

    k: int
    l: float
    sample_factor: int
    pool_factor: int
    exclude_dims: Tuple[int, ...] = ()
    use_kmedoids: bool = False
    messages: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any parameter was adjusted or a fallback chosen."""
        return bool(self.messages)


def plan_degradation(X: np.ndarray, k: int, l: float,
                     sample_factor: int, pool_factor: int, *,
                     min_dims_per_cluster: int = 2,
                     constant_dims: Tuple[int, ...] = ()) -> DegradationPlan:
    """Walk the ladder and return feasible parameters for ``X``.

    Never raises for degenerate *data* — the worst outcome is
    ``use_kmedoids=True``.  (Shape problems still raise upstream.)
    """
    n, d = X.shape
    plan = DegradationPlan(k=int(k), l=float(l),
                           sample_factor=int(sample_factor),
                           pool_factor=int(pool_factor))

    # Rung 1: k vs distinct points -------------------------------------
    n_distinct = distinct_row_count(X)
    if plan.k >= n_distinct:
        new_k = max(1, n_distinct - 1)
        plan.messages.append(
            f"k={plan.k} >= {n_distinct} distinct point(s); reduced k to "
            f"{new_k}"
        )
        plan.k = new_k
    if plan.k < 2:
        plan.use_kmedoids = True
        plan.k = max(1, plan.k)
        plan.messages.append(
            "fewer than 2 usable medoids; falling back to full-dimensional "
            "k-medoids"
        )
        return plan

    # Rung 2: l feasibility --------------------------------------------
    floor = max(2, int(min_dims_per_cluster))
    if d < floor:
        plan.use_kmedoids = True
        plan.messages.append(
            f"d={d} is below the minimum of {floor} dimensions per "
            "cluster; falling back to full-dimensional k-medoids"
        )
        return plan
    if plan.l > d:
        plan.messages.append(f"l={plan.l:g} > d={d}; clamped l to {d}")
        plan.l = float(d)
    if plan.l < floor:
        plan.messages.append(
            f"l={plan.l:g} is below the per-cluster floor; raised l to {floor}"
        )
        plan.l = float(floor)
    total = plan.k * plan.l
    if abs(total - round(total)) > 1e-9:
        rounded = max(plan.k * floor, min(plan.k * d, int(round(total))))
        plan.l = rounded / plan.k
        plan.messages.append(
            f"k*l was non-integral; rounded the dimension budget to "
            f"{rounded} (l={plan.l:g})"
        )

    # Rung 3: pool/sample clamps ---------------------------------------
    max_factor = max(1, n // plan.k)
    if plan.sample_factor > max_factor or plan.pool_factor > max_factor:
        plan.messages.append(
            f"sample/pool factors ({plan.sample_factor}/{plan.pool_factor}) "
            f"exceed N/k={max_factor}; clamped"
        )
        plan.sample_factor = min(plan.sample_factor, max_factor)
        plan.pool_factor = min(plan.pool_factor, plan.sample_factor)

    # Rung 4: constant dimensions --------------------------------------
    if constant_dims:
        usable = d - len(constant_dims)
        if usable >= floor:
            plan.exclude_dims = tuple(int(j) for j in constant_dims)
            plan.messages.append(
                f"excluding {len(constant_dims)} constant dimension(s) "
                f"{list(plan.exclude_dims)} from the Z-score ranking"
            )
        else:
            plan.messages.append(
                f"{len(constant_dims)} constant dimension(s) detected but "
                f"only {usable} varying dimension(s) remain; keeping all "
                "dimensions in the ranking"
            )
    return plan


def kmedoids_fallback(X: np.ndarray, k: int, *,
                      l: Optional[float] = None,
                      seed: SeedLike = None,
                      metric: str = "euclidean") -> "ProclusResult":
    """Full-dimensional CLARANS clustering shaped as a ``ProclusResult``.

    The last rung of the ladder: when projected clustering is
    infeasible, a full-dimensional k-medoids solution is still a valid
    (if less informative) clustering.  Every cluster's dimension set is
    the full space, so downstream consumers (assignment, metrics,
    serialization) work unchanged.  ``l`` is accepted for interface
    symmetry and ignored — the full space is used.
    """
    from ..baselines.kmedoids import clarans
    from ..core.objective import evaluate_clusters
    from ..core.result import ProclusResult

    X = np.asarray(X, dtype=np.float64)
    n, d = X.shape
    k = int(max(1, min(k, n)))
    if n == 0:
        raise DegenerateDataError("cannot cluster an empty matrix")
    km = clarans(X, k, metric=metric, num_local=1, seed=seed)
    dim_sets = [tuple(range(d)) for _ in range(k)]
    objective = float(evaluate_clusters(X, km.labels, dim_sets))
    return ProclusResult(
        labels=km.labels,
        medoids=km.medoids,
        medoid_indices=km.medoid_indices,
        dimensions={i: dims for i, dims in enumerate(dim_sets)},
        objective=objective,
        iterative_objective=objective,
        n_iterations=km.n_swaps,
        n_improvements=km.n_swaps,
        phase_seconds={"fallback_kmedoids": km.seconds},
        terminated_by="fallback_kmedoids",
        degraded=True,
    )
