"""Configurable input sanitization with a structured report.

Real-world feature matrices arrive with NaN cells, infinite readings,
exactly-repeated rows, and dead (constant) columns — all of which the
PROCLUS pipeline silently assumes away.  :func:`sanitize` normalises a
raw matrix into the clean form the algorithms expect and returns a
:class:`SanitizationReport` that (a) documents every modification and
(b) maps results computed on the sanitized matrix back to the original
row indexing via :meth:`SanitizationReport.restore_labels`.

Policies for non-finite values (``on_bad_values``):

* ``"raise"``  — reject the matrix with :class:`~repro.exceptions.DataError`
  (the library's historical behaviour);
* ``"drop"``   — remove rows containing any non-finite value;
* ``"impute_median"`` — replace each bad cell with its column's median
  over the finite entries;
* ``"clip"``   — replace ``+inf``/``-inf`` with the column's finite
  max/min and NaN with the column median.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, List, Tuple

import numpy as np

from ..exceptions import (
    DataError,
    DegenerateDataError,
    ParameterError,
    SanitizationWarning,
)
from ..validation import check_array

__all__ = ["sanitize", "SanitizationReport", "BAD_VALUE_POLICIES"]

#: Legal values for ``on_bad_values``.
BAD_VALUE_POLICIES: Tuple[str, ...] = ("raise", "drop", "impute_median", "clip")


@dataclass
class SanitizationReport:
    """What :func:`sanitize` did, plus the original-row bookkeeping.

    Attributes
    ----------
    n_rows, n_cols:
        Shape of the *original* matrix.
    policy:
        The ``on_bad_values`` policy applied.
    bad_rows:
        Original indices of rows that contained non-finite values.
    n_bad_cells:
        Count of non-finite cells in the original matrix.
    dropped_rows:
        Original indices removed (policy ``"drop"`` only).
    n_imputed_cells / n_clipped_cells:
        Cells replaced under ``"impute_median"`` / ``"clip"``.
    constant_dims:
        Column indices with zero spread after value handling.
    n_duplicates_collapsed:
        Rows removed by duplicate collapsing (0 when disabled).
    row_map:
        Length ``n_rows``; for each original row, its index in the
        sanitized matrix (duplicates map to their representative) or
        ``-1`` for dropped rows.
    kept_rows:
        For each sanitized row, its original index (the representative's
        index for collapsed duplicate groups).
    messages:
        Human-readable description of every modification.
    """

    n_rows: int
    n_cols: int
    policy: str
    bad_rows: np.ndarray
    n_bad_cells: int = 0
    dropped_rows: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.intp))
    n_imputed_cells: int = 0
    n_clipped_cells: int = 0
    constant_dims: Tuple[int, ...] = ()
    n_duplicates_collapsed: int = 0
    row_map: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.intp))
    kept_rows: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.intp))
    messages: List[str] = field(default_factory=list)

    @property
    def n_rows_out(self) -> int:
        """Rows in the sanitized matrix."""
        return int(self.kept_rows.size)

    @property
    def changed(self) -> bool:
        """True when the sanitized matrix differs from the input."""
        return (self.dropped_rows.size > 0 or self.n_imputed_cells > 0
                or self.n_clipped_cells > 0 or self.n_duplicates_collapsed > 0)

    def restore_labels(self, labels: np.ndarray, *, fill: int = -1) -> np.ndarray:
        """Map labels over sanitized rows back to the original row order.

        Dropped rows receive ``fill`` (default ``-1``, the library's
        outlier label); collapsed duplicates inherit their
        representative's label.
        """
        labels = np.asarray(labels)
        if labels.shape[0] != self.n_rows_out:
            raise DataError(
                f"labels has {labels.shape[0]} entries but the sanitized "
                f"matrix has {self.n_rows_out} rows"
            )
        out = np.full(self.n_rows, fill, dtype=labels.dtype)
        kept = self.row_map >= 0
        out[kept] = labels[self.row_map[kept]]
        return out

    def restore_indices(self, indices: np.ndarray) -> np.ndarray:
        """Map sanitized-row indices (e.g. medoid indices) to original rows."""
        return self.kept_rows[np.asarray(indices, dtype=np.intp)]

    def to_dict(self) -> dict:
        """JSON-friendly summary of the report."""
        return {
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "n_rows_out": self.n_rows_out,
            "policy": self.policy,
            "n_bad_rows": int(self.bad_rows.size),
            "n_bad_cells": self.n_bad_cells,
            "n_dropped_rows": int(self.dropped_rows.size),
            "n_imputed_cells": self.n_imputed_cells,
            "n_clipped_cells": self.n_clipped_cells,
            "constant_dims": list(self.constant_dims),
            "n_duplicates_collapsed": self.n_duplicates_collapsed,
            "messages": list(self.messages),
        }


def _handle_bad_values(X: np.ndarray, policy: str, report: SanitizationReport,
                       keep: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Apply the bad-value policy; returns (values, kept original indices)."""
    finite = np.isfinite(X)
    if finite.all():
        return X, keep
    bad_rows = np.flatnonzero(~finite.all(axis=1))
    report.bad_rows = bad_rows
    report.n_bad_cells = int((~finite).sum())

    if policy == "raise":
        raise DataError(
            f"X contains {report.n_bad_cells} NaN/infinite cell(s) in "
            f"{bad_rows.size} row(s); pass on_bad_values='drop', "
            "'impute_median', or 'clip' to sanitize"
        )
    if policy == "drop":
        report.dropped_rows = keep[bad_rows]
        report.messages.append(
            f"dropped {bad_rows.size} row(s) containing non-finite values"
        )
        mask = finite.all(axis=1)
        if not mask.any():
            raise DegenerateDataError(
                "every row contains non-finite values; nothing left after "
                "on_bad_values='drop'"
            )
        return X[mask], keep[mask]

    # impute_median / clip need per-column finite statistics
    X = X.copy()
    no_finite = ~finite.any(axis=0)
    if no_finite.any():
        raise DegenerateDataError(
            f"column(s) {np.flatnonzero(no_finite).tolist()} contain no "
            f"finite value; cannot {policy.replace('_', ' ')}"
        )
    for j in np.flatnonzero(~finite.all(axis=0)):
        col = X[:, j]
        good = finite[:, j]
        median = float(np.median(col[good]))
        if policy == "impute_median":
            n_fixed = int((~good).sum())
            col[~good] = median
            report.n_imputed_cells += n_fixed
        else:  # clip
            pos_inf = np.isposinf(col)
            neg_inf = np.isneginf(col)
            nan = np.isnan(col)
            col[pos_inf] = float(col[good].max())
            col[neg_inf] = float(col[good].min())
            col[nan] = median
            report.n_clipped_cells += int(pos_inf.sum() + neg_inf.sum()
                                          + nan.sum())
    if policy == "impute_median":
        report.messages.append(
            f"imputed {report.n_imputed_cells} non-finite cell(s) with "
            "column medians"
        )
    else:
        report.messages.append(
            f"clipped {report.n_clipped_cells} non-finite cell(s) to the "
            "finite column range"
        )
    return X, keep


def _collapse_duplicates(X: np.ndarray, keep: np.ndarray,
                         report: SanitizationReport) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse exact duplicate rows, keeping first occurrences in order.

    Returns (values, kept original indices, per-row position map).
    """
    _, first_idx, inverse = np.unique(X, axis=0, return_index=True,
                                      return_inverse=True)
    inverse = inverse.ravel()
    if first_idx.size == X.shape[0]:
        return X, keep, np.arange(X.shape[0], dtype=np.intp)
    # representatives ordered by first occurrence, not lexicographically
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)
    positions = rank[inverse].astype(np.intp)
    reps = np.sort(first_idx)
    n_collapsed = X.shape[0] - first_idx.size
    report.n_duplicates_collapsed = n_collapsed
    report.messages.append(
        f"collapsed {n_collapsed} duplicate row(s) into "
        f"{first_idx.size} distinct row(s)"
    )
    return X[reps], keep[reps], positions


def sanitize(X: Any, *, on_bad_values: str = "raise",
             collapse_duplicates: bool = False,
             detect_constant_dims: bool = True,
             warn: bool = True,
             dtype: Any = None
             ) -> Tuple[np.ndarray, SanitizationReport]:
    """Normalise a raw matrix into clean algorithm input.

    Parameters
    ----------
    X:
        Array-like ``(n_points, n_dims)``; may contain NaN/inf.
    on_bad_values:
        One of :data:`BAD_VALUE_POLICIES` (see module docstring).
    collapse_duplicates:
        Replace groups of identical rows with a single representative;
        :meth:`SanitizationReport.restore_labels` propagates the
        representative's label back to every group member.
    detect_constant_dims:
        Record zero-spread columns on the report (never modifies data).
    warn:
        Emit a :class:`~repro.exceptions.SanitizationWarning` per
        modification in addition to recording it on the report.
    dtype:
        Target dtype of the sanitized matrix (``"float64"`` or
        ``"float32"``).  ``None`` (default) preserves a working float
        dtype and coerces everything else to float64, matching
        :func:`~repro.validation.check_array`.

    Returns
    -------
    (numpy.ndarray, SanitizationReport)
        The sanitized C-contiguous float matrix (in the working dtype)
        and the report.

    Raises
    ------
    ParameterError
        Unknown ``on_bad_values`` policy.
    DataError
        Non-finite values under ``on_bad_values="raise"``, or malformed
        shape.
    DegenerateDataError
        Sanitization left no usable data (all rows dropped, or a column
        with no finite value to impute/clip from).
    """
    if on_bad_values not in BAD_VALUE_POLICIES:
        raise ParameterError(
            f"on_bad_values must be one of {BAD_VALUE_POLICIES}; "
            f"got {on_bad_values!r}"
        )
    X = check_array(X, name="X", allow_nonfinite=True,
                    dtype=None if dtype is None else np.dtype(dtype))
    n_rows, n_cols = X.shape
    report = SanitizationReport(
        n_rows=n_rows, n_cols=n_cols, policy=on_bad_values,
        bad_rows=np.empty(0, dtype=np.intp),
    )
    keep = np.arange(n_rows, dtype=np.intp)

    X, keep = _handle_bad_values(X, on_bad_values, report, keep)

    if collapse_duplicates:
        X, keep, positions = _collapse_duplicates(X, keep, report)
    else:
        positions = np.arange(X.shape[0], dtype=np.intp)

    # original row -> sanitized row (or -1 when dropped)
    row_map = np.full(n_rows, -1, dtype=np.intp)
    surviving = np.setdiff1d(np.arange(n_rows, dtype=np.intp),
                             report.dropped_rows, assume_unique=True)
    row_map[surviving] = positions
    report.row_map = row_map
    report.kept_rows = keep

    if detect_constant_dims and X.shape[0] > 0:
        spread = X.max(axis=0) - X.min(axis=0)
        constant = np.flatnonzero(spread == 0)
        if constant.size:
            report.constant_dims = tuple(int(j) for j in constant)
            report.messages.append(
                f"detected {constant.size} constant dimension(s): "
                f"{list(report.constant_dims)}"
            )

    if warn:
        for msg in report.messages:
            warnings.warn(msg, SanitizationWarning, stacklevel=2)
    return np.ascontiguousarray(X), report
