"""Runtime budget guards: wall-clock deadlines and memory estimates.

Two production concerns the paper never had to face:

* **Latency** — the hill climbing (§2.2) has no bounded runtime; under a
  service-level deadline the right behaviour is to return the best
  vertex found so far, not to keep climbing.  :class:`Deadline` carries
  a wall-clock budget through the pipeline; ``run_iterative_phase``
  polls it each iteration and terminates with
  ``terminated_by="deadline"`` instead of raising.
* **Memory** — distance kernels materialise ``O(n * d)`` temporaries per
  anchor.  :func:`resolve_row_chunk` estimates that footprint and tells
  :mod:`repro.distance.matrix` to fall back to row-chunked computation
  past a threshold, keeping peak memory bounded without changing any
  numeric result.

This module deliberately imports nothing beyond numpy and the exception
hierarchy so every other layer (including :mod:`repro.distance`) can
depend on it without cycles.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

from ..exceptions import BudgetExceededError
from ..validation import check_time_budget

__all__ = [
    "Deadline",
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "estimate_cross_distance_temp_bytes",
    "resolve_row_chunk",
]

#: Soft cap on per-call temporary allocations in the distance kernels.
#: Past this, :func:`repro.distance.matrix.cross_distances` switches to
#: row-chunked computation (identical values, bounded peak memory).
DEFAULT_MEMORY_BUDGET_BYTES: int = 64 * 2**20


@dataclass(frozen=True)
class Deadline:
    """A wall-clock budget started at a fixed instant.

    ``budget_s=None`` means unlimited: :meth:`expired` is always false
    and :meth:`remaining` is ``inf``, so callers can thread a single
    object through unconditionally.
    """

    budget_s: Optional[float]
    started_at: float

    @classmethod
    def start(cls, budget_s: Optional[float] = None) -> "Deadline":
        """Validate ``budget_s`` and start the clock now."""
        return cls(check_time_budget(budget_s), time.perf_counter())

    @property
    def unlimited(self) -> bool:
        """True when no budget was set."""
        return self.budget_s is None

    def elapsed(self) -> float:
        """Seconds since the deadline was started."""
        return time.perf_counter() - self.started_at

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited; never negative)."""
        if self.unlimited:
            return math.inf
        return max(0.0, self.budget_s - self.elapsed())

    def expired(self) -> bool:
        """True once the budget has been used up."""
        return not self.unlimited and self.elapsed() >= self.budget_s

    def check(self, what: str = "operation") -> None:
        """Hard enforcement: raise :class:`BudgetExceededError` if expired."""
        if self.expired():
            raise BudgetExceededError(
                f"{what} exceeded its time budget of {self.budget_s:g}s "
                f"(elapsed {self.elapsed():.3f}s)"
            )


def estimate_cross_distance_temp_bytes(n_rows: int, n_cols: int,
                                       itemsize: int = 8) -> int:
    """Peak temporary bytes for one anchor pass over an ``(n, d)`` block.

    The Lp kernels allocate a diff array and its elementwise transform —
    two temporaries of the block's shape in the working dtype
    (``itemsize`` bytes per element; 8 for the float64 default, 4 when
    the kernel runs in float32).
    """
    return int(n_rows) * max(1, int(n_cols)) * max(1, int(itemsize)) * 2


def resolve_row_chunk(n_rows: int, n_cols: int,
                      memory_budget_bytes: Optional[int] = None, *,
                      itemsize: int = 8) -> Optional[int]:
    """Rows per chunk to keep distance temporaries under budget.

    Returns ``None`` when the whole block fits (the caller should use its
    unchunked fast path), otherwise the largest row count whose
    temporaries stay within ``memory_budget_bytes`` (at least 1).
    ``itemsize`` is the working dtype's element size — a float32 kernel
    (4-byte items) fits twice the rows of a float64 one in the same
    budget.
    """
    budget = (DEFAULT_MEMORY_BUDGET_BYTES if memory_budget_bytes is None
              else int(memory_budget_bytes))
    if estimate_cross_distance_temp_bytes(n_rows, n_cols, itemsize) <= budget:
        return None
    per_row = estimate_cross_distance_temp_bytes(1, n_cols, itemsize)
    return max(1, budget // per_row)
