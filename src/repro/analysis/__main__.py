"""``python -m repro.analysis`` — the lint gate as a module entry point.

Identical to ``proclus lint``; exists so the gate runs in environments
where the console script is not on ``PATH`` (CI images, editable
checkouts driven via ``PYTHONPATH``).
"""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
