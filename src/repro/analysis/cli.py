"""Argument handling for the lint gate (shared by both entry points).

``proclus lint`` mounts :func:`add_lint_arguments` onto its subparser
and calls :func:`run_lint`; ``python -m repro.analysis`` builds a tiny
standalone parser around the same two functions.  Exit codes follow the
CI contract: ``0`` clean, ``1`` findings, ``2`` usage/parse errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..exceptions import ReproError
from .engine import format_json, format_text, lint_paths

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``lint`` options onto ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", dest="output_format", default="text",
        choices=["text", "json"],
        help="findings as human-readable lines or a JSON document")
    parser.add_argument(
        "--select", nargs="+", default=None, metavar="RPRxxx",
        help="restrict reporting to these rule ids, space- or "
             "comma-separated (default: all); unknown ids exit 2")


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint gate for parsed arguments; returns exit code."""
    report = lint_paths(args.paths, select=args.select)
    if args.output_format == "json":
        print(format_json(report))
    else:
        print(format_text(report))
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism & contract lint for the PROCLUS "
                    "reproduction (rules RPR001-RPR009)",
    )
    add_lint_arguments(parser)
    try:
        return run_lint(parser.parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
