"""Declared determinism contracts the lint rules check code against.

These tables are the *specification* side of the static analysis: the
rules in :mod:`repro.analysis.rules` verify that the implementation
still matches what is declared here.  Changing cached-kernel inputs or
worker signatures therefore forces a matching edit in this file, which
is exactly the point — the contract change becomes visible in review
instead of silently skewing results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "CacheKeyContract",
    "CACHE_KEY_CONTRACTS",
    "SHAREABLE_TYPE_NAMES",
    "DETERMINISM_SCOPED_DIRS",
    "PUBLIC_API_FILES",
    "ALLOWED_NP_RANDOM_ATTRS",
    "WALL_CLOCK_CALLS",
    "DURATION_CLOCK_CALLS",
    "MUTATING_CALLS",
    "ARRAY_MUTATING_METHODS",
    "DECLARED_OUT_PARAMS",
    "PURITY_GLOBAL_ALLOWLIST",
    "SHARED_PUBLISH_METHODS",
]


@dataclass(frozen=True)
class CacheKeyContract:
    """What fully determines one cached product.

    ``store`` is the attribute holding the LRU store inside the cache
    class; ``key_names`` are the identifiers (parameters or locals
    derived from them) that must all flow into every ``get``/``put``
    key built for that store inside the contracted method.  RPR003
    flags a method whose keys omit any of them — an under-keyed cache
    returns stale values when the omitted quantity changes, which
    breaks bit-identity with the uncached path.
    """

    store: str
    key_names: Tuple[str, ...]


#: class name -> method name -> contract.  Keyed per method because the
#: same determining quantity appears under different local names (the
#: scalar ``delta`` in the locality path, the vector ``deltas`` in the
#: batched statistics path).
CACHE_KEY_CONTRACTS: Dict[str, Dict[str, CacheKeyContract]] = {
    "IterativeCache": {
        # d(X, X[row]) depends on the medoid row and the metric.
        "distance_columns": CacheKeyContract(
            store="_distance", key_names=("row", "metric")),
        # A segmental column depends on the medoid row and its dim set.
        "segmental_matrix": CacheKeyContract(
            store="_segmental", key_names=("row", "dims")),
        # Locality membership depends on the medoid row, its radius,
        # the fallback floor, and the metric.
        "locality_members": CacheKeyContract(
            store="_locality",
            key_names=("row", "delta", "min_size", "metric")),
        "store_locality_members": CacheKeyContract(
            store="_locality",
            key_names=("row", "delta", "min_size", "metric")),
        # X_{i,.} rows are determined by the same quantities as the
        # locality that produced them.
        "dimension_stats": CacheKeyContract(
            store="_stats",
            key_names=("row", "deltas", "min_size", "metric")),
    },
}

#: Annotation roots RPR005 accepts on process-pool worker parameters.
#: Everything here pickles by value (no open handles, no closures) and
#: round-trips losslessly through ``multiprocessing``'s spawn path.
SHAREABLE_TYPE_NAMES: FrozenSet[str] = frozenset({
    # builtins
    "int", "float", "str", "bool", "bytes", "complex", "None", "object",
    "dict", "list", "tuple", "set", "frozenset",
    # typing aliases of the same
    "Dict", "List", "Tuple", "Set", "FrozenSet", "Optional", "Union",
    "Sequence", "Mapping", "Iterable", "Any",
    # numpy values (arrays and Generators pickle by state); "random" is
    # the module path component in ``np.random.Generator`` annotations
    "np", "numpy", "random", "ndarray", "Generator", "SeedLike",
    # frozen value dataclasses shipped to supervised fan-out workers /
    # serve chaos harnesses (repro.robustness.faults: plain scalars only)
    "ProcessFaultSpec", "ServeFaultSpec",
})

#: Directories whose files RPR002 guards: the numeric core, where a
#: wall-clock read or unordered-set iteration feeding a result value
#: breaks serial/parallel and cached/uncached bit-identity — plus the
#: serving layer, whose labels must be bit-identical to the fit path
#: (all serve timing goes through ``repro.obs.clock`` / ``Deadline``).
DETERMINISM_SCOPED_DIRS: Tuple[str, ...] = ("core", "perf", "distance",
                                            "serve")

#: File basenames RPR004 treats as public API surface in addition to
#: any file under a ``core`` directory.
PUBLIC_API_FILES: Tuple[str, ...] = ("cli.py", "__init__.py")

#: ``numpy.random`` attributes that are *not* legacy global-state RNG:
#: constructing seeded generator machinery is the sanctioned pattern.
ALLOWED_NP_RANDOM_ATTRS: FrozenSet[str] = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
})

#: Calls RPR002 flags inside the determinism-scoped directories: values
#: read from these can reach results or branches and make a run
#: irreproducible.
WALL_CLOCK_CALLS: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "datetime.datetime.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})

# --- interprocedural purity & escape contracts (RPR007 / RPR008) -----

#: Qualified call names known to mutate specific *positional* arguments
#: (0-indexed).  The dataflow pass treats every other unresolvable call
#: as pure in its arguments — a documented precision choice that keeps
#: findings actionable — so the in-place numpy surface must be named
#: here explicitly.
MUTATING_CALLS: Dict[str, Tuple[int, ...]] = {
    "numpy.copyto": (0,),
    "numpy.put": (0,),
    "numpy.put_along_axis": (0,),
    "numpy.place": (0,),
    "numpy.putmask": (0,),
    "numpy.fill_diagonal": (0,),
    "numpy.random.shuffle": (0,),
    # ufunc.at (numpy.add.at, numpy.maximum.at, ...) is recognised
    # generically by the effects pass; listed entries take precedence.
}

#: Method names that mutate their receiver in place when the receiver's
#: type is unknown to the symbol table (ndarray and the stdlib
#: containers).  ``x.sort()`` on a parameter makes the function impure
#: in that argument.
ARRAY_MUTATING_METHODS: FrozenSet[str] = frozenset({
    # ndarray
    "sort", "fill", "partition", "put", "itemset", "resize", "setfield",
    # list / dict / set — mutating a container argument is equally impure
    "append", "extend", "insert", "remove", "clear", "update",
    "setdefault", "popitem", "add", "discard", "move_to_end",
})

#: Sanctioned explicit-output parameters: writing through these does
#: not convict the function (the write is its documented contract), but
#: an argument a *caller* passes into one is still recorded as mutated
#: at the call site.  Keys are ``name`` / ``Class.method`` suffixes.
DECLARED_OUT_PARAMS: Dict[str, Tuple[str, ...]] = {
    # the vectorised segmental kernel writes the caller's buffer by
    # design; cached call sites never pass ``out`` (test-enforced via
    # RPR007: a cached call site passing ``out`` would convict)
    "segmental_columns": ("out",),
}

#: Mutable module globals cached kernels may read (RPR007).  Entries
#: are bare names (any module) or dotted ``module.name`` suffixes.
#: ``ALL_CAPS`` module constants are exempt by convention and need no
#: entry.  Every entry is a reviewed statement that the global cannot
#: skew a cached value:
PURITY_GLOBAL_ALLOWLIST: FrozenSet[str] = frozenset({
    # the observability seam: kernels read the installed tracer to
    # emit counters.  Tracing is proven side-effect-free on results by
    # the bit-identity suite (traced == untraced), and the default is
    # the module-level NullTracer.
    "repro.obs.tracer._current_tracer",
})

#: Classes whose named method publishes a buffer into shared memory
#: (RPR008): the method must write-protect the shared view before
#: returning, and call sites must never mutate the published source
#: array afterwards.
SHARED_PUBLISH_METHODS: Dict[str, str] = {
    "SharedMatrix": "publish",
}

#: Duration clocks RPR002 also flags in the scoped directories — not
#: because durations break bit-identity (they never feed result values),
#: but to funnel every timing read through the single sanctioned seam
#: ``repro.obs.clock.monotonic_s``, where the observability layer owns
#: it.  Code outside the scoped dirs (robustness/, experiments/, the
#: tracer itself) may use these freely.
DURATION_CLOCK_CALLS: FrozenSet[str] = frozenset({
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
})
