"""Static analysis: machine-checked determinism & contract lint.

The reproduction's headline guarantees — seeded runs are bit-identical
across cache on/off and serial/parallel execution — rest on invariants
spread over ~10 modules that tests can only spot-check.  This package
turns them into lint rules enforced on every commit:

========  =============================================================
RPR001    no global-state RNG; all randomness threads a seeded
          ``numpy.random.Generator``
RPR002    no wall-clock/entropy primitives or unordered-set iteration
          inside ``core/``, ``perf/``, ``distance/``
RPR003    every ``IterativeCache`` key covers all quantities that
          determine the cached value (checked against
          :mod:`repro.analysis.contracts`)
RPR004    public API surface has complete type annotations and raises
          only :mod:`repro.exceptions` types
RPR005    ``multiprocessing`` targets are module-level functions taking
          only declared-shareable argument types
RPR006    no float64 re-coercions of arrays inside ``core/``, ``perf/``,
          ``distance/`` — the working dtype chosen at the API boundary
          is preserved (seams: :mod:`repro.dtypes`)
RPR007    values cached by ``IterativeCache`` come only from
          (transitively) pure producers: no argument mutation, no
          mutable module-global reads outside the declared allowlist
          (interprocedural: :mod:`repro.analysis.dataflow`)
RPR008    ``SharedMatrix``-published buffers are write-protected at
          publish time and never mutated afterwards, through any call
          chain
RPR009    suppression hygiene — ``# repr: noqa`` directives that no
          longer suppress anything are themselves findings
========  =============================================================

Entry points: ``proclus lint`` (CLI), ``python -m repro.analysis``, or
:func:`lint_paths` programmatically.  Suppress a finding with
``# repr: noqa RPRxxx`` on the offending line (see
``docs/static_analysis.md``).
"""

from .contracts import CACHE_KEY_CONTRACTS, SHAREABLE_TYPE_NAMES
from .engine import (
    Finding,
    LintReport,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from .rules import ALL_RULES, get_rules, rule_ids

__all__ = [
    "Finding",
    "LintReport",
    "lint_paths",
    "lint_file",
    "lint_source",
    "format_text",
    "format_json",
    "ALL_RULES",
    "get_rules",
    "rule_ids",
    "CACHE_KEY_CONTRACTS",
    "SHAREABLE_TYPE_NAMES",
]
