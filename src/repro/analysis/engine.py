"""AST lint engine enforcing the library's determinism contracts.

The PROCLUS reproduction promises bit-identical results across cache
on/off, serial/parallel, and repeated seeded runs.  Those guarantees
rest on source-level invariants (every random draw threads a seeded
``Generator``, no wall-clock value feeds a result, every cache key
covers the quantities that determine its value) that no runtime test
can exhaustively cover — a single ``np.random.rand`` call in a rarely
taken branch silently breaks reproducibility.  This engine makes the
invariants machine-checked: it parses each file once, hands the tree to
every registered rule (:mod:`repro.analysis.rules`), and collects
structured :class:`Finding`\\ s.

Suppression mirrors flake8's ``noqa`` with a project-specific marker so
the two never collide::

    rng = np.random.default_rng()  # repr: noqa RPR001 -- sanctioned entry

``# repr: noqa`` without rule ids silences every rule on that line.
Directories named in :data:`DEFAULT_EXCLUDE_DIRS` (notably the lint
test fixtures, which contain violations *on purpose*) are skipped when
walking a directory tree; paths given explicitly are always linted.

Since the interprocedural pass (RPR007/RPR008) landed, a lint run is
whole-program: every file of the invocation is parsed first, a shared
:class:`~repro.analysis.dataflow.Project` (symbol table → call graph →
effect summaries → purity fixpoint) is built over all of them, and
project-aware rules resolve calls across module boundaries.  ``select``
now restricts what is *reported*, not what runs: RPR009 (stale
suppressions) is only sound against the raw findings of the full
registry, so selecting it runs everything underneath.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..exceptions import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rules import Rule

__all__ = [
    "Finding",
    "FileContext",
    "LintReport",
    "NoqaDirective",
    "DEFAULT_EXCLUDE_DIRS",
    "lint_paths",
    "lint_file",
    "lint_source",
    "format_text",
    "format_json",
]

#: Directory names skipped while walking a tree.  ``lint_fixtures`` holds
#: the test corpus of *intentional* violations; linting it would make the
#: repo self-check meaningless.
DEFAULT_EXCLUDE_DIRS = frozenset({
    ".git", "__pycache__", ".mypy_cache", ".pytest_cache",
    "build", "dist", ".eggs", "lint_fixtures",
})

#: Matches a suppression directive: the marker ``repr: noqa`` inside a
#: comment, optionally followed by rule ids (comma or space separated;
#: anything after ``--`` is a human note).  Spelled without the leading
#: hash here so this very comment is not parsed as a live directive.
_NOQA_RE = re.compile(
    r"#\s*repr:\s*noqa(?P<ids>[\sA-Z0-9,]*)", re.IGNORECASE
)
_RULE_ID_RE = re.compile(r"RPR\d{3}", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (the schema the CLI's ``--format json`` emits)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def location(self) -> str:
        """``path:line:col`` for terminal output (clickable in most IDEs)."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass(frozen=True)
class NoqaDirective:
    """One parsed ``# repr: noqa [RPRxxx, ...]`` comment."""

    #: suppressed rule ids; the single member ``"*"`` suppresses all
    ids: FrozenSet[str]
    #: 1-indexed column of the comment marker
    col: int


@dataclass
class FileContext:
    """Everything a rule needs to check one parsed file."""

    path: Path
    source: str
    tree: ast.Module
    #: lowercase directory names on the file's path (``core``, ``tests``...),
    #: used by scope-restricted rules (RPR002 only guards the numeric core).
    dir_parts: Tuple[str, ...] = ()
    #: line -> parsed suppression directive on that line.
    noqa: Dict[int, NoqaDirective] = field(default_factory=dict)

    @property
    def display_path(self) -> str:
        """Path string as reported in findings."""
        return str(self.path)

    def in_dirs(self, *names: str) -> bool:
        """True when any path component matches one of ``names``."""
        return any(n in self.dir_parts for n in names)

    @property
    def basename(self) -> str:
        return self.path.name

    def suppressed(self, line: int, rule: str) -> bool:
        directive = self.noqa.get(line)
        if directive is None:
            return False
        return "*" in directive.ids or rule.upper() in directive.ids


@dataclass
class LintReport:
    """Findings plus the file census, for structured output."""

    findings: List[Finding]
    files_checked: int

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _parse_noqa(source: str) -> Dict[int, NoqaDirective]:
    """Map line numbers to parsed suppression directives.

    Tokenises so the directive is only honoured inside real comments —
    a string literal containing ``# repr: noqa`` does not suppress
    anything.  Falls back to a line scan if tokenisation fails (the AST
    parse will report the syntax problem anyway).  Columns are
    1-indexed, pointing at the comment marker, so RPR009 findings jump
    editors to the directive itself.
    """
    out: Dict[int, NoqaDirective] = {}

    def record(lineno: int, col: int, text: str) -> None:
        m = _NOQA_RE.search(text)
        if not m:
            return
        ids = frozenset(
            i.upper() for i in _RULE_ID_RE.findall(m.group("ids") or ""))
        out[lineno] = NoqaDirective(ids=ids or frozenset({"*"}), col=col)

    try:
        for tok in tokenize.generate_tokens(StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                record(tok.start[0], tok.start[1] + 1, tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                idx = line.index("#")
                record(lineno, idx + 1, line[idx:])
    return out


def build_context(path: Path, source: str) -> FileContext:
    """Parse ``source`` into the context rules consume.

    Raises :class:`~repro.exceptions.ParameterError` on syntax errors —
    an unparsable file cannot be certified and must fail the gate.
    """
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ParameterError(
            f"cannot lint {path}: invalid Python syntax "
            f"(line {exc.lineno}): {exc.msg}"
        ) from exc
    dir_parts = tuple(p.lower() for p in path.parts[:-1])
    return FileContext(
        path=path, source=source, tree=tree,
        dir_parts=dir_parts, noqa=_parse_noqa(source),
    )


def iter_python_files(paths: Sequence[Path],
                      exclude_dirs: Iterable[str] = DEFAULT_EXCLUDE_DIRS) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` in deterministic order.

    Directories are walked recursively with ``exclude_dirs`` pruned;
    explicitly named files are yielded even when an exclude pattern
    would have pruned them (so the test suite can lint its violation
    fixtures directly).
    """
    excluded = {e.lower() for e in exclude_dirs}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            # prune on directories *below* the given root only: a root
            # the caller names explicitly is always walked
            n_root = len(path.parts)
            for sub in sorted(path.rglob("*.py")):
                rel_dirs = {p.lower() for p in sub.parts[n_root:-1]}
                if rel_dirs & excluded:
                    continue
                yield sub
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise ParameterError(f"no such file or directory: {path}")


def _lint_contexts(contexts: Sequence[FileContext],
                   select: Optional[Sequence[str]]) -> List[Finding]:
    """Run the rule set over pre-parsed contexts, one shared project.

    ``select`` restricts what is *reported*.  RPR009 (stale noqa) is
    defined against the raw findings of the entire registry, so any
    selection including it — and the default no-selection run — runs
    every rule underneath and filters at reporting time.
    """
    from .dataflow import Project
    from .rules import get_rules, normalize_select
    from .rules.rpr009_stale_noqa import StaleNoqaRule

    selected = (None if select is None
                else frozenset(normalize_select(select)))
    run_all = selected is None or StaleNoqaRule.rule_id in selected
    rules: List["Rule"] = (
        get_rules() if run_all else get_rules(sorted(selected or ())))
    stale_rule = next(
        (r for r in rules if isinstance(r, StaleNoqaRule)), None)
    if selected is not None and StaleNoqaRule.rule_id not in selected:
        stale_rule = None

    project = Project(contexts)
    findings: List[Finding] = []
    for ctx in contexts:
        raw: List[Finding] = []
        for rule in rules:
            if rule.engine_managed:
                continue
            produced = (rule.check_project(ctx, project)
                        if rule.requires_project else rule.check(ctx))
            raw.extend(produced)
        active = [f for f in raw if not ctx.suppressed(f.line, f.rule)]
        if stale_rule is not None:
            # RPR009 findings bypass suppression: a stale directive
            # cannot excuse its own staleness
            active.extend(stale_rule.stale_findings(ctx, raw))
        if selected is not None:
            active = [f for f in active if f.rule in selected]
        findings.extend(active)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(source: str, path: str = "<string>", *,
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint an in-memory source string (test/tooling entry point).

    The dataflow project spans just this one source, so cross-module
    references stay unresolved (and are treated as external).
    """
    ctx = build_context(Path(path), source)
    return _lint_contexts([ctx], select)


def lint_file(path: Path, *, select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one file from disk (single-file dataflow project)."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, str(path), select=select)


def lint_paths(paths: Sequence[object], *,
               select: Optional[Sequence[str]] = None,
               exclude_dirs: Iterable[str] = DEFAULT_EXCLUDE_DIRS) -> LintReport:
    """Lint every Python file reachable from ``paths``.

    The primary programmatic entry point; the CLI is a thin shell over
    it.  All files are parsed first and share one dataflow project, so
    the interprocedural rules see the whole program.  ``select``
    restricts the reported rule ids (comma- or space-separated);
    unknown ids raise :class:`~repro.exceptions.ParameterError`.
    """
    from .rules import get_rules

    get_rules(select)  # validate rule ids before touching any file
    files = list(iter_python_files([Path(str(p)) for p in paths], exclude_dirs))
    contexts = [
        build_context(path, path.read_text(encoding="utf-8"))
        for path in files
    ]
    findings = _lint_contexts(contexts, select)
    return LintReport(findings=findings, files_checked=len(files))


def format_text(report: LintReport) -> str:
    """Human-readable one-line-per-finding output."""
    lines = [
        f"{f.location()}: {f.rule} [{f.severity}] {f.message}"
        + (f"  ({f.hint})" if f.hint else "")
        for f in report.findings
    ]
    n = len(report.findings)
    noun = "finding" if n == 1 else "findings"
    lines.append(
        f"{n} {noun} in {report.files_checked} file(s)"
        + ("" if n else " -- determinism contracts hold")
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Stable machine-readable output (schema version 1)."""
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "counts": report.counts,
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
