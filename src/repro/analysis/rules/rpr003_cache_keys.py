"""RPR003 — cache-key completeness.

:class:`repro.perf.cache.IterativeCache` is only bit-identical to the
uncached path if every store key covers *all* quantities that determine
the cached value: a key that omits, say, the metric returns a Euclidean
column to a Manhattan caller.  The determining quantities are declared
per method in :data:`repro.analysis.contracts.CACHE_KEY_CONTRACTS`;
this rule verifies the implementation against that table:

* within each contracted method, the union of identifiers flowing into
  the ``get``/``put`` key expressions of the contracted store (local
  assignments resolved transitively) must include every declared name;
* a contracted store accessed from a method *not* in the table is
  flagged — a new cached product must declare its contract first;
* a contracted method that never touches its store is flagged, so the
  table cannot silently rot.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from ..contracts import CACHE_KEY_CONTRACTS
from ..engine import FileContext, Finding
from .base import Rule, names_in

__all__ = ["CacheKeyRule"]


def _local_bindings(func: ast.FunctionDef) -> Dict[str, Set[str]]:
    """Map each locally bound name to the names its value derives from."""
    out: Dict[str, Set[str]] = {}

    def bind(target: ast.expr, source_names: Set[str]) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                out.setdefault(node.id, set()).update(source_names)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target, names_in(node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            bind(node.target, names_in(node.value))
        elif isinstance(node, ast.AugAssign):
            bind(node.target, names_in(node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target, names_in(node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                bind(comp.target, names_in(comp.iter))
    return out


def _expand(names: Set[str], bindings: Dict[str, Set[str]]) -> Set[str]:
    """Transitive closure of ``names`` through local assignments."""
    seen: Set[str] = set()
    frontier = list(names)
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(bindings.get(name, ()))
    return seen


def _store_accesses(func: ast.FunctionDef, store: str) -> List[ast.Call]:
    """Calls of the form ``self.<store>.get(...)`` / ``.put(...)``."""
    calls = []
    for node in ast.walk(func):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "put")):
            continue
        owner = node.func.value
        if (isinstance(owner, ast.Attribute) and owner.attr == store
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "self"):
            calls.append(node)
    return calls


class CacheKeyRule(Rule):
    rule_id = "RPR003"
    severity = "error"
    summary = "cache keys must cover every determining quantity"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name in CACHE_KEY_CONTRACTS:
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        contracts = CACHE_KEY_CONTRACTS[cls.name]
        contracted_stores = {c.store for c in contracts.values()}
        methods = {
            n.name: n for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        for name, contract in contracts.items():
            method = methods.get(name)
            if method is None:
                yield self.finding(
                    ctx, cls,
                    f"{cls.name}.{name} is declared in the cache-key "
                    "contract table but does not exist",
                    hint="update repro/analysis/contracts.py alongside "
                         "the cache API",
                )
                continue
            accesses = _store_accesses(method, contract.store)
            if not accesses:
                yield self.finding(
                    ctx, method,
                    f"{cls.name}.{name} never accesses its contracted "
                    f"store self.{contract.store}",
                    hint="update repro/analysis/contracts.py alongside "
                         "the cache API",
                )
                continue
            bindings = _local_bindings(method)
            key_names: Set[str] = set()
            for call in accesses:
                if call.args:
                    key_names |= names_in(call.args[0])
            key_names = _expand(key_names, bindings)
            missing = [k for k in contract.key_names if k not in key_names]
            if missing:
                yield self.finding(
                    ctx, method,
                    f"{cls.name}.{name} keys self.{contract.store} "
                    f"without determining quantit"
                    f"{'y' if len(missing) == 1 else 'ies'} "
                    f"{', '.join(missing)}",
                    hint="an under-keyed cache serves stale values when "
                         "the omitted quantity changes; add it to the key",
                )

        # stores used outside any contracted method: undeclared product
        for name, method in methods.items():
            if name in contracts:
                continue
            for store in sorted(contracted_stores):
                for call in _store_accesses(method, store):
                    yield self.finding(
                        ctx, call,
                        f"{cls.name}.{name} accesses cache store "
                        f"self.{store} but declares no key contract",
                        hint="declare the method and its determining "
                             "quantities in repro/analysis/contracts.py",
                    )
