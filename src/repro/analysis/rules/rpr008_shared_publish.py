"""RPR008 — published shared-memory buffers are frozen for good.

The zero-copy data plane (:class:`repro.perf.parallel.SharedMatrix`)
rests on a one-way contract: the parent publishes the sanitized matrix
once, workers attach read-only views, and nothing on the parent side
writes through the published pages (or the source array the parent
keeps reasoning about) afterwards.  A violation is the nastiest kind of
shared-memory bug — it only corrupts results when a worker happens to
read after the write, so it passes every serial test.

Two checks, both driven by
:data:`~repro.analysis.contracts.SHARED_PUBLISH_METHODS`:

* **publish freezes**: the class's ``publish`` method must write-protect
  the shared view it fills (``view.flags.writeable = False`` or
  ``view.setflags(write=False)``) before returning;
* **no publish-then-mutate**: at every call site of ``publish``, the
  published source array (and every view alias of it) must not be
  mutated after the publish call — neither directly (``X[...] = v``,
  ``X += v``, ``np.copyto(X, ...)``) nor by passing it into a call whose
  **transitive** effect summary mutates that parameter, resolved
  through the project call graph.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..contracts import SHARED_PUBLISH_METHODS
from ..dataflow.project import Project
from ..dataflow.symbols import FuncNode
from ..engine import FileContext, Finding
from .base import Rule

__all__ = ["SharedPublishRule"]


def _has_write_protect(method: FuncNode) -> bool:
    """True when the method write-protects some array before returning."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            attrs: List[str] = []
            cur: ast.AST = target
            while isinstance(cur, ast.Attribute):
                attrs.append(cur.attr)
                cur = cur.value
            if (attrs[:2] == ["writeable", "flags"]
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is False):
                return True
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "setflags"):
            for kw in node.keywords:
                if (kw.arg == "write"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False):
                    return True
    return False


def _publish_target_class(call: ast.Call) -> Optional[str]:
    """The publishing class name when ``call`` is ``<Cls>.publish(...)``."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.value is not None):
        return None
    for cls_name, method_name in SHARED_PUBLISH_METHODS.items():
        if func.attr != method_name:
            continue
        base = func.value
        # SharedMatrix.publish(X) / parallel.SharedMatrix.publish(X) /
        # cls.publish(X) inside the class itself
        if isinstance(base, ast.Name) and base.id in (cls_name, "cls"):
            return cls_name
        if isinstance(base, ast.Attribute) and base.attr == cls_name:
            return cls_name
    return None


class SharedPublishRule(Rule):
    rule_id = "RPR008"
    severity = "error"
    summary = "published shared buffers must be write-protected and never mutated"
    requires_project = True

    def check_project(self, ctx: FileContext,
                      project: Project) -> Iterator[Finding]:
        # (a) the publishing class itself must freeze the shared view
        for node in ctx.tree.body:
            if (isinstance(node, ast.ClassDef)
                    and node.name in SHARED_PUBLISH_METHODS):
                method_name = SHARED_PUBLISH_METHODS[node.name]
                for item in node.body:
                    if (isinstance(item, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                            and item.name == method_name
                            and not _has_write_protect(item)):
                        yield self.finding(
                            ctx, item,
                            f"{node.name}.{method_name} fills a shared "
                            "segment but never write-protects the view",
                            hint="set view.flags.writeable = False (or "
                                 "view.setflags(write=False)) before "
                                 "returning the published handle",
                        )

        # (b) no call site may mutate the published source afterwards
        module = project.module_for(ctx)
        for qual in sorted(project.facts):
            facts = project.facts[qual]
            if facts.info.module != module.name:
                continue
            yield from self._check_function(ctx, project, qual)

    # ------------------------------------------------------------------
    def _check_function(self, ctx: FileContext, project: Project,
                        qual: str) -> Iterator[Finding]:
        facts = project.facts[qual]
        publishes: List[Tuple[Tuple[int, int], str, Set[str]]] = []
        for site in facts.calls:
            cls_name = _publish_target_class(site.node)
            if cls_name is None or not site.node.args:
                continue
            source = site.node.args[0]
            names = {n.id for n in ast.walk(source)
                     if isinstance(n, ast.Name)}
            if names:
                position = (site.node.lineno, site.node.col_offset)
                publishes.append((position, cls_name, names))
        if not publishes:
            return

        for position, cls_name, seeds in publishes:
            protected = facts.aliases_of(seeds)
            # direct mutations after the publish call
            for event in facts.mutations:
                if event.kind != "write":
                    continue
                node_pos = (getattr(event.node, "lineno", 0),
                            getattr(event.node, "col_offset", 0))
                if node_pos <= position:
                    continue
                hit = sorted(set(event.names) & protected)
                if hit:
                    via = f" (via {event.via})" if event.via else ""
                    yield self.finding(
                        ctx, event.node,
                        f"{hit[0]!r} was published through "
                        f"{cls_name}.publish and is mutated "
                        f"afterwards{via}",
                        hint="workers hold live views; copy before "
                             "mutating, or mutate before publishing",
                    )
            # calls that hand an alias to a (transitively) mutating callee
            for call_site in facts.calls:
                call_pos = (call_site.node.lineno,
                            call_site.node.col_offset)
                if call_pos <= position or call_site.callee is None:
                    continue
                summary = project.summary_for(call_site.callee)
                info = project.function(call_site.callee)
                if summary is None or info is None:
                    continue
                writable = summary.mutated | summary.out_writes
                for caller_name, callee_param in call_site.bindings:
                    if (caller_name in protected
                            and callee_param in writable):
                        yield self.finding(
                            ctx, call_site.node,
                            f"{caller_name!r} was published through "
                            f"{cls_name}.publish and is later passed "
                            f"to {info.display}, which mutates its "
                            f"{callee_param!r} parameter (transitively)",
                            hint="pass a copy, or make the callee pure "
                                 "in that argument",
                        )
