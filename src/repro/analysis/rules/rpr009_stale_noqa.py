"""RPR009 — suppression hygiene: stale ``# repr: noqa`` is a finding.

Every suppression is a reviewed exception; once the code it excused is
fixed or deleted, the directive is a dangling liability — it silently
re-arms if a *new* violation ever lands on that line, and it inflates
the audited baseline.  This rule flags every ``# repr: noqa [RPRxxx]``
comment that no longer suppresses any finding, so the suppression
baseline can only shrink.

Mechanics differ from every other rule: staleness is defined against
the **raw** (pre-suppression) findings of the *entire* registry, so
the engine drives this rule itself (``engine_managed``) after running
all other rules — including when ``--select`` narrows what gets
*reported*.  RPR009 findings are exempt from suppression: a stale
directive cannot excuse its own staleness (a bare ``# repr: noqa``
would otherwise always self-suppress).
"""

from __future__ import annotations

from typing import Iterator, List

from ..engine import FileContext, Finding
from .base import Rule

__all__ = ["StaleNoqaRule"]


class StaleNoqaRule(Rule):
    rule_id = "RPR009"
    severity = "error"
    summary = "noqa directives that suppress nothing must be removed"
    engine_managed = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Engine-managed: the engine calls :meth:`stale_findings`."""
        return iter(())

    def stale_findings(self, ctx: FileContext,
                       raw: List[Finding]) -> Iterator[Finding]:
        """Findings for directives no raw finding made use of.

        ``raw`` is every pre-suppression finding of every *other* rule
        for this file.
        """
        rules_by_line: dict = {}
        for f in raw:
            rules_by_line.setdefault(f.line, set()).add(f.rule)
        for line in sorted(ctx.noqa):
            directive = ctx.noqa[line]
            present = rules_by_line.get(line, set())
            if "*" in directive.ids:
                used = bool(present)
                label = "# repr: noqa"
            else:
                used = bool(directive.ids & present)
                label = "# repr: noqa " + ", ".join(sorted(directive.ids))
            if used:
                continue
            yield Finding(
                rule=self.rule_id,
                severity=self.severity,
                path=ctx.display_path,
                line=line,
                col=directive.col,
                message=f"stale suppression: {label!r} no longer "
                        "suppresses any finding",
                hint="delete the directive; it would silently re-arm "
                     "on the next violation landing on this line",
            )
