"""RPR006 — no dtype-destroying float64 coercions in the numeric core.

Scoped to ``core/``, ``perf/`` and ``distance/``: the packages that
make up the precision-aware compute path.  The working dtype (float32
or float64) is chosen **once** at the public API boundary and every
kernel downstream computes natively in it — an
``np.asarray(X, dtype=np.float64)`` buried inside a kernel silently
re-widens a float32 array, doubling the bytes moved and breaking the
"float32 in, float32 out" contract without any visible failure.

Flagged patterns (when the target dtype resolves to float64):

* ``np.asarray(x, dtype=np.float64)`` / ``np.asarray(x, np.float64)``
* ``np.array(...)`` and ``np.ascontiguousarray(...)`` likewise
* ``x.astype(np.float64)`` / ``x.astype("float64")``

The sanctioned seams live in :mod:`repro.dtypes` (outside the scoped
directories): :func:`~repro.dtypes.as_working` preserves a working
dtype, and :func:`~repro.dtypes.to_float64` performs the explicit
ranking/accumulation up-cast where the contract *requires* float64.
Reduction accumulators (``.mean(dtype=np.float64)``) and fresh-buffer
allocations (``np.empty(..., dtype=np.float64)``) do not destroy an
input's dtype and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..contracts import DETERMINISM_SCOPED_DIRS
from ..engine import FileContext, Finding
from .base import Rule, collect_imports, resolve_qualified

__all__ = ["DtypeCoercionRule"]

# numpy converters whose dtype argument rewrites an existing array
_CONVERTERS = (
    "numpy.asarray",
    "numpy.array",
    "numpy.ascontiguousarray",
    "numpy.asfortranarray",
)

_FLOAT64_NAMES = ("numpy.float64", "numpy.double", "numpy.dtypes.Float64DType")
_FLOAT64_STRINGS = ("float64", "f8", "<f8", "d", "double")


def _is_float64(node: ast.AST, imports: dict) -> bool:
    """Does this expression spell the float64 dtype?"""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _FLOAT64_STRINGS
    qname = resolve_qualified(node, imports)
    if qname in _FLOAT64_NAMES:
        return True
    # np.dtype(np.float64) / np.dtype("float64")
    if (isinstance(node, ast.Call)
            and resolve_qualified(node.func, imports) == "numpy.dtype"
            and node.args):
        return _is_float64(node.args[0], imports)
    return False


def _dtype_argument(node: ast.Call, positional_slot: Optional[int]) -> Optional[ast.AST]:
    """The expression passed as the call's dtype, if any."""
    for kw in node.keywords:
        if kw.arg == "dtype":
            return kw.value
    if positional_slot is not None and len(node.args) > positional_slot:
        return node.args[positional_slot]
    return None


class DtypeCoercionRule(Rule):
    rule_id = "RPR006"
    severity = "error"
    summary = "no float64 re-coercions of arrays in core/perf/distance"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(*DETERMINISM_SCOPED_DIRS):
            return
        imports = collect_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qname = resolve_qualified(node.func, imports)
            if qname in _CONVERTERS:
                dtype_arg = _dtype_argument(node, positional_slot=1)
                if dtype_arg is not None and _is_float64(dtype_arg, imports):
                    yield self.finding(
                        ctx, node,
                        f"{qname.split('.', 1)[1]}(..., dtype=float64) "
                        "re-widens the working dtype inside the "
                        "precision-scoped core",
                        hint="preserve the input dtype with "
                             "repro.dtypes.as_working, or make the "
                             "ranking up-cast explicit with "
                             "repro.dtypes.to_float64",
                    )
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr == "astype"):
                dtype_arg = _dtype_argument(node, positional_slot=0)
                if dtype_arg is not None and _is_float64(dtype_arg, imports):
                    yield self.finding(
                        ctx, node,
                        ".astype(float64) re-widens the working dtype "
                        "inside the precision-scoped core",
                        hint="preserve the input dtype, or use "
                             "repro.dtypes.to_float64 for a sanctioned "
                             "ranking/accumulation up-cast",
                    )
