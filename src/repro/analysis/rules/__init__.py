"""Rule registry for the determinism lint engine.

Each rule is a self-contained checker over one parsed file — or, for
``requires_project`` rules, over one file *with* the whole-program
dataflow view (:mod:`repro.analysis.dataflow`).  The engine
instantiates them through :func:`get_rules`.  Adding a rule means
adding a module here and listing its class in :data:`ALL_RULES`.

``--select`` accepts rule ids space- or comma-separated
(``--select RPR001,RPR003``); unknown or empty selections raise
:class:`~repro.exceptions.ParameterError` so a typo fails loudly
instead of silently checking nothing.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Type

from ...exceptions import ParameterError
from .base import Rule
from .rpr001_rng import GlobalRngRule
from .rpr002_nondeterminism import NondeterminismRule
from .rpr003_cache_keys import CacheKeyRule
from .rpr004_api_contract import ApiContractRule
from .rpr005_picklable import PicklableTargetRule
from .rpr006_dtype import DtypeCoercionRule
from .rpr007_cache_purity import CachePurityRule
from .rpr008_shared_publish import SharedPublishRule
from .rpr009_stale_noqa import StaleNoqaRule

__all__ = [
    "Rule",
    "ALL_RULES",
    "get_rules",
    "rule_ids",
    "normalize_select",
]

ALL_RULES: List[Type[Rule]] = [
    GlobalRngRule,
    NondeterminismRule,
    CacheKeyRule,
    ApiContractRule,
    PicklableTargetRule,
    DtypeCoercionRule,
    CachePurityRule,
    SharedPublishRule,
    StaleNoqaRule,
]


def rule_ids() -> List[str]:
    """The registered rule ids, in order."""
    return [cls.rule_id for cls in ALL_RULES]


def normalize_select(select: Sequence[str]) -> List[str]:
    """Validated, upper-cased rule ids from a raw ``--select`` value.

    Splits comma- and whitespace-joined ids (``RPR001,RPR003``), then
    rejects unknown or empty selections with
    :class:`~repro.exceptions.ParameterError` (CLI exit 2).
    """
    wanted: List[str] = []
    for chunk in select:
        wanted.extend(
            part.upper() for part in re.split(r"[\s,]+", str(chunk)) if part
        )
    if not wanted:
        raise ParameterError(
            "--select was given but names no rule ids; known rules: "
            + ", ".join(rule_ids())
        )
    known = set(rule_ids())
    unknown = [s for s in wanted if s not in known]
    if unknown:
        raise ParameterError(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"known rules: {', '.join(sorted(known))}"
        )
    return wanted


def get_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules, optionally restricted to ids."""
    if select is None:
        return [cls() for cls in ALL_RULES]
    wanted = normalize_select(select)
    return [cls() for cls in ALL_RULES if cls.rule_id in wanted]
