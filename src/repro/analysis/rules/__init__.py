"""Rule registry for the determinism lint engine.

Each rule is a self-contained checker over one parsed file; the engine
instantiates them through :func:`get_rules`.  Adding a rule means
adding a module here and listing its class in :data:`ALL_RULES`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type

from ...exceptions import ParameterError
from .base import Rule
from .rpr001_rng import GlobalRngRule
from .rpr002_nondeterminism import NondeterminismRule
from .rpr003_cache_keys import CacheKeyRule
from .rpr004_api_contract import ApiContractRule
from .rpr005_picklable import PicklableTargetRule
from .rpr006_dtype import DtypeCoercionRule

__all__ = [
    "Rule",
    "ALL_RULES",
    "get_rules",
    "rule_ids",
]

ALL_RULES: List[Type[Rule]] = [
    GlobalRngRule,
    NondeterminismRule,
    CacheKeyRule,
    ApiContractRule,
    PicklableTargetRule,
    DtypeCoercionRule,
]


def rule_ids() -> List[str]:
    """The registered rule ids, in order."""
    return [cls.rule_id for cls in ALL_RULES]


def get_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules, optionally restricted to ids.

    Unknown ids raise :class:`~repro.exceptions.ParameterError` so a
    typo in ``--select RPR0001`` fails loudly instead of silently
    checking nothing.
    """
    if select is None:
        return [cls() for cls in ALL_RULES]
    wanted = [s.upper() for s in select]
    known = set(rule_ids())
    unknown = [s for s in wanted if s not in known]
    if unknown:
        raise ParameterError(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"known rules: {', '.join(sorted(known))}"
        )
    return [cls() for cls in ALL_RULES if cls.rule_id in wanted]
