"""Shared machinery for the RPR rule checkers.

Every rule gets a parsed :class:`~repro.analysis.engine.FileContext`
and yields :class:`~repro.analysis.engine.Finding`\\ s.  The helpers
here do the part all rules need: resolving what a dotted expression
actually refers to, through whatever import aliases the file uses
(``import numpy as np``, ``from numpy import random as npr``, ...).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Set

from ..engine import FileContext, Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dataflow import Project

__all__ = [
    "Rule",
    "ImportMap",
    "collect_imports",
    "dotted_name",
    "resolve_qualified",
    "names_in",
]

ImportMap = Dict[str, str]


class Rule:
    """Base class: subclasses set ``rule_id``/``severity`` and ``check``.

    Per-file rules implement :meth:`check`.  Rules that need the
    whole-program view set ``requires_project = True`` and implement
    :meth:`check_project` instead — the engine hands them the
    :class:`~repro.analysis.dataflow.Project` built for the lint run.
    Rules the engine itself drives (RPR009 needs the raw findings of
    every other rule) set ``engine_managed = True``; their ``check``
    yields nothing.
    """

    rule_id: str = "RPR000"
    severity: str = "error"
    summary: str = ""
    requires_project: bool = False
    engine_managed: bool = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, ctx: FileContext,
                      project: "Project") -> Iterator[Finding]:
        """Project-aware entry point (``requires_project`` rules only)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                hint: str = "") -> Finding:
        """A finding anchored at ``node``'s source position."""
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=hint,
        )


def collect_imports(tree: ast.Module) -> ImportMap:
    """Map local names to the fully qualified thing they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy import random`` -> ``{"random": "numpy.random"}``;
    ``from random import choice as pick`` -> ``{"pick": "random.choice"}``.
    Relative imports keep their dots (``from ..exceptions import X`` ->
    ``{"X": "..exceptions.X"}``) so rules can recognise in-package
    references without knowing the absolute package path.
    """
    out: ImportMap = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds `a.b` to c
                target = alias.name if alias.asname else alias.name.split(".")[0]
                out[local] = target
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = f"{module}.{alias.name}" if module else alias.name
    return out


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_qualified(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """The fully qualified dotted name ``node`` refers to, if resolvable.

    ``np.random.rand`` with ``{"np": "numpy"}`` -> ``numpy.random.rand``.
    Returns ``None`` for expressions that are not plain dotted chains
    (subscripts, call results, ...).
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    base = imports.get(head, head)
    return f"{base}.{rest}" if rest else base


def names_in(node: ast.AST) -> Set[str]:
    """All identifier names loaded anywhere inside ``node``."""
    return {
        n.id for n in ast.walk(node)
        if isinstance(n, ast.Name)
    } | {
        n.attr for n in ast.walk(node)
        if isinstance(n, ast.Attribute)
    }
