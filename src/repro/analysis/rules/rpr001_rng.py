"""RPR001 — no global-state randomness.

Every stochastic entry point of the library threads an explicit
``numpy.random.Generator`` (normalised by :func:`repro.rng.ensure_rng`,
split by :func:`repro.rng.spawn`).  A call into the *legacy global*
numpy RNG (``np.random.rand``, ``np.random.seed``, ...) or the stdlib
``random`` module draws from interpreter-wide mutable state: the result
then depends on every other draw the process has made, so two runs with
the same seed argument diverge — exactly the compounding per-pass
perturbation failure mode.  Unseeded generator construction
(``default_rng()`` with no argument) is flagged too: fresh OS entropy is
fine at the *one* sanctioned normalisation point (``repro.rng``), which
carries an explicit suppression, and nowhere else.

``conftest.py`` files are whitelisted test fixtures (pytest may seed
process-global state for third-party plugins there).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..contracts import ALLOWED_NP_RANDOM_ATTRS
from ..engine import FileContext, Finding
from .base import Rule, collect_imports, dotted_name

__all__ = ["GlobalRngRule"]

#: Generator constructors that are nondeterministic when called with no
#: seed argument at all.
_SEEDED_FACTORIES = {"default_rng", "RandomState"}


class GlobalRngRule(Rule):
    rule_id = "RPR001"
    severity = "error"
    summary = "all randomness must thread a seeded Generator"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.basename == "conftest.py":
            return
        imports = collect_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            if head not in imports:
                # an unimported bare name is a local variable, not the
                # stdlib module — never guess
                continue
            base = imports[head]
            qname = f"{base}.{rest}" if rest else base
            if qname.startswith("numpy.random."):
                attr = qname.split(".")[2]
                if attr not in ALLOWED_NP_RANDOM_ATTRS:
                    yield self.finding(
                        ctx, node,
                        f"call to legacy global-state RNG numpy.random."
                        f"{attr}",
                        hint="thread a numpy.random.Generator parameter "
                             "(repro.rng.ensure_rng / spawn)",
                    )
                elif attr in _SEEDED_FACTORIES and not node.args \
                        and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        f"numpy.random.{attr}() without a seed draws "
                        "fresh OS entropy",
                        hint="accept a seed/Generator parameter; only "
                             "repro.rng.ensure_rng may default to entropy",
                    )
            elif qname == "random" or qname.startswith("random."):
                # the stdlib module: any draw/seed mutates global state
                yield self.finding(
                    ctx, node,
                    f"call into the stdlib global RNG ({qname})",
                    hint="use a numpy.random.Generator threaded through "
                         "the call chain instead",
                )
