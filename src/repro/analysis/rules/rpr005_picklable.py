"""RPR005 — process-pool targets must be picklable, declared-shareable.

The parallel layer's bit-identity argument assumes a worker computes
from exactly what the parent handed it: a module-level function whose
arguments pickle by value.  A lambda or nested function fails at
runtime only on the *spawn* start method (macOS/Windows), i.e. passes
CI on Linux and breaks users; a bound method drags its whole instance
through pickle, smuggling parent state (open caches, RNG positions)
into the worker.  So for every target handed to a
``ProcessPoolExecutor`` / ``multiprocessing`` pool or ``Process``:

* the target must be a module-level function (no lambdas, no nested
  defs, no ``self.`` methods);
* every parameter of a target defined in the same file must be
  annotated, and the annotation may only use the declared-shareable
  types in :data:`repro.analysis.contracts.SHAREABLE_TYPE_NAMES`.

Thread pools are exempt: no pickling happens in-process.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

from ..contracts import SHAREABLE_TYPE_NAMES
from ..engine import FileContext, Finding
from .base import Rule, collect_imports, dotted_name, names_in

__all__ = ["PicklableTargetRule"]

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Constructors whose instances dispatch work to *other processes*.
_PROCESS_POOL_CTORS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
})
_PROCESS_CTORS = frozenset({
    "multiprocessing.Process",
    "multiprocessing.process.Process",
})
#: Pool methods whose first argument is the callable shipped to workers.
_DISPATCH_METHODS = frozenset({
    "submit", "map", "imap", "imap_unordered", "starmap",
    "starmap_async", "apply", "apply_async", "map_async",
})


def _resolve(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    base = imports.get(head, head)
    return f"{base}.{rest}" if rest else base


class PicklableTargetRule(Rule):
    rule_id = "RPR005"
    severity = "error"
    summary = "multiprocessing targets: module-level, shareable args"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = collect_imports(ctx.tree)
        module_funcs: Dict[str, FuncNode] = {
            n.name: n for n in ctx.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        nested = self._nested_defs(ctx)

        # Pool variables are resolved per scope: the same name may hold
        # a ProcessPoolExecutor in one function and a ThreadPoolExecutor
        # (exempt — no pickling) in another.
        for scope in self._scopes(ctx.tree):
            pool_names = self._pool_bindings(scope, imports)
            for node in self._walk_scope(scope):
                if not isinstance(node, ast.Call):
                    continue
                targets: List[ast.expr] = []
                # pool.submit(fn, ...) / pool.map(fn, ...)
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in _DISPATCH_METHODS
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in pool_names
                        and node.args):
                    targets.append(node.args[0])
                # Process(target=fn)
                ctor = _resolve(node.func, imports)
                if ctor in _PROCESS_CTORS:
                    for kw in node.keywords:
                        if kw.arg == "target":
                            targets.append(kw.value)
                for target in targets:
                    yield from self._check_target(
                        ctx, target, module_funcs, nested=nested)

    # ------------------------------------------------------------------
    def _scopes(self, tree: ast.Module) -> List[ast.AST]:
        """The module plus every function, each a distinct name scope."""
        return [tree] + [
            n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def _walk_scope(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk ``scope`` without descending into nested def/class scopes."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                stack.extend(ast.iter_child_nodes(node))

    def _pool_bindings(self, scope: ast.AST,
                       imports: Dict[str, str]) -> Set[str]:
        """Names bound to a process-pool instance inside ``scope``."""
        names: Set[str] = set()

        def is_pool_ctor(value: ast.expr) -> bool:
            if not isinstance(value, ast.Call):
                return False
            qname = _resolve(value.func, imports)
            return qname in _PROCESS_POOL_CTORS

        for node in self._walk_scope(scope):
            if isinstance(node, ast.Assign) and is_pool_ctor(node.value):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        names.add(t.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (is_pool_ctor(item.context_expr)
                            and isinstance(item.optional_vars, ast.Name)):
                        names.add(item.optional_vars.id)
        return names

    def _nested_defs(self, ctx: FileContext) -> Set[str]:
        """Names of functions defined inside other functions."""
        nested: Set[str] = set()
        for outer in ast.walk(ctx.tree):
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(outer):
                    if (inner is not outer
                            and isinstance(inner, (ast.FunctionDef,
                                                   ast.AsyncFunctionDef))):
                        nested.add(inner.name)
        return nested

    # ------------------------------------------------------------------
    def _check_target(self, ctx: FileContext, target: ast.expr,
                      module_funcs: Dict[str, FuncNode],
                      nested: Set[str]) -> Iterator[Finding]:
        if isinstance(target, ast.Lambda):
            yield self.finding(
                ctx, target,
                "lambda shipped to a process pool is not picklable",
                hint="define a module-level worker function instead",
            )
            return
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                yield self.finding(
                    ctx, target,
                    "bound method shipped to a process pool pickles the "
                    "whole instance",
                    hint="use a module-level function taking only "
                         "declared-shareable arguments",
                )
            return
        if not isinstance(target, ast.Name):
            return
        if target.id in module_funcs:
            yield from self._check_worker(ctx, module_funcs[target.id])
        elif target.id in nested:
            yield self.finding(
                ctx, target,
                f"nested function {target.id!r} shipped to a process "
                "pool is not picklable",
                hint="move the worker to module level",
            )
        # imported names are module-level in their own file: checked there

    def _check_worker(self, ctx: FileContext,
                      func: FuncNode) -> Iterator[Finding]:
        a = func.args
        params = list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
        for extra in (a.vararg, a.kwarg):
            if extra is not None:
                params.append(extra)
        for param in params:
            if param.annotation is None:
                yield self.finding(
                    ctx, func,
                    f"worker {func.name} parameter {param.arg!r} is not "
                    "annotated with a declared-shareable type",
                    hint="annotate every worker parameter; allowed roots "
                         "live in repro/analysis/contracts.py",
                )
                continue
            undeclared = sorted(
                names_in(param.annotation) - SHAREABLE_TYPE_NAMES
            )
            if undeclared:
                yield self.finding(
                    ctx, func,
                    f"worker {func.name} parameter {param.arg!r} uses "
                    f"undeclared type name(s): {', '.join(undeclared)}",
                    hint="workers may only take types listed in "
                         "SHAREABLE_TYPE_NAMES (values that pickle by "
                         "value)",
                )
