"""RPR002 — no nondeterminism primitives in the numeric core.

Scoped to ``core/``, ``perf/`` and ``distance/``: the packages whose
outputs must be bit-identical across cache on/off, serial/parallel and
repeated seeded runs.  Two classes of violation:

* **Wall-clock / entropy reads** (``time.time``, ``os.urandom``,
  ``uuid.uuid4``, ``datetime.now`` ...) — any such value that reaches a
  result or a branch makes the run irreproducible.  Duration clocks
  (``time.perf_counter``/``monotonic``) are flagged too, with a
  softer rationale: durations never feed result values, but every
  timing read in the numeric core must flow through the single
  sanctioned seam :func:`repro.obs.clock.monotonic_s` so the
  observability layer owns the clock.  Code outside the scoped
  directories may use the duration clocks directly.
* **Unordered-set iteration** — ``for x in {...}`` / iterating
  ``set(...)`` directly.  Set order depends on element hashes, which
  for strings vary per process (``PYTHONHASHSEED``); a result built in
  that order differs between runs.  Wrap the set in ``sorted(...)`` to
  pin the order.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from ..contracts import (DETERMINISM_SCOPED_DIRS, DURATION_CLOCK_CALLS,
                         WALL_CLOCK_CALLS)
from ..engine import FileContext, Finding
from .base import Rule, collect_imports, dotted_name

__all__ = ["NondeterminismRule"]

_SET_CTORS = ("set", "frozenset")


def _is_set_expr(node: ast.AST) -> bool:
    """Does ``node`` evaluate to a (frozen)set with unspecified order?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_CTORS
    return False


class NondeterminismRule(Rule):
    rule_id = "RPR002"
    severity = "error"
    summary = "no wall-clock or hash-order primitives in core/perf/distance"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(*DETERMINISM_SCOPED_DIRS):
            return
        imports = collect_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, imports)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    yield from self._check_iteration(ctx, comp.iter)

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    imports: dict) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        head, _, rest = dotted.partition(".")
        if head not in imports:
            return
        base = imports[head]
        qname = f"{base}.{rest}" if rest else base
        if qname in WALL_CLOCK_CALLS or qname.startswith("secrets."):
            yield self.finding(
                ctx, node,
                f"nondeterminism primitive {qname} in a bit-identity "
                "scoped module",
                hint="results may only depend on inputs and the seeded "
                     "Generator; use repro.obs.clock.monotonic_s for "
                     "durations",
            )
        elif qname in DURATION_CLOCK_CALLS:
            yield self.finding(
                ctx, node,
                f"raw duration clock {qname} in a bit-identity scoped "
                "module",
                hint="route timing reads through the sanctioned seam "
                     "repro.obs.clock.monotonic_s so the observability "
                     "layer owns the clock",
            )

    def _check_iteration(self, ctx: FileContext,
                         iter_node: ast.expr) -> Iterator[Finding]:
        if _is_set_expr(iter_node):
            yield self.finding(
                ctx, iter_node,
                "iteration over an unordered set feeds hash-order into "
                "the result",
                hint="wrap the set in sorted(...) to pin a deterministic "
                     "order",
            )
