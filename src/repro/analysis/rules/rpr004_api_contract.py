"""RPR004 — public API surface: complete annotations, typed errors.

Applies to the package root ``__init__.py``, ``cli.py``, and every
module under ``core/``.  Two guarantees:

* **Complete type annotations** on public functions and public methods
  of public classes — the contract the ``mypy --strict`` gate then
  verifies for internal consistency.  (The linter check means a missing
  annotation fails fast with a focused message even where mypy is not
  installed.)
* **Typed errors only**: a ``raise`` of a bare builtin exception
  (``ValueError``, ``RuntimeError``, ...) escapes the documented
  ``repro.exceptions`` hierarchy, so callers following the documented
  ``except ReproError`` pattern crash instead of handling the failure.
  ``NotImplementedError`` (abstract methods) and bare re-``raise`` are
  allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from ..engine import FileContext, Finding
from .base import Rule, dotted_name

__all__ = ["ApiContractRule"]

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Builtins whose direct ``raise`` leaks an untyped error to callers.
_BUILTIN_EXCEPTIONS = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError",
    "RuntimeError", "KeyError", "IndexError", "LookupError",
    "ArithmeticError", "ZeroDivisionError", "OverflowError",
    "FloatingPointError", "AttributeError", "OSError", "IOError",
    "FileNotFoundError", "PermissionError", "StopIteration",
    "MemoryError", "RecursionError", "SystemError", "UnicodeError",
    "AssertionError", "EOFError", "BufferError",
})


def _in_scope(ctx: FileContext) -> bool:
    if (ctx.in_dirs("core") or ctx.in_dirs("serve")
            or ctx.basename == "cli.py"):
        return True
    # the package root __init__ (repro/__init__.py), not every package's
    return (ctx.basename == "__init__.py"
            and bool(ctx.dir_parts) and ctx.dir_parts[-1] == "repro")


class ApiContractRule(Rule):
    rule_id = "RPR004"
    severity = "error"
    summary = "public API: complete annotations, repro.exceptions only"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx):
            return
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield from self._check_function(ctx, node, qual=node.name)
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for member in node.body:
                    if (isinstance(member, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))
                            and not member.name.startswith("_")):
                        yield from self._check_function(
                            ctx, member, qual=f"{node.name}.{member.name}",
                            is_method=True,
                        )

    # ------------------------------------------------------------------
    def _check_function(self, ctx: FileContext, func: FuncNode, *,
                        qual: str, is_method: bool = False) -> Iterator[Finding]:
        yield from self._check_annotations(ctx, func, qual, is_method)
        yield from self._check_raises(ctx, func, qual)

    def _check_annotations(self, ctx: FileContext, func: FuncNode,
                           qual: str, is_method: bool) -> Iterator[Finding]:
        a = func.args
        positional = list(a.posonlyargs) + list(a.args)
        if is_method and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [
            arg.arg for arg in positional + list(a.kwonlyargs)
            if arg.annotation is None
        ]
        for extra in (a.vararg, a.kwarg):
            if extra is not None and extra.annotation is None:
                missing.append(f"*{extra.arg}")
        if missing:
            yield self.finding(
                ctx, func,
                f"public function {qual} has unannotated parameter(s): "
                f"{', '.join(missing)}",
                hint="the strict-typing gate needs complete signatures",
            )
        if func.returns is None:
            yield self.finding(
                ctx, func,
                f"public function {qual} has no return annotation",
                hint="annotate the return type (use -> None for "
                     "procedures)",
            )

    def _check_raises(self, ctx: FileContext, func: FuncNode,
                      qual: str) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name in _BUILTIN_EXCEPTIONS:
                yield self.finding(
                    ctx, node,
                    f"{qual} raises builtin {name} instead of a "
                    "repro.exceptions type",
                    hint="raise ParameterError/DataError/... so "
                         "`except ReproError` keeps its contract",
                )
