"""RPR007 — cached kernels must be pure functions of their cache keys.

RPR003 proves every :class:`~repro.perf.cache.IterativeCache` key
*names* the right quantities; it cannot prove the cached **value** is a
function of those quantities alone.  A producer that mutates one of its
array arguments, or reads mutable module state, silently poisons every
subsequent hit: the hill climb re-evaluates the same localities
thousands of times, so one impure kernel skews the whole run while the
key machinery looks perfectly healthy.

For every ``self.<store>.put(key, value)`` site inside a class declared
in :data:`~repro.analysis.contracts.CACHE_KEY_CONTRACTS`, this rule

* traces which calls the ``value`` expression derives from (local
  assignments resolved transitively, same machinery as RPR003);
* resolves each producer through the project call graph; and
* convicts any producer whose **transitive** effect summary mutates a
  parameter (outside the sanctioned
  :data:`~repro.analysis.contracts.DECLARED_OUT_PARAMS`) or reads a
  mutable module global outside
  :data:`~repro.analysis.contracts.PURITY_GLOBAL_ALLOWLIST`.

A cached call site that passes an argument into a producer's declared
``out`` parameter is also flagged: the write-through buffer would be
stored and later served stale.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..contracts import CACHE_KEY_CONTRACTS, PURITY_GLOBAL_ALLOWLIST
from ..dataflow.effects import expand_names, local_bindings
from ..dataflow.fixpoint import describe_impurity
from ..dataflow.project import Project
from ..dataflow.symbols import FuncNode
from ..engine import FileContext, Finding
from .base import Rule

__all__ = ["CachePurityRule"]


def _put_sites(method: FuncNode, stores: Set[str]) -> List[ast.Call]:
    """``self.<store>.put(key, value)`` calls with a value argument."""
    sites = []
    for node in ast.walk(method):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "put"
                and len(node.args) >= 2):
            continue
        owner = node.func.value
        if (isinstance(owner, ast.Attribute) and owner.attr in stores
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "self"):
            sites.append(node)
    return sites


class CachePurityRule(Rule):
    rule_id = "RPR007"
    severity = "error"
    summary = "values cached by IterativeCache must come from pure producers"
    requires_project = True

    def check_project(self, ctx: FileContext,
                      project: Project) -> Iterator[Finding]:
        classes = [
            node for node in ctx.tree.body
            if isinstance(node, ast.ClassDef)
            and node.name in CACHE_KEY_CONTRACTS
        ]
        if not classes:
            return
        module = project.module_for(ctx)
        for cls in classes:
            stores = {c.store for c in CACHE_KEY_CONTRACTS[cls.name].values()}
            for item in cls.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{module.name}::{cls.name}.{item.name}"
                    yield from self._check_method(
                        ctx, project, qual, cls.name, item, stores)

    # ------------------------------------------------------------------
    def _check_method(self, ctx: FileContext, project: Project, qual: str,
                      cls_name: str, method: FuncNode,
                      stores: Set[str]) -> Iterator[Finding]:
        sites = _put_sites(method, stores)
        if not sites:
            return
        bindings = local_bindings(method)
        site_index = project.call_site_index(qual)

        # names whose values can reach any put()'s value argument
        flow_names: Set[str] = set()
        for site in sites:
            value = site.args[1]
            flow_names |= {
                n.id for n in ast.walk(value) if isinstance(n, ast.Name)
            }
        flow_names = expand_names(flow_names, bindings)

        producers = self._producer_calls(method, sites, flow_names)
        reported: Set[Tuple[int, str]] = set()
        for call in producers:
            site = site_index.get(id(call))
            if site is None or site.callee is None:
                continue  # unresolved: external (numpy) calls, assumed pure
            summary = project.summary_for(site.callee)
            info = project.function(site.callee)
            if summary is None or info is None:
                continue
            problem = describe_impurity(summary, PURITY_GLOBAL_ALLOWLIST)
            if problem:
                key = (call.lineno, site.callee)
                if key not in reported:
                    reported.add(key)
                    yield self.finding(
                        ctx, call,
                        f"result of {info.display} flows into a "
                        f"{cls_name} cache store but it {problem} "
                        "(transitively)",
                        hint="cached values must be pure functions of "
                             "their declared keys; fix the producer or "
                             "declare the global in "
                             "PURITY_GLOBAL_ALLOWLIST "
                             "(repro/analysis/contracts.py)",
                    )
            # a cached call site feeding a declared out-param is a
            # write-through buffer being memoised: always wrong
            for caller_name, callee_param in site.bindings:
                if callee_param in summary.out_writes:
                    yield self.finding(
                        ctx, call,
                        f"cached call to {info.display} passes "
                        f"{caller_name!r} into its out parameter "
                        f"{callee_param!r}; the cache would serve a "
                        "buffer the caller keeps writing",
                        hint="drop the out= argument on cached paths",
                    )

    def _producer_calls(self, method: FuncNode, sites: List[ast.Call],
                        flow_names: Set[str]) -> List[ast.Call]:
        """Calls whose results (transitively) reach a put value."""
        producers: List[ast.Call] = []
        site_values = [site.args[1] for site in sites]
        # calls syntactically inside a put value expression
        for value in site_values:
            producers.extend(
                n for n in ast.walk(value) if isinstance(n, ast.Call))
        # calls assigned (possibly through a chain) to a flowing name
        assigns: List[Tuple[ast.expr, ast.expr]] = []
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                assigns.extend((t, node.value) for t in node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assigns.append((node.target, node.value))
        for target, value in assigns:
            target_names = {
                n.id for n in ast.walk(target) if isinstance(n, ast.Name)
            }
            if target_names & flow_names:
                producers.extend(
                    n for n in ast.walk(value) if isinstance(n, ast.Call))
        # deterministic order, no duplicates
        seen: Set[int] = set()
        unique: List[ast.Call] = []
        for call in sorted(producers,
                           key=lambda c: (c.lineno, c.col_offset)):
            if id(call) not in seen:
                seen.add(id(call))
                unique.append(call)
        return unique
