"""Transitive purity/escape fixpoint over the project call graph.

Direct facts (:mod:`~repro.analysis.dataflow.effects`) only see one
function body; purity is a *whole-program* property: a kernel that
itself writes nothing is still impure if a helper three calls down
mutates the array it was handed, or reads mutable module state.  This
module closes the direct facts over the call graph:

* a callee that (transitively) mutates parameter ``p`` makes every
  caller that binds name ``n`` to ``p`` a mutator of whatever ``n``
  aliases — including the caller's own parameters;
* global reads union upward through every resolved call edge;
* parameters declared in
  :data:`repro.analysis.contracts.DECLARED_OUT_PARAMS` are sanctioned
  explicit outputs: writing them does not convict the callee, but an
  argument *passed* to one is still recorded as mutated at the caller.

The transfer functions are monotone unions over finite sets, so the
iteration converges to the unique least fixpoint regardless of the
order functions or call edges are visited — a property the test suite
checks by shuffling traversal order (hypothesis) and asserting
identical summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from .effects import FunctionFacts, declared_out_params
from .symbols import display_module

__all__ = ["Summary", "compute_summaries", "describe_impurity",
           "global_read_allowed"]


@dataclass(frozen=True)
class Summary:
    """Transitive effect summary of one function."""

    #: parameters whose referent may be written during a call
    #: (directly, via an alias, or by any transitive callee)
    mutated: FrozenSet[str] = frozenset()
    #: ``(module, name)`` mutable module globals read anywhere below
    global_reads: FrozenSet[Tuple[str, str]] = frozenset()
    #: declared explicit-output parameters (sanctioned writes)
    out_writes: FrozenSet[str] = frozenset()

    @property
    def impure_params(self) -> FrozenSet[str]:
        """Mutated parameters that are not sanctioned outputs."""
        return self.mutated - self.out_writes


def compute_summaries(
        facts: Dict[str, FunctionFacts],
        order: Optional[Sequence[str]] = None) -> Dict[str, Summary]:
    """Close direct facts over the call graph to transitive summaries.

    ``order`` (any permutation of the function qualnames) only controls
    the worklist seeding; the result is the least fixpoint and is
    therefore identical for every order — see the property test.
    """
    names = list(order) if order is not None else sorted(facts)

    mutated: Dict[str, Set[str]] = {}
    reads: Dict[str, Set[Tuple[str, str]]] = {}
    outs: Dict[str, FrozenSet[str]] = {}
    for qual in names:
        f = facts[qual]
        outs[qual] = declared_out_params(f.info)
        mutated[qual] = set(f.mutated_params())
        reads[qual] = set(f.global_reads)

    # reverse edges: callee -> callers, so a summary change re-queues
    # exactly the functions it can influence
    callers: Dict[str, Set[str]] = {qual: set() for qual in names}
    for qual in names:
        for call in facts[qual].calls:
            if call.callee is not None and call.callee in callers:
                callers[call.callee].add(qual)

    def apply(qual: str) -> bool:
        """Recompute ``qual`` from its callees; True when it grew."""
        f = facts[qual]
        params = set(f.info.params)
        new_mutated = set(mutated[qual])
        new_reads = set(reads[qual])
        for call in f.calls:
            if call.callee is None or call.callee not in mutated:
                continue
            callee_effect = mutated[call.callee] | set(outs[call.callee])
            for caller_name, callee_param in call.bindings:
                if callee_param in callee_effect:
                    new_mutated |= f.alias_roots(caller_name) & params
            new_reads |= reads[call.callee]
        grew = (len(new_mutated) > len(mutated[qual])
                or len(new_reads) > len(reads[qual]))
        mutated[qual] = new_mutated
        reads[qual] = new_reads
        return grew

    pending = list(names)
    in_queue = set(pending)
    while pending:
        qual = pending.pop()
        in_queue.discard(qual)
        if apply(qual):
            for caller in callers.get(qual, ()):
                if caller not in in_queue:
                    pending.append(caller)
                    in_queue.add(caller)

    return {
        qual: Summary(
            mutated=frozenset(mutated[qual]),
            global_reads=frozenset(reads[qual]),
            out_writes=outs[qual],
        )
        for qual in sorted(facts)
    }


def global_read_allowed(module: str, name: str,
                        allowlist: FrozenSet[str]) -> bool:
    """True when a ``(module, name)`` read is sanctioned by ``allowlist``.

    Entries are either bare names (``_current_tracer`` — any module) or
    dotted ``module.name`` suffixes
    (``repro.obs.tracer._current_tracer``).
    """
    if name in allowlist:
        return True
    qualified = f"{display_module(module)}.{name}"
    return any("." in entry and qualified.endswith(entry)
               for entry in allowlist)


def describe_impurity(summary: Summary, allowlist: FrozenSet[str]) -> str:
    """One-line human description of why a summary is impure ('' if pure)."""
    problems = []
    params = sorted(summary.impure_params)
    if params:
        problems.append("mutates parameter(s) " + ", ".join(params))
    bad_reads = sorted(
        (mod, name) for mod, name in summary.global_reads
        if not global_read_allowed(mod, name, allowlist))
    if bad_reads:
        problems.append("reads module global(s) " + ", ".join(
            f"{display_module(mod)}.{name}" for mod, name in bad_reads))
    return "; ".join(problems)
