"""Project-wide symbol table for the interprocedural dataflow pass.

The per-file rules (RPR001–RPR006) treat every module as an island;
the purity and escape rules (RPR007/RPR008) cannot: whether a cached
kernel is pure depends on every function it calls, across module
boundaries.  This module builds the whole-program view those rules
need — every module that reaches the linter, its top-level functions,
classes, methods, imports, and module-level globals — and resolves
dotted references *through* imports and re-export chains.

Modules are keyed by their full path-derived dotted name (so fixture
packages and the real ``repro`` tree coexist in one table); absolute
imports resolve by **dotted suffix match** (``repro.perf.cache``
matches ``<anything>.repro.perf.cache``), relative imports by path
arithmetic against the importing module's package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..engine import FileContext

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "SymbolTable",
    "FuncNode",
    "module_name_for",
    "display_module",
]

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Recursion cap while following ``from .x import y`` re-export chains.
_REEXPORT_DEPTH = 8


def module_name_for(path_parts: Sequence[str]) -> str:
    """Dotted module name for a file path (``__init__`` names the package).

    The name keeps *every* path component (minus the ``.py`` suffix) so
    two files never collide; consumers match absolute imports against
    it by dotted suffix.
    """
    parts = [p for p in path_parts if p not in ("/", "")]
    if not parts:
        return "<unknown>"
    last = parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts = list(parts[:-1]) + [last]
    return ".".join(p.replace(".", "_") if p.endswith((".egg-info",)) else p
                    for p in parts)


def display_module(module_name: str) -> str:
    """Human-oriented module name: trim the filesystem prefix.

    ``a.b.src.repro.perf.cache`` -> ``repro.perf.cache``; names without
    a ``src`` component keep their last three components.
    """
    parts = module_name.split(".")
    if "src" in parts:
        tail = parts[parts.index("src") + 1:]
        if tail:
            return ".".join(tail)
    return ".".join(parts[-3:]) if len(parts) > 3 else module_name


def _function_kind(node: FuncNode, in_class: bool) -> str:
    """``function`` / ``method`` / ``staticmethod`` / ``classmethod``."""
    if not in_class:
        return "function"
    for dec in node.decorator_list:
        name = dec.id if isinstance(dec, ast.Name) else (
            dec.attr if isinstance(dec, ast.Attribute) else None)
        if name == "staticmethod":
            return "staticmethod"
        if name == "classmethod":
            return "classmethod"
    return "method"


def _param_names(node: FuncNode) -> Tuple[str, ...]:
    a = node.args
    params: List[str] = [p.arg for p in a.posonlyargs] + [p.arg for p in a.args]
    if a.vararg is not None:
        params.append(a.vararg.arg)
    params.extend(p.arg for p in a.kwonlyargs)
    if a.kwarg is not None:
        params.append(a.kwarg.arg)
    return tuple(params)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method known to the project."""

    qualname: str          #: ``<module>::name`` or ``<module>::Class.name``
    module: str            #: full dotted module name
    name: str              #: bare function name
    class_name: Optional[str]
    kind: str              #: function / method / staticmethod / classmethod
    node: FuncNode
    params: Tuple[str, ...]

    @property
    def display(self) -> str:
        """``repro.perf.cache.IterativeCache.put``-style short name."""
        owner = f"{self.class_name}." if self.class_name else ""
        return f"{display_module(self.module)}.{owner}{self.name}"

    @property
    def positional_params(self) -> Tuple[str, ...]:
        """Parameters positional callers bind, implicit receiver dropped."""
        if self.kind in ("method", "classmethod") and self.params:
            return self.params[1:]
        return self.params


@dataclass
class ModuleInfo:
    """Everything the dataflow pass knows about one parsed module."""

    name: str
    ctx: FileContext
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, Dict[str, FunctionInfo]] = field(default_factory=dict)
    #: local name -> absolute dotted target (relative imports resolved)
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level names bound by assignment (the "module globals"
    #: RPR007 polices; imports and def/class bindings are not included)
    global_names: Dict[str, int] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module lives in (itself, for ``__init__``)."""
        if self.ctx.basename == "__init__.py":
            return self.name
        return self.name.rpartition(".")[0]


def _resolve_relative(package: str, target: str) -> str:
    """Turn ``..mod.attr`` (as recorded by ``collect_imports``) absolute."""
    level = 0
    while level < len(target) and target[level] == ".":
        level += 1
    base_parts = package.split(".") if package else []
    # one leading dot = current package; each further dot climbs one
    up = level - 1
    if up > 0:
        base_parts = base_parts[:-up] if up < len(base_parts) else []
    rest = target[level:]
    return ".".join(base_parts + ([rest] if rest else [])) if base_parts else rest


def _build_module(ctx: FileContext) -> ModuleInfo:
    from ..rules.base import collect_imports

    name = module_name_for([str(p) for p in ctx.path.parts])
    mod = ModuleInfo(name=name, ctx=ctx)
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualname=f"{name}::{node.name}", module=name,
                name=node.name, class_name=None, kind="function",
                node=node, params=_param_names(node),
            )
            mod.functions[node.name] = info
        elif isinstance(node, ast.ClassDef):
            methods: Dict[str, FunctionInfo] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        qualname=f"{name}::{node.name}.{item.name}",
                        module=name, name=item.name, class_name=node.name,
                        kind=_function_kind(item, in_class=True),
                        node=item, params=_param_names(item),
                    )
                    methods[item.name] = info
            mod.classes[node.name] = methods
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        mod.global_names.setdefault(sub.id, node.lineno)
    raw_imports = collect_imports(ctx.tree)
    for local, target in raw_imports.items():
        if target.startswith("."):
            target = _resolve_relative(mod.package, target)
        mod.imports[local] = target
    return mod


class SymbolTable:
    """All modules in one linted project, with cross-module resolution."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        # sorted so the table (and everything derived from it) is
        # independent of the order contexts arrive in
        modules = sorted((_build_module(c) for c in contexts),
                         key=lambda m: m.name)
        self.modules: Dict[str, ModuleInfo] = {}
        for mod in modules:
            self.modules[mod.name] = mod
        self._by_context: Dict[int, ModuleInfo] = {
            id(mod.ctx): mod for mod in self.modules.values()
        }

    def module_for(self, ctx: FileContext) -> ModuleInfo:
        """The :class:`ModuleInfo` built from ``ctx``."""
        return self._by_context[id(ctx)]

    def functions(self) -> List[FunctionInfo]:
        """Every known function/method, deterministically ordered."""
        out: List[FunctionInfo] = []
        for name in sorted(self.modules):
            mod = self.modules[name]
            out.extend(mod.functions[f] for f in sorted(mod.functions))
            for cls in sorted(mod.classes):
                methods = mod.classes[cls]
                out.extend(methods[m] for m in sorted(methods))
        return out

    # ------------------------------------------------------------------
    def _match_module(self, dotted: str) -> Optional[ModuleInfo]:
        """The module whose full name ends with ``dotted``, if any."""
        direct = self.modules.get(dotted)
        if direct is not None:
            return direct
        suffix = "." + dotted
        hits = [m for name, m in sorted(self.modules.items())
                if name.endswith(suffix)]
        return hits[0] if hits else None

    def resolve_function(self, qualified: str,
                         _depth: int = 0) -> Optional[FunctionInfo]:
        """Resolve an absolute dotted reference to a known function.

        Accepts ``pkg.mod.func``, ``pkg.mod.Class.method``, and
        ``pkg.mod.Class`` (resolved to ``Class.__init__`` when it
        exists).  Re-export chains (``from .tracer import get_tracer``
        in an ``__init__``) are followed to the defining module.
        """
        if _depth > _REEXPORT_DEPTH:
            return None
        parts = qualified.split(".")
        # try progressively shorter module prefixes: the remainder is
        # the in-module path (func | Class | Class.method)
        for cut in range(len(parts) - 1, 0, -1):
            mod = self._match_module(".".join(parts[:cut]))
            if mod is None:
                continue
            tail = parts[cut:]
            found = self._lookup_in_module(mod, tail, _depth)
            if found is not None:
                return found
        return None

    def _lookup_in_module(self, mod: ModuleInfo, tail: List[str],
                          depth: int) -> Optional[FunctionInfo]:
        if not tail:
            return None
        head = tail[0]
        if len(tail) == 1:
            if head in mod.functions:
                return mod.functions[head]
            if head in mod.classes:
                return mod.classes[head].get("__init__")
        elif len(tail) == 2 and tail[0] in mod.classes:
            return mod.classes[tail[0]].get(tail[1])
        # re-export: the name is imported into this module from elsewhere
        if head in mod.imports:
            target = ".".join([mod.imports[head]] + tail[1:])
            return self.resolve_function(target, depth + 1)
        return None

    def resolve_class(self, qualified: str) -> Optional[Tuple[ModuleInfo, str]]:
        """Resolve a dotted reference to a known class definition."""
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = self._match_module(".".join(parts[:cut]))
            if mod is None:
                continue
            tail = parts[cut:]
            if len(tail) == 1:
                if tail[0] in mod.classes:
                    return mod, tail[0]
                if tail[0] in mod.imports:
                    return self.resolve_class(mod.imports[tail[0]])
        return None
