"""The whole-program view handed to project-aware lint rules.

A :class:`Project` owns the three dataflow layers — symbol table, per
-function direct facts, and the transitive purity fixpoint — built
lazily from the :class:`~repro.analysis.engine.FileContext`\\ s of one
lint invocation.  Per-file rules ignore it; project rules
(RPR007/RPR008) query it to resolve calls across module boundaries and
to read transitive effect summaries.

Laziness matters for CLI latency: a ``--select RPR001`` run never pays
for the fixpoint.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..engine import FileContext
from .effects import CallSite, FunctionFacts, build_facts
from .fixpoint import Summary, compute_summaries
from .symbols import FunctionInfo, ModuleInfo, SymbolTable

__all__ = ["Project"]


class Project:
    """Symbol table + effect facts + purity summaries for one lint run."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self._contexts = list(contexts)
        self._symtab: Optional[SymbolTable] = None
        self._facts: Optional[Dict[str, FunctionFacts]] = None
        self._summaries: Optional[Dict[str, Summary]] = None

    @property
    def symtab(self) -> SymbolTable:
        if self._symtab is None:
            self._symtab = SymbolTable(self._contexts)
        return self._symtab

    @property
    def facts(self) -> Dict[str, FunctionFacts]:
        if self._facts is None:
            self._facts = build_facts(self.symtab)
        return self._facts

    @property
    def summaries(self) -> Dict[str, Summary]:
        if self._summaries is None:
            self._summaries = compute_summaries(self.facts)
        return self._summaries

    # ------------------------------------------------------------------
    def module_for(self, ctx: FileContext) -> ModuleInfo:
        """The module built from ``ctx`` (KeyError if not in this run)."""
        return self.symtab.module_for(ctx)

    def summary_for(self, qualname: str) -> Optional[Summary]:
        """Transitive summary of a function by qualname, if known."""
        return self.summaries.get(qualname)

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        facts = self.facts.get(qualname)
        return facts.info if facts is not None else None

    def call_site_index(self, qualname: str) -> Dict[int, CallSite]:
        """Map ``id(call node) -> CallSite`` for one function's body."""
        facts = self.facts.get(qualname)
        if facts is None:
            return {}
        return {id(site.node): site for site in facts.calls}
