"""Interprocedural dataflow core for the static-analysis gate.

Layered bottom-up (each layer consumes only the one below):

``symbols``
    project-wide symbol table: every linted module, its functions,
    classes/methods, imports (relative imports resolved, re-export
    chains followed), and module-level globals;
``effects``
    per-function *direct* facts: mutation events, view aliases, call
    sites with caller-name → callee-parameter bindings, mutable
    module-global reads;
``fixpoint``
    monotone closure of the direct facts over the call graph into
    transitive :class:`~repro.analysis.dataflow.fixpoint.Summary`
    objects (order-independent least fixpoint);
``project``
    the lazy facade (:class:`Project`) the lint engine hands to
    project-aware rules (RPR007, RPR008).

See ``docs/static_analysis.md`` for the architecture walk-through and
the documented precision limits.
"""

from __future__ import annotations

from .effects import (
    CallSite,
    FunctionFacts,
    MutationEvent,
    build_facts,
    expand_names,
    local_bindings,
)
from .fixpoint import (
    Summary,
    compute_summaries,
    describe_impurity,
    global_read_allowed,
)
from .project import Project
from .symbols import (
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    display_module,
    module_name_for,
)

__all__ = [
    "CallSite",
    "FunctionFacts",
    "FunctionInfo",
    "ModuleInfo",
    "MutationEvent",
    "Project",
    "Summary",
    "SymbolTable",
    "build_facts",
    "compute_summaries",
    "describe_impurity",
    "display_module",
    "expand_names",
    "global_read_allowed",
    "local_bindings",
    "module_name_for",
]
