"""Per-function effect summaries: mutation, aliasing, global reads.

For every function the :class:`~repro.analysis.dataflow.symbols.SymbolTable`
knows, this module extracts the *direct* facts the purity fixpoint
consumes:

* **mutation events** — statements that write through a name: subscript
  assignment (``x[...] = v``), in-place operators (``x += v``,
  ``x[...] *= v``), attribute writes (``x.attr = v``), ``del x[...]``,
  calls to known-mutating numpy APIs (``np.copyto``, ``ufunc.at``, …),
  in-place ndarray/container methods (``x.sort()``), and ``out=``
  arguments;
* **aliases** — names derived from other names through view-preserving
  expressions (``y = x``, ``y = x.T``, ``y = np.asarray(x)``), so a
  mutation through the alias is attributed to the original;
* **module-global reads** — loads of names bound at module level by
  assignment.  ``ALL_CAPS`` names are treated as constants by
  convention and exempt; everything else is mutable module state the
  purity rule polices against
  :data:`repro.analysis.contracts.PURITY_GLOBAL_ALLOWLIST`;
* **call sites** — every call, resolved through the symbol table where
  possible, with the caller-name → callee-parameter binding the
  fixpoint propagates effects through.

Known precision limits (documented, deliberate): subscript *reads* do
not alias (``row = X[i]`` then mutating ``row`` is invisible), and
calls on receivers of unknown type are assumed pure unless they appear
in the known-mutating tables.  Both trade soundness at the margin for
a finding list that stays actionable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..contracts import (
    ARRAY_MUTATING_METHODS,
    DECLARED_OUT_PARAMS,
    MUTATING_CALLS,
)
from .symbols import FuncNode, FunctionInfo, ModuleInfo, SymbolTable

__all__ = [
    "CallSite",
    "MutationEvent",
    "FunctionFacts",
    "build_facts",
    "local_bindings",
    "expand_names",
    "is_constant_name",
]

#: Call roots that return a view of (or pass through) their first
#: argument — assigning their result creates an alias.
_VIEW_CALLS = frozenset({
    "numpy.asarray", "numpy.ascontiguousarray", "numpy.asfortranarray",
    "numpy.atleast_1d", "numpy.atleast_2d", "numpy.atleast_3d",
    "numpy.ravel", "numpy.reshape", "numpy.transpose",
    "numpy.broadcast_to", "numpy.squeeze",
})

#: Method names returning views of their receiver.
_VIEW_METHODS = frozenset({"reshape", "view", "ravel", "transpose", "squeeze"})


def is_constant_name(name: str) -> bool:
    """True for ``ALL_CAPS`` module-level names (constants by convention)."""
    bare = name.lstrip("_")
    return bool(bare) and bare == bare.upper() and any(
        c.isalpha() for c in bare)


@dataclass(frozen=True)
class MutationEvent:
    """One statement that writes through ``names`` (pre-alias bases)."""

    node: ast.AST
    names: Tuple[str, ...]
    kind: str = "write"       #: ``write`` or ``protect`` (writeable=False)
    via: str = ""             #: human label (``out=``, ``np.copyto``, …)


@dataclass(frozen=True)
class CallSite:
    """One call expression, with effect-propagation bindings."""

    node: ast.Call
    callee: Optional[str]                       #: resolved qualname or None
    #: (caller local name, callee parameter name) for plain-Name args
    bindings: Tuple[Tuple[str, str], ...]

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class FunctionFacts:
    """Direct (intraprocedural) effects of one function."""

    info: FunctionInfo
    mutations: List[MutationEvent] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: name -> immediate source names it aliases (view-deriving exprs)
    derived_from: Dict[str, Set[str]] = field(default_factory=dict)
    global_reads: FrozenSet[Tuple[str, str]] = frozenset()

    def alias_roots(self, name: str) -> Set[str]:
        """``name`` plus everything it transitively derives from."""
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(self.derived_from.get(cur, ()))
        return seen

    def aliases_of(self, seeds: Set[str]) -> Set[str]:
        """All names whose transitive sources intersect ``seeds``."""
        out = set(seeds)
        changed = True
        while changed:
            changed = False
            for name, sources in self.derived_from.items():
                if name not in out and sources & out:
                    out.add(name)
                    changed = True
        return out

    def mutated_params(self) -> FrozenSet[str]:
        """Parameters written through, directly or via an alias."""
        params = set(self.info.params)
        hit: Set[str] = set()
        for event in self.mutations:
            if event.kind != "write":
                continue
            for name in event.names:
                hit |= self.alias_roots(name) & params
        return frozenset(hit)


# ----------------------------------------------------------------------
# helpers shared with the value-flow side of RPR007
# ----------------------------------------------------------------------

def local_bindings(func: FuncNode) -> Dict[str, Set[str]]:
    """Map each locally bound name to the names its value derives from."""
    out: Dict[str, Set[str]] = {}

    def bind(target: ast.expr, source_names: Set[str]) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                out.setdefault(node.id, set()).update(source_names)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target, _names_in(node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            bind(node.target, _names_in(node.value))
        elif isinstance(node, ast.AugAssign):
            bind(node.target, _names_in(node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target, _names_in(node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                bind(comp.target, _names_in(comp.iter))
    return out


def expand_names(names: Set[str], bindings: Dict[str, Set[str]]) -> Set[str]:
    """Transitive closure of ``names`` through local assignments."""
    seen: Set[str] = set()
    frontier = list(names)
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(bindings.get(name, ()))
    return seen


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _base_name(node: ast.AST) -> Optional[str]:
    """The root ``Name`` of a Name/Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """Attribute names along a chain, innermost first."""
    attrs: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
        node = node.value
    return tuple(reversed(attrs))


def _is_write_protect(node: ast.Assign) -> bool:
    """``x.flags.writeable = False`` — protection, not data mutation."""
    if len(node.targets) != 1:
        return False
    target = node.targets[0]
    chain = _attr_chain(target)
    value_false = (isinstance(node.value, ast.Constant)
                   and node.value.value is False)
    return chain[-2:] == ("flags", "writeable") and value_false


def _is_setflags_protect(call: ast.Call) -> bool:
    """``x.setflags(write=False)``."""
    if not (isinstance(call.func, ast.Attribute)
            and call.func.attr == "setflags"):
        return False
    for kw in call.keywords:
        if kw.arg == "write" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------

class _FactsBuilder:
    def __init__(self, info: FunctionInfo, module: ModuleInfo,
                 symtab: SymbolTable) -> None:
        self.info = info
        self.module = module
        self.symtab = symtab
        self.facts = FunctionFacts(info=info)
        self._local_stores: Set[str] = set(info.params)

    # -- resolution ----------------------------------------------------
    def _dotted(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def _qualify(self, node: ast.AST) -> Optional[str]:
        """Absolute dotted name of an expression, through imports."""
        dotted = self._dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.module.imports.get(head, head)
        return f"{base}.{rest}" if rest else base

    def _resolve_callee(self, call: ast.Call) -> Optional[FunctionInfo]:
        func = call.func
        # self.method() / cls.method() inside a class
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and self.info.class_name is not None):
            methods = self.module.classes.get(self.info.class_name, {})
            return methods.get(func.attr)
        # plain name: same-module function, else imported
        if isinstance(func, ast.Name):
            local = self.module.functions.get(func.id)
            if local is not None:
                return local
            if func.id in self.module.classes:
                return self.module.classes[func.id].get("__init__")
            target = self.module.imports.get(func.id)
            if target is not None:
                return self.symtab.resolve_function(target)
            return None
        # dotted: mod.func, Class.method, pkg.mod.Class.method, ...
        qualified = self._qualify(func)
        if qualified is not None:
            return self.symtab.resolve_function(qualified)
        return None

    # -- recording -----------------------------------------------------
    def _record_mutation(self, node: ast.AST, base: Optional[str],
                         kind: str = "write", via: str = "") -> None:
        if base is not None:
            self.facts.mutations.append(
                MutationEvent(node=node, names=(base,), kind=kind, via=via))

    def _record_call(self, call: ast.Call) -> None:
        callee = self._resolve_callee(call)
        bindings: List[Tuple[str, str]] = []
        if callee is not None:
            positional = callee.positional_params
            for i, arg in enumerate(call.args):
                if isinstance(arg, ast.Starred):
                    break
                if i < len(positional) and isinstance(arg, ast.Name):
                    bindings.append((arg.id, positional[i]))
            for kw in call.keywords:
                if (kw.arg is not None and kw.arg in callee.params
                        and isinstance(kw.value, ast.Name)):
                    bindings.append((kw.value.id, kw.arg))
        self.facts.calls.append(CallSite(
            node=call,
            callee=callee.qualname if callee is not None else None,
            bindings=tuple(bindings),
        ))
        self._record_call_mutations(call, callee)

    def _record_call_mutations(self, call: ast.Call,
                               callee: Optional[FunctionInfo]) -> None:
        # out= arguments are written by any well-behaved numpy callable
        for kw in call.keywords:
            if kw.arg == "out":
                values = (kw.value.elts
                          if isinstance(kw.value, ast.Tuple)
                          else [kw.value])
                for value in values:
                    self._record_mutation(call, _base_name(value), via="out=")
        if _is_setflags_protect(call):
            self._record_mutation(
                call, _base_name(call.func), kind="protect", via="setflags")
            return
        qualified = self._qualify(call.func)
        if qualified is not None:
            mutated = MUTATING_CALLS.get(qualified)
            if mutated is None and (qualified.startswith("numpy.")
                                    and qualified.endswith(".at")):
                mutated = (0,)  # ufunc.at(a, indices, b): in-place on a
            if mutated:
                for index in mutated:
                    if index < len(call.args):
                        self._record_mutation(
                            call, _base_name(call.args[index]), via=qualified)
        # x.sort() and friends: in-place methods on a known receiver
        if (isinstance(call.func, ast.Attribute)
                and call.func.attr in ARRAY_MUTATING_METHODS
                and callee is None):
            self._record_mutation(
                call, _base_name(call.func.value),
                via=f".{call.func.attr}()")

    # -- walk ----------------------------------------------------------
    def build(self) -> FunctionFacts:
        node = self.info.node
        for stmt in ast.walk(node):
            self._visit(stmt)
        self._collect_aliases(node)
        self._collect_global_reads(node)
        return self.facts

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            if _is_write_protect(node):
                self._record_mutation(
                    node, _base_name(node.targets[0]), kind="protect",
                    via="flags.writeable")
                return
            for target in node.targets:
                self._visit_target(node, target)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._visit_target(node, node.target)
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_mutation(node, _base_name(target),
                                      via="augmented assignment")
            elif isinstance(target, ast.Name):
                # ``x += v`` rebinding is only a mutation when x is (or
                # aliases) a parameter — numpy makes it in-place
                self._record_mutation(node, target.id,
                                      via="augmented assignment")
                self._local_stores.add(target.id)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    self._record_mutation(node, _base_name(target), via="del")
        elif isinstance(node, ast.Call):
            self._record_call(node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            self._local_stores.add(node.id)

    def _visit_target(self, stmt: ast.AST, target: ast.expr) -> None:
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            kind = "subscript" if isinstance(target, ast.Subscript) else "attribute"
            self._record_mutation(stmt, _base_name(target),
                                  via=f"{kind} assignment")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._visit_target(stmt, elt)
        elif isinstance(target, ast.Name):
            self._local_stores.add(target.id)

    def _collect_aliases(self, func: FuncNode) -> None:
        derived = self.facts.derived_from
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            sources = self._alias_sources(node.value)
            if not sources:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    derived.setdefault(target.id, set()).update(sources)

    def _alias_sources(self, value: ast.expr) -> Set[str]:
        """Names ``value`` is a view of / passes through, if any."""
        if isinstance(value, ast.Name):
            return {value.id}
        if isinstance(value, ast.Attribute) and value.attr == "T":
            base = _base_name(value)
            return {base} if base else set()
        if isinstance(value, ast.Call):
            qualified = self._qualify(value.func)
            if qualified in _VIEW_CALLS and value.args:
                return self._alias_sources(value.args[0])
            if (isinstance(value.func, ast.Attribute)
                    and value.func.attr in _VIEW_METHODS):
                base = _base_name(value.func.value)
                return {base} if base else set()
        return set()

    def _collect_global_reads(self, func: FuncNode) -> None:
        module_globals = {
            name for name in self.module.global_names
            if not is_constant_name(name)
        }
        if not module_globals:
            return
        stored = set(self._local_stores)
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                stored -= set(node.names)
        # annotations are never executed (PEP 563 is in force repo-wide):
        # a type-alias name in a signature is not a state read
        skip: Set[int] = set()
        for node in ast.walk(func):
            anno_roots: List[Optional[ast.AST]] = []
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for param in (list(args.posonlyargs) + list(args.args)
                              + list(args.kwonlyargs)
                              + [args.vararg, args.kwarg]):
                    if param is not None:
                        anno_roots.append(param.annotation)
                anno_roots.append(node.returns)
            elif isinstance(node, ast.AnnAssign):
                anno_roots.append(node.annotation)
            for root in anno_roots:
                if root is not None:
                    skip.update(id(sub) for sub in ast.walk(root))
        reads: Set[Tuple[str, str]] = set()
        for node in ast.walk(func):
            if id(node) in skip:
                continue
            if (isinstance(node, ast.Name)
                    and node.id in module_globals
                    and node.id not in stored):
                reads.add((self.module.name, node.id))
            elif isinstance(node, ast.Global):
                for name in node.names:
                    if name in module_globals:
                        reads.add((self.module.name, name))
        self.facts.global_reads = frozenset(reads)


def build_facts(symtab: SymbolTable) -> Dict[str, FunctionFacts]:
    """Direct effect facts for every function in the project."""
    out: Dict[str, FunctionFacts] = {}
    for info in symtab.functions():
        module = symtab.modules[info.module]
        out[info.qualname] = _FactsBuilder(info, module, symtab).build()
    return out


def declared_out_params(info: FunctionInfo) -> FrozenSet[str]:
    """Sanctioned explicit-output parameters of ``info`` (contracts)."""
    for suffix, params in DECLARED_OUT_PARAMS.items():
        target = f"{info.class_name}.{info.name}" if info.class_name else info.name
        if target == suffix or info.display.endswith("." + suffix):
            return frozenset(params)
    return frozenset()


def iter_mutation_events(facts: FunctionFacts) -> Iterator[MutationEvent]:
    """All data-writing events of ``facts`` (protections excluded)."""
    for event in facts.mutations:
        if event.kind == "write":
            yield event
