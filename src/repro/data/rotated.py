"""Rotated projected clusters: the workload PROCLUS cannot handle.

The PROCLUS model restricts cluster subspaces to subsets of the
coordinate axes.  Its successor ORCLUS (see
:mod:`repro.extensions.orclus`) removes that restriction.  To exercise
the difference we generate the paper's axis-parallel workload and then
rotate each cluster's point cloud about its anchor with a random
orthogonal matrix: the cluster is still confined near a low-dimensional
affine subspace, but that subspace is no longer axis-aligned, so no
choice of coordinate dimensions makes the cluster tight.

Ground truth keeps the labels; ``metadata["rotations"]`` records the
per-cluster orthogonal matrices so tests can verify the geometry.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from .dataset import Dataset
from .synthetic import SyntheticConfig, SyntheticDataGenerator

__all__ = ["random_rotation", "rotate_clusters", "generate_rotated"]


def random_rotation(d: int, rng: np.random.Generator) -> np.ndarray:
    """A Haar-random ``d x d`` rotation (QR of a Gaussian matrix)."""
    if d < 1:
        raise ParameterError(f"d must be >= 1; got {d}")
    gauss = rng.normal(size=(d, d))
    q, r = np.linalg.qr(gauss)
    # normalise sign so the distribution is Haar, and force det +1
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def rotate_clusters(dataset: Dataset, *, seed: SeedLike = None) -> Dataset:
    """Rotate each ground-truth cluster's points about the cluster mean.

    Outliers are left untouched (they are uniform; rotation changes
    nothing statistically but would leak the box corners).  Returns a
    new dataset; ``cluster_dimensions`` is dropped because after
    rotation no axis-parallel dimension set describes the clusters —
    that is the point.
    """
    if dataset.labels is None:
        raise ParameterError("rotate_clusters needs ground-truth labels")
    rng = ensure_rng(seed)
    points = dataset.points.copy()
    rotations: Dict[int, np.ndarray] = {}
    for cid in dataset.cluster_ids:
        members = np.flatnonzero(dataset.labels == cid)
        centre = points[members].mean(axis=0)
        rotation = random_rotation(dataset.n_dims, rng)
        rotations[cid] = rotation
        points[members] = (points[members] - centre) @ rotation.T + centre
    return Dataset(
        points=points,
        labels=dataset.labels.copy(),
        cluster_dimensions=None,
        name=f"{dataset.name}[rotated]",
        metadata={**dataset.metadata, "rotations": rotations},
    )


def generate_rotated(n_points: int = 5000, n_dims: int = 20,
                     n_clusters: int = 5, *,
                     cluster_dim_counts: Optional[Sequence[int]] = None,
                     outlier_fraction: float = 0.05,
                     seed: SeedLike = None) -> Dataset:
    """One-call rotated workload (generator of §4.1 + per-cluster rotation)."""
    rng = ensure_rng(seed)
    cfg = SyntheticConfig(
        n_points=n_points, n_dims=n_dims, n_clusters=n_clusters,
        cluster_dim_counts=(list(cluster_dim_counts)
                            if cluster_dim_counts is not None else None),
        outlier_fraction=outlier_fraction,
        name="rotated", seed=rng,
    )
    base = SyntheticDataGenerator(cfg).generate()
    return rotate_clusters(base, seed=rng)
