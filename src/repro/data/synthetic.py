"""Synthetic data generator of paper section 4.1.

The generator follows Zhang et al.'s (BIRCH) methodology, generalised by
the PROCLUS authors so that different clusters live in different
subspaces:

* Points lie in the box ``[0, 100]^d``.  A fraction ``outlier_fraction``
  (paper: 5%) are outliers distributed uniformly over the whole space.
* Cluster *anchor points* are uniform in the space.
* The number of dimensions of cluster ``i`` is a Poisson(``poisson_lambda``)
  realisation clamped to ``[2, d]``.  Cluster 1's dimensions are chosen
  uniformly at random; cluster ``i`` inherits
  ``min(d_{i-1}, floor(d_i / 2))`` dimensions from cluster ``i-1`` and
  draws the rest at random — modelling the fact that clusters frequently
  share correlated dimensions.
* Cluster sizes are proportional to ``k`` i.i.d. Exponential(1)
  realisations, scaled so cluster points total ``N * (1 - outlier_fraction)``.
* On a cluster dimension ``j``, coordinates are Normal with mean at the
  anchor coordinate and standard deviation ``s_ij * r`` where the scale
  factor ``s_ij`` is uniform in ``[1, s]``; the paper uses ``r = s = 2``.
  On non-cluster dimensions coordinates are uniform in ``[0, 100]``.

Extensions beyond the paper (all optional, defaults match the paper):

* ``cluster_dim_counts`` pins the exact per-cluster dimensionality (the
  paper's experiments use e.g. ``7,7,7,7,7`` for Case 1 and
  ``7,3,2,6,2`` for Case 2);
* ``cluster_dims`` pins the exact dimension subsets;
* ``clip`` clips generated coordinates back into the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from ..validation import check_fraction, check_positive_int
from .dataset import Dataset, OUTLIER_LABEL

__all__ = ["SyntheticConfig", "SyntheticDataGenerator", "generate"]

#: Side length of the data box used throughout the paper's experiments.
BOX_SIDE = 100.0


@dataclass
class SyntheticConfig:
    """Parameters of the section-4.1 generator.

    Defaults reproduce the paper's setup: 5% outliers, spread ``r = 2``,
    max scale ``s = 2``, Poisson mean 5 for cluster dimensionality.
    """

    n_points: int = 10_000
    n_dims: int = 20
    n_clusters: int = 5
    poisson_lambda: float = 5.0
    outlier_fraction: float = 0.05
    spread: float = 2.0          # the paper's ``r``
    max_scale: float = 2.0       # the paper's ``s``
    cluster_dim_counts: Optional[Sequence[int]] = None
    cluster_dims: Optional[Sequence[Sequence[int]]] = None
    clip: bool = False
    anchor_margin: float = 0.0
    name: str = "synthetic"
    seed: SeedLike = None
    metadata: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Check parameter consistency; raises :class:`ParameterError`."""
        check_positive_int(self.n_points, name="n_points", minimum=1)
        check_positive_int(self.n_dims, name="n_dims", minimum=2)
        check_positive_int(self.n_clusters, name="n_clusters", minimum=1)
        check_fraction(self.outlier_fraction, name="outlier_fraction",
                       inclusive_high=False)
        if self.poisson_lambda <= 0:
            raise ParameterError(
                f"poisson_lambda must be > 0; got {self.poisson_lambda}"
            )
        if self.spread <= 0 or self.max_scale < 1:
            raise ParameterError(
                "spread must be > 0 and max_scale >= 1; got "
                f"spread={self.spread}, max_scale={self.max_scale}"
            )
        if self.anchor_margin < 0 or 2 * self.anchor_margin >= BOX_SIDE:
            raise ParameterError(
                f"anchor_margin must lie in [0, {BOX_SIDE / 2}); got {self.anchor_margin}"
            )
        if self.cluster_dim_counts is not None:
            if len(self.cluster_dim_counts) != self.n_clusters:
                raise ParameterError(
                    "cluster_dim_counts must have one entry per cluster"
                )
            for c in self.cluster_dim_counts:
                if not 2 <= int(c) <= self.n_dims:
                    raise ParameterError(
                        f"each cluster dimensionality must lie in [2, d]; got {c}"
                    )
        if self.cluster_dims is not None:
            if len(self.cluster_dims) != self.n_clusters:
                raise ParameterError("cluster_dims must have one entry per cluster")
            for dims in self.cluster_dims:
                dims = sorted(set(int(j) for j in dims))
                if len(dims) < 2 or dims[0] < 0 or dims[-1] >= self.n_dims:
                    raise ParameterError(
                        f"each cluster needs >= 2 valid dimensions; got {dims}"
                    )

    @property
    def average_cluster_dim(self) -> float:
        """Average ground-truth cluster dimensionality (the paper's ``l``)."""
        if self.cluster_dims is not None:
            return float(np.mean([len(set(d)) for d in self.cluster_dims]))
        if self.cluster_dim_counts is not None:
            return float(np.mean([int(c) for c in self.cluster_dim_counts]))
        return float(self.poisson_lambda)


class SyntheticDataGenerator:
    """Stateful generator bound to a :class:`SyntheticConfig`.

    Use :meth:`generate` to draw a dataset; repeated calls draw
    independent datasets from the same configuration (the paper averages
    its scalability numbers over three "similar" files in exactly this
    sense).
    """

    def __init__(self, config: SyntheticConfig):
        config.validate()
        self.config = config
        self._rng = ensure_rng(config.seed)

    # -- individual steps, exposed for testability ---------------------
    def draw_anchor_points(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform anchor points, optionally inset by ``anchor_margin``."""
        cfg = self.config
        low, high = cfg.anchor_margin, BOX_SIDE - cfg.anchor_margin
        return rng.uniform(low, high, size=(cfg.n_clusters, cfg.n_dims))

    def draw_dimension_counts(self, rng: np.random.Generator) -> List[int]:
        """Per-cluster dimensionalities: Poisson clamped to [2, d]."""
        cfg = self.config
        if cfg.cluster_dims is not None:
            return [len(set(d)) for d in cfg.cluster_dims]
        if cfg.cluster_dim_counts is not None:
            return [int(c) for c in cfg.cluster_dim_counts]
        counts = rng.poisson(cfg.poisson_lambda, size=cfg.n_clusters)
        return [int(np.clip(c, 2, cfg.n_dims)) for c in counts]

    def draw_dimension_sets(self, counts: Sequence[int],
                            rng: np.random.Generator) -> List[Tuple[int, ...]]:
        """Dimension subsets with the paper's inheritance rule.

        Cluster ``i`` reuses ``min(d_{i-1}, floor(d_i / 2))`` dimensions
        of cluster ``i-1`` and fills the remainder randomly from the
        dimensions not already chosen for this cluster.
        """
        cfg = self.config
        if cfg.cluster_dims is not None:
            return [tuple(sorted(set(int(j) for j in d))) for d in cfg.cluster_dims]
        all_dims = np.arange(cfg.n_dims)
        sets: List[Tuple[int, ...]] = []
        prev: Tuple[int, ...] = ()
        for i, di in enumerate(counts):
            chosen: List[int] = []
            if i > 0:
                n_shared = min(len(prev), di // 2)
                if n_shared > 0:
                    chosen = list(
                        rng.choice(np.asarray(prev), size=n_shared, replace=False)
                    )
            remaining = np.setdiff1d(all_dims, np.asarray(chosen, dtype=np.intp))
            n_new = di - len(chosen)
            chosen += list(rng.choice(remaining, size=n_new, replace=False))
            current = tuple(sorted(int(j) for j in chosen))
            sets.append(current)
            prev = current
        return sets

    def draw_cluster_sizes(self, rng: np.random.Generator) -> np.ndarray:
        """Cluster sizes proportional to Exponential(1) realisations.

        Largest-remainder rounding keeps the total exactly
        ``N * (1 - outlier_fraction)`` while guaranteeing each cluster
        at least one point.
        """
        cfg = self.config
        n_cluster_points = cfg.n_points - self.n_outliers
        r = rng.exponential(1.0, size=cfg.n_clusters)
        raw = n_cluster_points * r / r.sum()
        sizes = np.maximum(np.floor(raw).astype(np.int64), 1)
        # distribute the remainder to the largest fractional parts
        deficit = n_cluster_points - int(sizes.sum())
        if deficit > 0:
            order = np.argsort(-(raw - np.floor(raw)))
            for idx in order[:deficit]:
                sizes[idx] += 1
        while sizes.sum() > n_cluster_points:
            idx = int(np.argmax(sizes))
            if sizes[idx] <= 1:
                break
            sizes[idx] -= 1
        return sizes

    @property
    def n_outliers(self) -> int:
        """Number of outlier points implied by the configuration."""
        return int(round(self.config.n_points * self.config.outlier_fraction))

    def _fill_cluster(self, out: np.ndarray, anchor: np.ndarray,
                      dims: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Fill ``out`` (size_i, d) with one cluster's points in place."""
        cfg = self.config
        n = out.shape[0]
        out[:] = rng.uniform(0.0, BOX_SIDE, size=out.shape)
        scale_factors = rng.uniform(1.0, cfg.max_scale, size=len(dims))
        for s_ij, j in zip(scale_factors, dims):
            sigma = s_ij * cfg.spread
            out[:, j] = rng.normal(loc=anchor[j], scale=sigma, size=n)
        if cfg.clip:
            np.clip(out, 0.0, BOX_SIDE, out=out)

    # -- the full pipeline ---------------------------------------------
    def generate(self, seed: SeedLike = None) -> Dataset:
        """Draw one dataset.

        An explicit ``seed`` overrides the generator's own stream for
        this draw only; otherwise consecutive calls consume the stream.
        """
        cfg = self.config
        rng = ensure_rng(seed) if seed is not None else self._rng

        anchors = self.draw_anchor_points(rng)
        counts = self.draw_dimension_counts(rng)
        dim_sets = self.draw_dimension_sets(counts, rng)
        sizes = self.draw_cluster_sizes(rng)
        n_out = cfg.n_points - int(sizes.sum())

        points = np.empty((cfg.n_points, cfg.n_dims), dtype=np.float64)
        labels = np.empty(cfg.n_points, dtype=np.int64)
        row = 0
        for cid in range(cfg.n_clusters):
            size = int(sizes[cid])
            self._fill_cluster(points[row:row + size], anchors[cid],
                               dim_sets[cid], rng)
            labels[row:row + size] = cid
            row += size
        if n_out:
            points[row:] = rng.uniform(0.0, BOX_SIDE, size=(n_out, cfg.n_dims))
            labels[row:] = OUTLIER_LABEL

        # shuffle so cluster membership is not encoded in row order
        perm = rng.permutation(cfg.n_points)
        dataset = Dataset(
            points=points[perm],
            labels=labels[perm],
            cluster_dimensions={i: dims for i, dims in enumerate(dim_sets)},
            name=cfg.name,
            metadata={
                "anchors": anchors,
                "cluster_sizes": {i: int(s) for i, s in enumerate(sizes)},
                "n_outliers": n_out,
                "config": cfg,
                **cfg.metadata,
            },
        )
        return dataset


def generate(n_points: int = 10_000, n_dims: int = 20, n_clusters: int = 5,
             *, poisson_lambda: float = 5.0, outlier_fraction: float = 0.05,
             cluster_dim_counts: Optional[Sequence[int]] = None,
             cluster_dims: Optional[Sequence[Sequence[int]]] = None,
             spread: float = 2.0, max_scale: float = 2.0, clip: bool = False,
             anchor_margin: float = 0.0, name: str = "synthetic",
             seed: SeedLike = None) -> Dataset:
    """One-call convenience wrapper around :class:`SyntheticDataGenerator`.

    See :class:`SyntheticConfig` for parameter semantics; defaults follow
    paper section 4.1 (``r = s = 2``, 5% outliers, box ``[0, 100]^d``).

    Examples
    --------
    >>> ds = generate(1000, 20, 5, cluster_dim_counts=[7] * 5, seed=42)
    >>> ds.n_points, ds.n_dims, ds.n_clusters
    (1000, 20, 5)
    """
    cfg = SyntheticConfig(
        n_points=n_points, n_dims=n_dims, n_clusters=n_clusters,
        poisson_lambda=poisson_lambda, outlier_fraction=outlier_fraction,
        cluster_dim_counts=cluster_dim_counts, cluster_dims=cluster_dims,
        spread=spread, max_scale=max_scale, clip=clip,
        anchor_margin=anchor_margin, name=name, seed=seed,
    )
    return SyntheticDataGenerator(cfg).generate()
