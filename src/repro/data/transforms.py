"""Dataset transforms used by examples, ablations, and tests.

These are deliberately simple, pure functions returning new
:class:`~repro.data.dataset.Dataset` objects (points are copied; ground
truth is carried through and adjusted where the transform affects it).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from .dataset import Dataset

__all__ = ["min_max_normalize", "add_noise_dimensions", "shuffle_points"]


def min_max_normalize(dataset: Dataset, feature_range: Tuple[float, float] = (0.0, 1.0)) -> Dataset:
    """Rescale each dimension linearly into ``feature_range``.

    Constant dimensions map to the middle of the range.  Cluster
    dimension sets are preserved — min-max scaling is monotone per
    dimension, so projected cluster structure survives.
    """
    low, high = feature_range
    if not high > low:
        raise ParameterError(f"feature_range must satisfy high > low; got {feature_range}")
    pts = dataset.points
    mins = pts.min(axis=0)
    maxs = pts.max(axis=0)
    span = maxs - mins
    scaled = np.empty_like(pts)
    constant = span == 0
    nz = ~constant
    scaled[:, nz] = low + (pts[:, nz] - mins[nz]) / span[nz] * (high - low)
    scaled[:, constant] = (low + high) / 2.0
    return Dataset(
        points=scaled,
        labels=None if dataset.labels is None else dataset.labels.copy(),
        cluster_dimensions=dataset.cluster_dimensions,
        name=f"{dataset.name}[minmax]",
        metadata=dict(dataset.metadata),
    )


def add_noise_dimensions(dataset: Dataset, n_noise: int, *,
                         low: float = 0.0, high: float = 100.0,
                         seed: SeedLike = None) -> Dataset:
    """Append ``n_noise`` uniform-noise dimensions to every point.

    Used by the Figure-9 style studies: the projected structure is
    unchanged (the new dimensions belong to no cluster), but the ambient
    dimensionality grows.
    """
    if n_noise < 0:
        raise ParameterError(f"n_noise must be >= 0; got {n_noise}")
    if n_noise == 0:
        return dataset
    rng = ensure_rng(seed)
    noise = rng.uniform(low, high, size=(dataset.n_points, n_noise))
    points = np.hstack([dataset.points, noise])
    return Dataset(
        points=points,
        labels=None if dataset.labels is None else dataset.labels.copy(),
        cluster_dimensions=dataset.cluster_dimensions,
        name=f"{dataset.name}[+{n_noise}noise]",
        metadata=dict(dataset.metadata),
    )


def shuffle_points(dataset: Dataset, seed: SeedLike = None,
                   return_permutation: bool = False):
    """Randomly permute point order (labels permuted consistently)."""
    rng = ensure_rng(seed)
    perm = rng.permutation(dataset.n_points)
    shuffled = Dataset(
        points=dataset.points[perm],
        labels=None if dataset.labels is None else dataset.labels[perm],
        cluster_dimensions=dataset.cluster_dimensions,
        name=dataset.name,
        metadata=dict(dataset.metadata),
    )
    if return_permutation:
        return shuffled, perm
    return shuffled
