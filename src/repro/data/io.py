"""Dataset persistence: CSV (human-inspectable) and NPZ (fast) round-trips.

The CSV layout is one point per row, coordinates first, followed by an
optional integer ``label`` column.  Ground-truth dimension sets travel in
a ``# cluster_dims:`` header comment so a CSV written by
:func:`save_csv` reloads losslessly with :func:`load_csv`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import DataError
from .dataset import Dataset

__all__ = ["save_csv", "load_csv", "save_npz", "load_npz"]

PathLike = Union[str, Path]

_DIMS_HEADER = "# cluster_dims:"
_NAME_HEADER = "# name:"


def save_csv(dataset: Dataset, path: PathLike) -> Path:
    """Write ``dataset`` to CSV; returns the path written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"{_NAME_HEADER} {dataset.name}\n")
        if dataset.cluster_dimensions is not None:
            payload = {str(k): list(v) for k, v in dataset.cluster_dimensions.items()}
            fh.write(f"{_DIMS_HEADER} {json.dumps(payload)}\n")
        header = ",".join(f"x{j}" for j in range(dataset.n_dims))
        if dataset.labels is not None:
            header += ",label"
        fh.write(header + "\n")
        for i in range(dataset.n_points):
            row = ",".join(repr(float(v)) for v in dataset.points[i])
            if dataset.labels is not None:
                row += f",{int(dataset.labels[i])}"
            fh.write(row + "\n")
    return path


def load_csv(path: PathLike, *, allow_nonfinite: bool = False) -> Dataset:
    """Read a dataset previously written by :func:`save_csv`.

    ``allow_nonfinite=True`` accepts NaN/inf cells (e.g. dirty exports
    headed for the sanitization pipeline) instead of raising
    :class:`~repro.exceptions.DataError`.
    """
    path = Path(path)
    name = path.stem
    cluster_dims = None
    rows = []
    labels = []
    has_labels = False
    with path.open("r", encoding="utf-8") as fh:
        header_seen = False
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith(_NAME_HEADER):
                name = line[len(_NAME_HEADER):].strip()
                continue
            if line.startswith(_DIMS_HEADER):
                payload = json.loads(line[len(_DIMS_HEADER):].strip())
                cluster_dims = {int(k): tuple(v) for k, v in payload.items()}
                continue
            if line.startswith("#"):
                continue
            if not header_seen:
                header_seen = True
                has_labels = line.split(",")[-1].strip() == "label"
                continue
            parts = line.split(",")
            if has_labels:
                rows.append([float(v) for v in parts[:-1]])
                labels.append(int(parts[-1]))
            else:
                rows.append([float(v) for v in parts])
    if not rows:
        raise DataError(f"{path} contains no data rows")
    return Dataset(
        points=np.asarray(rows, dtype=np.float64),
        labels=np.asarray(labels, dtype=np.int64) if has_labels else None,
        cluster_dimensions=cluster_dims,
        name=name,
        allow_nonfinite=allow_nonfinite,
    )


def save_npz(dataset: Dataset, path: PathLike) -> Path:
    """Write ``dataset`` to a compressed ``.npz``; returns the path."""
    path = Path(path)
    arrays = {"points": dataset.points, "name": np.asarray(dataset.name)}
    if dataset.labels is not None:
        arrays["labels"] = dataset.labels
    if dataset.cluster_dimensions is not None:
        payload = {str(k): list(v) for k, v in dataset.cluster_dimensions.items()}
        arrays["cluster_dims_json"] = np.asarray(json.dumps(payload))
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_npz(path: PathLike) -> Dataset:
    """Read a dataset previously written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        points = data["points"]
        labels = data["labels"] if "labels" in data else None
        cluster_dims = None
        if "cluster_dims_json" in data:
            payload = json.loads(str(data["cluster_dims_json"]))
            cluster_dims = {int(k): tuple(v) for k, v in payload.items()}
        name = str(data["name"]) if "name" in data else Path(path).stem
    return Dataset(points=points, labels=labels,
                   cluster_dimensions=cluster_dims, name=name)
