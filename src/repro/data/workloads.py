"""Named domain workloads with projected-cluster ground truth.

The paper motivates projected clustering with customer-facing
applications (collaborative filtering, customer segmentation).  These
generators produce such scenarios as :class:`~repro.data.Dataset`
objects with full ground truth (labels + per-cluster dimension sets),
so examples, tests, and user experiments share one implementation.

All of them reduce to the same statistical structure as the section-4.1
generator — tight Gaussians on the cluster dimensions, uniform noise
elsewhere — but with named, domain-shaped dimensions and segment
definitions, which makes the recovered dimension sets human-readable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from .dataset import Dataset, OUTLIER_LABEL

__all__ = [
    "collaborative_filtering_workload",
    "customer_segmentation_workload",
    "sensor_fleet_workload",
]


def _assemble(blocks: List[np.ndarray], labels: List[np.ndarray],
              dims: Dict[int, Tuple[int, ...]], name: str,
              feature_names: Sequence[str],
              rng: np.random.Generator,
              extra_metadata: Optional[dict] = None) -> Dataset:
    X = np.vstack(blocks)
    y = np.concatenate(labels)
    perm = rng.permutation(X.shape[0])
    metadata = {"feature_names": list(feature_names)}
    if extra_metadata:
        metadata.update(extra_metadata)
    return Dataset(points=X[perm], labels=y[perm], cluster_dimensions=dims,
                   name=name, metadata=metadata)


#: Product categories of the collaborative-filtering scenario.
PRODUCT_CATEGORIES: Tuple[str, ...] = (
    "sci-fi", "romance", "cooking", "travel", "sports", "gardening",
    "finance", "parenting", "gaming", "music", "fitness", "history",
    "fashion", "tech", "pets", "art",
)

#: Default customer segments: name -> (categories, mean rating).
DEFAULT_SEGMENTS: Dict[str, Tuple[Tuple[str, ...], float]] = {
    "young gamers": (("gaming", "tech", "sci-fi", "music"), 9.0),
    "home makers": (("cooking", "gardening", "parenting", "pets"), 8.0),
    "active retirees": (("travel", "history", "art", "finance"), 7.5),
    "athletes": (("sports", "fitness", "music"), 8.5),
}


def collaborative_filtering_workload(
        n_per_segment: int = 800, n_outliers: int = 150, *,
        segments: Optional[Dict[str, Tuple[Sequence[str], float]]] = None,
        rating_scale: float = 10.0, taste_sigma: float = 0.6,
        seed: SeedLike = None) -> Dataset:
    """Customers x product-category ratings (paper section 1.2's example).

    Each segment has strong shared taste on its own categories; every
    other rating is uniform noise.  The dataset's
    ``metadata["segment_names"]`` and ``metadata["feature_names"]``
    make recovered clusters and dimensions interpretable.
    """
    rng = ensure_rng(seed)
    segments = dict(DEFAULT_SEGMENTS if segments is None else segments)
    if not segments:
        raise ParameterError("segments must be non-empty")
    d = len(PRODUCT_CATEGORIES)
    index = {c: j for j, c in enumerate(PRODUCT_CATEGORIES)}

    blocks, labels = [], []
    dims: Dict[int, Tuple[int, ...]] = {}
    for seg_id, (name, (cats, base)) in enumerate(segments.items()):
        unknown = [c for c in cats if c not in index]
        if unknown:
            raise ParameterError(
                f"segment {name!r} references unknown categories {unknown}"
            )
        block = rng.uniform(0, rating_scale, size=(n_per_segment, d))
        for c in cats:
            block[:, index[c]] = np.clip(
                rng.normal(base, taste_sigma, size=n_per_segment),
                0, rating_scale,
            )
        blocks.append(block)
        labels.append(np.full(n_per_segment, seg_id))
        dims[seg_id] = tuple(sorted(index[c] for c in cats))
    if n_outliers:
        blocks.append(rng.uniform(0, rating_scale, size=(n_outliers, d)))
        labels.append(np.full(n_outliers, OUTLIER_LABEL))

    return _assemble(
        blocks, labels, dims, "collaborative-filtering",
        PRODUCT_CATEGORIES, rng,
        extra_metadata={"segment_names": list(segments)},
    )


#: Behavioural features of the customer-segmentation scenario.
BEHAVIOUR_FEATURES: Tuple[str, ...] = (
    "visits_per_month", "basket_size", "discount_rate_used",
    "night_purchases", "returns_rate", "mobile_share",
    "support_tickets", "gift_purchases", "premium_share",
    "review_count", "referrals", "subscription_months",
)

_SEGMENT_PROFILES: Dict[str, Dict[str, float]] = {
    "bargain hunters": {"discount_rate_used": 0.8, "returns_rate": 0.3,
                        "visits_per_month": 0.7},
    "premium loyalists": {"premium_share": 0.9, "subscription_months": 0.8,
                          "basket_size": 0.7, "referrals": 0.6},
    "night owls": {"night_purchases": 0.9, "mobile_share": 0.8},
    "gift shoppers": {"gift_purchases": 0.9, "review_count": 0.2,
                      "basket_size": 0.5},
}


def customer_segmentation_workload(n_per_segment: int = 600,
                                   n_outliers: int = 120, *,
                                   sigma: float = 0.04,
                                   seed: SeedLike = None) -> Dataset:
    """Behavioural customer features; segments coherent in 2-4 features.

    Feature values are normalised to [0, 1]; a segment's defining
    features concentrate around its profile value, the rest is uniform.
    """
    rng = ensure_rng(seed)
    d = len(BEHAVIOUR_FEATURES)
    index = {f: j for j, f in enumerate(BEHAVIOUR_FEATURES)}
    blocks, labels = [], []
    dims: Dict[int, Tuple[int, ...]] = {}
    for seg_id, (name, profile) in enumerate(_SEGMENT_PROFILES.items()):
        block = rng.uniform(0, 1, size=(n_per_segment, d))
        for feature, centre in profile.items():
            block[:, index[feature]] = np.clip(
                rng.normal(centre, sigma, size=n_per_segment), 0, 1,
            )
        blocks.append(block)
        labels.append(np.full(n_per_segment, seg_id))
        dims[seg_id] = tuple(sorted(index[f] for f in profile))
    if n_outliers:
        blocks.append(rng.uniform(0, 1, size=(n_outliers, d)))
        labels.append(np.full(n_outliers, OUTLIER_LABEL))
    return _assemble(
        blocks, labels, dims, "customer-segmentation",
        BEHAVIOUR_FEATURES, rng,
        extra_metadata={"segment_names": list(_SEGMENT_PROFILES)},
    )


def sensor_fleet_workload(n_sensors: int = 2400, n_outliers: int = 100, *,
                          n_metrics: int = 18, n_modes: int = 4,
                          seed: SeedLike = None) -> Dataset:
    """Telemetry snapshot of a sensor fleet with per-mode signatures.

    Each operating mode pins a random subset of 3-5 metrics to a tight
    signature; the remaining metrics fluctuate freely.  Useful as an
    anomaly-detection flavoured demo: PROCLUS's outlier set corresponds
    to sensors matching no mode signature.
    """
    rng = ensure_rng(seed)
    if n_modes < 1 or n_metrics < 6:
        raise ParameterError("need n_modes >= 1 and n_metrics >= 6")
    per_mode = n_sensors // n_modes
    blocks, labels = [], []
    dims: Dict[int, Tuple[int, ...]] = {}
    for mode in range(n_modes):
        n_sig = int(rng.integers(3, 6))
        signature_dims = np.sort(rng.choice(n_metrics, n_sig, replace=False))
        centres = rng.uniform(10, 90, size=n_sig)
        block = rng.uniform(0, 100, size=(per_mode, n_metrics))
        for j, c in zip(signature_dims, centres):
            block[:, j] = rng.normal(c, 1.5, size=per_mode)
        blocks.append(block)
        labels.append(np.full(per_mode, mode))
        dims[mode] = tuple(int(j) for j in signature_dims)
    if n_outliers:
        blocks.append(rng.uniform(0, 100, size=(n_outliers, n_metrics)))
        labels.append(np.full(n_outliers, OUTLIER_LABEL))
    feature_names = [f"metric_{i}" for i in range(n_metrics)]
    return _assemble(blocks, labels, dims, "sensor-fleet", feature_names, rng)
