"""Dataset container with optional projected-clustering ground truth.

Conventions (used across the whole library):

* points are a float64 matrix of shape ``(n_points, n_dims)``;
* labels are integers, cluster ids ``0..k-1`` and ``-1`` for outliers;
* per-cluster dimension sets are sorted tuples of dimension indices,
  keyed by cluster id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..exceptions import DataError
from ..validation import check_array

__all__ = ["Dataset", "OUTLIER_LABEL"]

#: Label value reserved for outlier points everywhere in the library.
OUTLIER_LABEL: int = -1


@dataclass
class Dataset:
    """Points plus (optional) projected-clustering ground truth.

    Attributes
    ----------
    points:
        Float matrix ``(n_points, n_dims)``.
    labels:
        Optional integer array ``(n_points,)``; ``-1`` marks outliers.
    cluster_dimensions:
        Optional mapping ``cluster id -> sorted tuple of dimension
        indices`` giving the subspace each ground-truth cluster lives in.
    name:
        Free-form identifier used in reports.
    allow_nonfinite:
        Accept NaN/inf cells in ``points`` instead of raising.  Meant
        for data destined for the sanitization pipeline
        (:func:`repro.robustness.sanitize`); the algorithms themselves
        still require finite input.
    """

    points: np.ndarray
    labels: Optional[np.ndarray] = None
    cluster_dimensions: Optional[Dict[int, Tuple[int, ...]]] = None
    name: str = "dataset"
    metadata: dict = field(default_factory=dict)
    allow_nonfinite: bool = False

    def __post_init__(self) -> None:
        self.points = check_array(
            self.points, name="points", allow_nonfinite=self.allow_nonfinite
        )
        if self.labels is not None:
            labels = np.asarray(self.labels)
            if labels.ndim != 1 or labels.shape[0] != self.points.shape[0]:
                raise DataError(
                    "labels must be a 1-D array with one entry per point; "
                    f"got shape {labels.shape} for {self.points.shape[0]} points"
                )
            self.labels = labels.astype(np.int64)
        if self.cluster_dimensions is not None:
            cleaned: Dict[int, Tuple[int, ...]] = {}
            for cid, dims in self.cluster_dimensions.items():
                dims = tuple(sorted(int(j) for j in dims))
                if dims and (dims[0] < 0 or dims[-1] >= self.n_dims):
                    raise DataError(
                        f"cluster {cid}: dimension indices {dims} out of "
                        f"range for d={self.n_dims}"
                    )
                cleaned[int(cid)] = dims
            self.cluster_dimensions = cleaned

    # ------------------------------------------------------------------
    # Shape and ground-truth accessors
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of points ``N``."""
        return int(self.points.shape[0])

    @property
    def n_dims(self) -> int:
        """Dimensionality ``d`` of the data space."""
        return int(self.points.shape[1])

    @property
    def has_ground_truth(self) -> bool:
        """True when labels are available."""
        return self.labels is not None

    @property
    def cluster_ids(self) -> Tuple[int, ...]:
        """Sorted ground-truth cluster ids (outlier label excluded)."""
        if self.labels is None:
            return ()
        ids = np.unique(self.labels)
        return tuple(int(i) for i in ids if i != OUTLIER_LABEL)

    @property
    def n_clusters(self) -> int:
        """Number of ground-truth clusters."""
        return len(self.cluster_ids)

    @property
    def n_outliers(self) -> int:
        """Number of ground-truth outlier points."""
        if self.labels is None:
            return 0
        return int(np.count_nonzero(self.labels == OUTLIER_LABEL))

    def cluster_points(self, cluster_id: int) -> np.ndarray:
        """The points belonging to ground-truth cluster ``cluster_id``."""
        if self.labels is None:
            raise DataError("dataset has no ground-truth labels")
        return self.points[self.labels == cluster_id]

    def cluster_sizes(self) -> Dict[int, int]:
        """Mapping cluster id -> number of points (outliers excluded)."""
        return {
            cid: int(np.count_nonzero(self.labels == cid))
            for cid in self.cluster_ids
        }

    def iter_clusters(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(cluster_id, points)`` pairs for each ground-truth cluster."""
        for cid in self.cluster_ids:
            yield cid, self.cluster_points(cid)

    # ------------------------------------------------------------------
    # Derived datasets
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """A new dataset restricted to the given point indices."""
        indices = np.asarray(indices, dtype=np.intp)
        labels = self.labels[indices] if self.labels is not None else None
        return Dataset(
            points=self.points[indices],
            labels=labels,
            cluster_dimensions=self.cluster_dimensions,
            name=name or f"{self.name}[subset:{indices.size}]",
            metadata=dict(self.metadata),
            allow_nonfinite=self.allow_nonfinite,
        )

    def without_ground_truth(self) -> "Dataset":
        """A copy with labels and dimension sets stripped (for blind runs)."""
        return Dataset(
            points=self.points,
            labels=None,
            cluster_dimensions=None,
            name=self.name,
            metadata=dict(self.metadata),
            allow_nonfinite=self.allow_nonfinite,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        gt = f", k={self.n_clusters}" if self.has_ground_truth else ""
        return (
            f"Dataset(name={self.name!r}, N={self.n_points}, d={self.n_dims}{gt})"
        )
