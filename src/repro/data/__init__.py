"""Datasets: the paper's synthetic workload generator, containers, and IO.

:class:`~repro.data.dataset.Dataset` bundles the point matrix with its
ground truth (cluster labels and per-cluster dimension sets), which the
accuracy experiments need to build confusion matrices and compare
recovered dimensions.  :func:`~repro.data.synthetic.generate` implements
the generator of section 4.1 of the paper.
"""

from .dataset import Dataset, OUTLIER_LABEL
from .synthetic import SyntheticConfig, SyntheticDataGenerator, generate
from .io import load_csv, load_npz, save_csv, save_npz
from .rotated import generate_rotated, random_rotation, rotate_clusters
from .transforms import add_noise_dimensions, min_max_normalize, shuffle_points
from .workloads import (
    collaborative_filtering_workload,
    customer_segmentation_workload,
    sensor_fleet_workload,
)

__all__ = [
    "Dataset",
    "OUTLIER_LABEL",
    "SyntheticConfig",
    "SyntheticDataGenerator",
    "generate",
    "save_csv",
    "load_csv",
    "save_npz",
    "load_npz",
    "min_max_normalize",
    "add_noise_dimensions",
    "shuffle_points",
    "generate_rotated",
    "random_rotation",
    "rotate_clusters",
    "collaborative_filtering_workload",
    "customer_segmentation_workload",
    "sensor_fleet_workload",
]
