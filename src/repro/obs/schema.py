"""Hand-rolled validation of the JSONL trace format.

No ``jsonschema`` dependency — the format is small enough to check
directly, and the checks double as its authoritative description:

* line 1: ``{"type": "meta", "schema": 1, ...}``
* spans:  ``{"type": "span", "id", "parent", "name", "kind",
  "start_s", "end_s", "dur_s", "attrs"}``
* events: ``{"type": "event", "span", "name", "t_s", "attrs"}``
* last line: ``{"type": "counters", "values": {...}}``

Used by the CI trace-smoke job (``python -m repro.obs <file>``) and the
test suite to catch accidental schema drift.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from ..exceptions import DataError
from .tracer import TRACE_SCHEMA_VERSION

__all__ = ["validate_trace_lines", "validate_trace_file"]

_NUMBER = (int, float)

_REQUIRED_KEYS = {
    "meta": {"schema": _NUMBER},
    "span": {"id": int, "name": str, "kind": str,
             "start_s": _NUMBER, "end_s": _NUMBER, "dur_s": _NUMBER,
             "attrs": dict},
    "event": {"name": str, "t_s": _NUMBER, "attrs": dict},
    "counters": {"values": dict},
}


def _check_record(record: Dict[str, Any], lineno: int,
                  errors: List[str]) -> None:
    kind = record.get("type")
    spec = _REQUIRED_KEYS.get(kind) if isinstance(kind, str) else None
    if spec is None:
        errors.append(f"line {lineno}: unknown record type {kind!r}")
        return
    for key, expected in spec.items():
        if key not in record:
            errors.append(f"line {lineno}: {kind} record missing {key!r}")
        elif not isinstance(record[key], expected):
            errors.append(
                f"line {lineno}: {kind} field {key!r} has type "
                f"{type(record[key]).__name__}"
            )
    if kind == "span":
        parent = record.get("parent")
        if parent is not None and not isinstance(parent, int):
            errors.append(f"line {lineno}: span parent must be int or null")
        if isinstance(record.get("start_s"), _NUMBER) and \
                isinstance(record.get("end_s"), _NUMBER) and \
                record["end_s"] < record["start_s"]:
            errors.append(f"line {lineno}: span ends before it starts")
    if kind == "event":
        span = record.get("span")
        if span is not None and not isinstance(span, int):
            errors.append(f"line {lineno}: event span must be int or null")
    if kind == "meta" and record.get("schema") != TRACE_SCHEMA_VERSION:
        errors.append(
            f"line {lineno}: schema version {record.get('schema')!r}; "
            f"this library reads version {TRACE_SCHEMA_VERSION}"
        )
    if kind == "counters":
        values = record.get("values")
        if isinstance(values, dict):
            for name, value in values.items():
                if not isinstance(value, _NUMBER):
                    errors.append(
                        f"line {lineno}: counter {name!r} is not a number")


def validate_trace_lines(lines: Iterable[str]) -> List[str]:
    """All schema violations in the given JSONL lines (empty = valid)."""
    errors: List[str] = []
    seen_meta = False
    seen_any = False
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        seen_any = True
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc.msg})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: record is not a JSON object")
            continue
        if not seen_meta:
            if record.get("type") != "meta":
                errors.append("line 1: first record must be the meta header")
            seen_meta = True
        _check_record(record, lineno, errors)
    if not seen_any:
        errors.append("trace is empty")
    return errors


def validate_trace_file(path: Union[str, Path]) -> int:
    """Validate a trace file; returns the record count, raises on violations."""
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise DataError(f"cannot read trace file {path}: {exc}")
    errors = validate_trace_lines(lines)
    if errors:
        preview = "; ".join(errors[:5])
        raise DataError(
            f"{path} violates the trace schema ({len(errors)} problems): "
            f"{preview}"
        )
    return sum(1 for line in lines if line.strip())
