"""Bridge between the tracer and stdlib :mod:`logging`.

The library itself never configures logging (library best practice);
:func:`configure_logging` is the opt-in used by the CLI's
``--log-level`` flag and by applications that want human-readable
phase/event lines instead of (or in addition to) the JSONL trace.
Everything hangs off the ``"repro"`` logger namespace, so host
applications can also route it through their own handlers.
"""

from __future__ import annotations

import logging
from typing import Optional, TextIO, Union

from ..exceptions import ParameterError

__all__ = ["LOGGER_NAME", "get_logger", "configure_logging"]

#: Root of the library's logger namespace.
LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str = "") -> logging.Logger:
    """The library logger, or a child of it (``get_logger("trace")``)."""
    return logging.getLogger(f"{LOGGER_NAME}.{name}" if name else LOGGER_NAME)


def _resolve_level(level: Union[int, str]) -> int:
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ParameterError(f"unknown log level {level!r}")
    return resolved


def configure_logging(level: Union[int, str] = "INFO", *,
                      stream: Optional[TextIO] = None,
                      force: bool = False) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger and set its level.

    Idempotent: an already-configured logger just gets its level updated
    unless ``force`` replaces the handlers.  Returns the root library
    logger so callers can hand it to :class:`~repro.obs.tracer.Tracer`.
    """
    logger = get_logger()
    resolved = _resolve_level(level)
    if force:
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    logger.setLevel(resolved)
    return logger
