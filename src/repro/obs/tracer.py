"""Structured tracing: typed span/event records with monotonic timings.

The :class:`Tracer` buffers records in-process (no I/O on the hot path)
and serialises them to JSONL on demand.  Three record types:

* **span** — a named interval (``start_s``/``end_s`` on the monotonic
  clock) with an id, a parent id (spans nest via a stack), a ``kind``
  (``"phase"`` for algorithm phases, ``"span"`` otherwise), and free-form
  JSON-safe attributes.
* **event** — a named instant (iteration tick, medoid swap, restart
  retry, degradation) anchored to the enclosing span, if any.
* **counters** — the final totals of the tracer's
  :class:`~repro.obs.counters.Counters` registry.

Tracing is **off by default**: the module-level "current tracer" starts
as a :class:`NullTracer` singleton whose methods are no-ops, so
instrumented code paths cost one attribute lookup and an empty method
call.  Install a real tracer for a block with :func:`use_tracer`, or let
:func:`maybe_trace` create one when a ``profile=True`` flag asks for it.

The current tracer is process-global (not thread-local): worker
*processes* start with their own ``NullTracer`` and opt in explicitly,
while threads within one process share the installed tracer.  Record
appends are plain list appends (atomic under the GIL); interleaved spans
from concurrent threads are legal but their parent links follow the
shared stack, so keep span entry/exit on one thread.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Union

from .clock import monotonic_s
from .counters import Counters

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    import logging

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SpanRecord",
    "EventRecord",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "maybe_trace",
]

#: Version stamp written into every trace header and profile report.
TRACE_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce ``value`` to something ``json.dumps`` accepts losslessly."""
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy arrays and scalars
        try:
            return tolist()
        except Exception:
            return str(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def _jsonable_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {key: _jsonable(value) for key, value in attrs.items()}


@dataclass
class SpanRecord:
    """One closed interval on the monotonic clock."""

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    start_s: float
    end_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "dur_s": self.duration_s,
            "attrs": self.attrs,
        }


@dataclass
class EventRecord:
    """One named instant, anchored to the span that was open at the time."""

    span_id: Optional[int]
    name: str
    t_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "event",
            "span": self.span_id,
            "name": self.name,
            "t_s": self.t_s,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Reusable no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer installed by default.

    Every method is a cheap no-op so instrumentation can call the
    current tracer unconditionally.  :class:`Tracer` subclasses this,
    which also gives call sites a single static type to hold.
    """

    enabled: bool = False

    def span(self, name: str, kind: str = "span", **attrs: Any) -> Any:
        return _NULL_SPAN

    def phase(self, name: str, **attrs: Any) -> Any:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def count(self, name: str, value: Union[int, float] = 1) -> None:
        return None

    def profile(self) -> Optional[Dict[str, Any]]:
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


class _Span:
    """Context manager recording one span on a live :class:`Tracer`."""

    __slots__ = ("_tracer", "_name", "_kind", "_attrs", "_span_id",
                 "_parent_id", "_start_s")

    def __init__(self, tracer: "Tracer", name: str, kind: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._kind = kind
        self._attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Merge extra attributes into the span (e.g. outcomes known at exit)."""
        self._attrs.update(_jsonable_attrs(attrs))

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._span_id = tracer._next_span_id()
        self._parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self._span_id)
        self._start_s = tracer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        end_s = tracer._clock()
        if tracer._stack and tracer._stack[-1] == self._span_id:
            tracer._stack.pop()
        tracer._record_span(SpanRecord(
            span_id=self._span_id,
            parent_id=self._parent_id,
            name=self._name,
            kind=self._kind,
            start_s=self._start_s,
            end_s=end_s,
            attrs=self._attrs,
        ))
        return False


class Tracer(NullTracer):
    """In-process buffer of span/event records plus a counter registry.

    Parameters
    ----------
    logger:
        Optional stdlib logger to mirror records to as they close:
        phases at ``INFO``, other spans and events at ``DEBUG``.
    max_records:
        Safety cap on buffered spans+events; once reached, further
        records are dropped (and counted in ``profile()["dropped"]``)
        rather than growing without bound.
    """

    enabled = True

    def __init__(self, logger: Optional["logging.Logger"] = None,
                 max_records: int = 200_000) -> None:
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self.counters = Counters()
        self._stack: List[int] = []
        self._ids = 0
        self._clock = monotonic_s
        self._log = logger
        self._max_records = max_records
        self._dropped = 0

    # -- recording -----------------------------------------------------

    def span(self, name: str, kind: str = "span", **attrs: Any) -> _Span:
        """Context manager: record ``name`` as a span around the block."""
        return _Span(self, name, kind, _jsonable_attrs(attrs))

    def phase(self, name: str, **attrs: Any) -> _Span:
        """An algorithm-phase span; aggregated into ``phase_seconds``."""
        return self.span(name, kind="phase", **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event under the currently open span."""
        record = EventRecord(
            span_id=self._stack[-1] if self._stack else None,
            name=name,
            t_s=self._clock(),
            attrs=_jsonable_attrs(attrs),
        )
        if len(self.spans) + len(self.events) >= self._max_records:
            self._dropped += 1
            return
        self.events.append(record)
        if self._log is not None:
            self._log.debug("event %s %r", name, record.attrs)

    def count(self, name: str, value: Union[int, float] = 1) -> None:
        """Bump counter ``name`` by ``value``."""
        self.counters.add(name, value)

    def _next_span_id(self) -> int:
        self._ids += 1
        return self._ids

    def _record_span(self, record: SpanRecord) -> None:
        if len(self.spans) + len(self.events) >= self._max_records:
            self._dropped += 1
            return
        self.spans.append(record)
        if self._log is not None:
            if record.kind == "phase":
                self._log.info("phase %-16s %.6fs", record.name,
                               record.duration_s)
            else:
                self._log.debug("span %s %.6fs %r", record.name,
                                record.duration_s, record.attrs)

    # -- reporting -----------------------------------------------------

    def phase_seconds(self) -> Dict[str, float]:
        """Total seconds per phase name, summed over ``kind="phase"`` spans."""
        out: Dict[str, float] = {}
        for record in self.spans:
            if record.kind == "phase":
                out[record.name] = out.get(record.name, 0.0) + record.duration_s
        return out

    def profile(self) -> Dict[str, Any]:
        """The JSON-safe profile report attached to ``result.profile``."""
        report: Dict[str, Any] = {
            "schema": TRACE_SCHEMA_VERSION,
            "phase_seconds": self.phase_seconds(),
            "counters": self.counters.as_dict(),
            "n_spans": len(self.spans),
            "n_events": len(self.events),
            "spans": [record.as_dict() for record in self.spans],
            "events": [record.as_dict() for record in self.events],
        }
        if self._dropped:
            report["dropped"] = self._dropped
        return report

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """All records as JSON-safe dicts: header, spans, events, counters."""
        yield {"type": "meta", "schema": TRACE_SCHEMA_VERSION,
               "clock": "monotonic", "origin": "repro.obs"}
        for span in self.spans:
            yield span.as_dict()
        for event in self.events:
            yield event.as_dict()
        yield {"type": "counters", "values": self.counters.as_dict()}

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Serialise the buffered records to ``path`` as JSON Lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self.iter_records():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path

    def clear(self) -> None:
        """Drop all buffered records and counters."""
        self.spans.clear()
        self.events.clear()
        self.counters.clear()
        self._stack.clear()
        self._dropped = 0

    def __repr__(self) -> str:
        return (f"Tracer(spans={len(self.spans)}, events={len(self.events)}, "
                f"counters={len(self.counters)})")


#: The process-wide current tracer; a no-op until someone installs one.
_NULL_TRACER = NullTracer()
_current_tracer: NullTracer = _NULL_TRACER


def get_tracer() -> NullTracer:
    """The currently installed tracer (a :class:`NullTracer` by default)."""
    return _current_tracer


def set_tracer(tracer: Optional[NullTracer]) -> NullTracer:
    """Install ``tracer`` (``None`` restores the null tracer); returns the previous one."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer if tracer is not None else _NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: NullTracer) -> Iterator[NullTracer]:
    """Install ``tracer`` for the duration of the block, then restore."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def maybe_trace(profile: bool) -> Iterator[NullTracer]:
    """The active tracer, creating one if ``profile`` asks and none is installed.

    With ``profile=False`` this simply yields whatever is currently
    installed (so an ambient :func:`use_tracer` still wins); with
    ``profile=True`` and only the null tracer installed, a fresh
    :class:`Tracer` is installed for the block and restored afterwards.
    """
    current = get_tracer()
    if profile and not current.enabled:
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            yield tracer
        finally:
            set_tracer(previous)
    else:
        yield current
