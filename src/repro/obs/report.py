"""Human-readable rendering of a ``result.profile`` report.

The profile dict itself is JSON-safe and machine-oriented;
:func:`format_profile` turns it into the aligned text block the CLI
prints under ``--profile``: per-phase wall seconds, counter totals, and
the span tree (indented by parent links, slowest first among siblings).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["format_profile"]

_MAX_TREE_SPANS = 40


def _format_tree(spans: List[Dict[str, Any]], lines: List[str]) -> None:
    by_parent: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent"), []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: (-float(s.get("dur_s", 0.0)),
                                     int(s.get("id", 0))))
    emitted = 0

    def walk(parent: Optional[int], depth: int) -> None:
        nonlocal emitted
        for span in by_parent.get(parent, []):
            if emitted >= _MAX_TREE_SPANS:
                return
            marker = "*" if span.get("kind") == "phase" else " "
            lines.append(
                f"  {marker}{'  ' * depth}{span.get('name', '?'):<24} "
                f"{float(span.get('dur_s', 0.0)):>10.6f}s"
            )
            emitted += 1
            walk(span.get("id"), depth + 1)

    walk(None, 0)
    if len(spans) > emitted:
        lines.append(f"   ... {len(spans) - emitted} more spans omitted")


def format_profile(profile: Optional[Dict[str, Any]]) -> str:
    """Multi-line text report for a ``result.profile`` dict."""
    if not profile:
        return "profile: none recorded (run with profile=True / --profile)"
    lines: List[str] = ["profile"]
    phase_seconds = profile.get("phase_seconds") or {}
    if phase_seconds:
        lines.append(" phase seconds")
        total = 0.0
        for name, seconds in sorted(phase_seconds.items(),
                                    key=lambda kv: -float(kv[1])):
            lines.append(f"   {name:<24} {float(seconds):>10.6f}s")
            total += float(seconds)
        lines.append(f"   {'(sum)':<24} {total:>10.6f}s")
    counters = profile.get("counters") or {}
    if counters:
        lines.append(" counters")
        for name, value in sorted(counters.items()):
            lines.append(f"   {name:<36} {value:>14,}")
    spans = profile.get("spans") or []
    if spans:
        lines.append(f" span tree ({len(spans)} spans, "
                     f"{profile.get('n_events', 0)} events)")
        _format_tree(spans, lines)
    if profile.get("dropped"):
        lines.append(f" dropped records: {profile['dropped']}")
    if "winner" in profile:
        lines.append(" winner restart (worker-side profile)")
        for line in format_profile(profile["winner"]).splitlines()[1:]:
            lines.append("  " + line)
    return "\n".join(lines)
