"""The sanctioned monotonic-clock seam for the numeric core.

RPR002 forbids raw clock reads (``time.perf_counter``, ``time.monotonic``,
wall-clock calls) inside the determinism-scoped directories: a stray
timestamp feeding a result value silently breaks serial/parallel and
cached/uncached bit-identity, and scattering clock calls makes that
impossible to audit.  All duration measurement in ``core``/``perf``/
``distance`` therefore goes through this one function, which the lint
rule recognises as the single legal source of monotonic time.

The seam is intentionally trivial — the value is that there is exactly
one of it.  Timings taken here feed *diagnostics only* (``phase_seconds``,
tracer spans, deadline bookkeeping), never cluster assignments.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_s"]


def monotonic_s() -> float:
    """Seconds on a monotonic high-resolution clock.

    The reference point is arbitrary (process start, roughly); only
    differences between two reads are meaningful.
    """
    return time.perf_counter()
