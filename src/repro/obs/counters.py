"""Named monotonically-increasing counters for the hot paths.

A :class:`Counters` registry is a flat ``name -> number`` map with an
``add`` that tolerates numpy scalars.  The instrumented call sites
(distance kernels, the iterative cache, the hill climb, refinement)
bump counters through the active tracer; with the default
:class:`~repro.obs.tracer.NullTracer` installed the bump is a no-op
method call, so un-traced runs pay essentially nothing.

Counter updates are plain dict writes: under thread pools concurrent
bumps may lose increments (they never corrupt the dict).  The shipped
instrumentation only counts outside thread-dispatched inner loops, so
in practice the totals are exact; treat them as diagnostics either way.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple, Union

__all__ = ["Counters", "Number"]

Number = Union[int, float]


class Counters:
    """A registry of named additive counters."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, Number] = {}

    def add(self, name: str, value: Number = 1) -> None:
        """Increment ``name`` by ``value`` (numpy scalars are unwrapped)."""
        item = getattr(value, "item", None)
        if callable(item):
            value = item()
        self._values[name] = self._values.get(name, 0) + value

    def get(self, name: str, default: Number = 0) -> Number:
        """Current value of ``name`` (``default`` if never bumped)."""
        return self._values.get(name, default)

    def merge(self, other: Mapping[str, Number]) -> None:
        """Add every counter of ``other`` into this registry."""
        for name, value in other.items():
            self.add(name, value)

    def as_dict(self) -> Dict[str, Number]:
        """Sorted snapshot, safe to serialise as JSON."""
        return {name: self._values[name] for name in sorted(self._values)}

    def clear(self) -> None:
        self._values.clear()

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[str, Number]]:
        return iter(sorted(self._values.items()))

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"
