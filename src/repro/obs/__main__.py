"""Trace-file validation entry point: ``python -m repro.obs trace.jsonl``.

Exit code 0 when every record matches the schema, 1 otherwise — the CI
trace-smoke job runs this against the JSONL produced by
``proclus run --trace-file``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..exceptions import DataError
from .schema import validate_trace_file


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate a JSONL trace written by repro.obs.Tracer.",
    )
    parser.add_argument("trace", nargs="+", help="trace file(s) to validate")
    args = parser.parse_args(argv)
    status = 0
    for path in args.trace:
        try:
            n_records = validate_trace_file(path)
        except DataError as exc:
            print(f"FAIL {exc}", file=sys.stderr)
            status = 1
        else:
            print(f"ok {path}: {n_records} records")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
