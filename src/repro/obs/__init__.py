"""Zero-dependency structured observability: tracing, counters, profiling.

The package answers "where does the time go?" for a PROCLUS fit without
perturbing it.  Pieces:

* :class:`~repro.obs.tracer.Tracer` — buffered span/event records with
  monotonic timings, serialisable to JSONL; off by default via a no-op
  :class:`~repro.obs.tracer.NullTracer` singleton.
* :class:`~repro.obs.counters.Counters` — named hot-path counters
  (kernel rows, cache hits, medoid swaps, outliers).
* :mod:`~repro.obs.clock` — the one sanctioned monotonic-clock seam the
  lint rule (RPR002) allows inside the numeric core.
* :mod:`~repro.obs.logbridge` — opt-in stdlib-``logging`` bridge.
* :mod:`~repro.obs.schema` — JSONL trace validation
  (``python -m repro.obs <trace.jsonl>``).

Typical use::

    from repro import proclus
    result = proclus(X, k=5, l=3, seed=0, profile=True)
    print(result.profile["phase_seconds"])

or explicitly, to keep the raw records::

    from repro.obs import Tracer, use_tracer
    tracer = Tracer()
    with use_tracer(tracer):
        result = proclus(X, k=5, l=3, seed=0, profile=True)
    tracer.write_jsonl("trace.jsonl")
"""

from .clock import monotonic_s
from .counters import Counters
from .logbridge import LOGGER_NAME, configure_logging, get_logger
from .report import format_profile
from .schema import validate_trace_file, validate_trace_lines
from .tracer import (
    TRACE_SCHEMA_VERSION,
    EventRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    maybe_trace,
    set_tracer,
    use_tracer,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Counters",
    "EventRecord",
    "LOGGER_NAME",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "configure_logging",
    "format_profile",
    "get_logger",
    "get_tracer",
    "maybe_trace",
    "monotonic_s",
    "set_tracer",
    "use_tracer",
    "validate_trace_file",
    "validate_trace_lines",
]
