"""DBSCAN (Ester, Kriegel, Sander, Xu; KDD 1996).

The paper's related-work section ([9], [24]) contrasts PROCLUS with the
density-based family; this full-dimensional DBSCAN completes the
baseline suite.  On the paper's workloads it illustrates the same
failure mode as every full-dimensional method: in 20 dimensions the
uniform "noise" coordinates dominate distances, so no epsilon
simultaneously separates clusters and connects their members.

The implementation is the textbook algorithm with a vectorised
region query (O(N) per query, O(N^2) total — fine for the baseline
comparisons; no spatial index is warranted at these scales).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..data.dataset import OUTLIER_LABEL
from ..distance.base import Metric, get_metric
from ..exceptions import ParameterError
from ..validation import check_array, check_positive_int

__all__ = ["DBSCANResult", "DBSCAN", "dbscan"]


@dataclass
class DBSCANResult:
    """A fitted DBSCAN clustering (label -1 = noise)."""

    labels: np.ndarray
    n_clusters: int
    core_mask: np.ndarray
    seconds: float = 0.0

    @property
    def n_noise(self) -> int:
        """Number of noise points."""
        return int(np.count_nonzero(self.labels == OUTLIER_LABEL))

    def cluster_sizes(self) -> dict:
        """Mapping cluster id -> member count."""
        return {i: int(np.count_nonzero(self.labels == i))
                for i in range(self.n_clusters)}


def dbscan(X, eps: float, min_pts: int = 5, *,
           metric: Union[str, Metric] = "euclidean") -> DBSCANResult:
    """Run DBSCAN with radius ``eps`` and core threshold ``min_pts``.

    A point is *core* when at least ``min_pts`` points (itself included)
    lie within ``eps``.  Clusters are the connected components of core
    points under eps-reachability; border points join the first core
    cluster that reaches them; the rest is noise (label ``-1``).
    """
    X = check_array(X, name="X")
    if eps <= 0:
        raise ParameterError(f"eps must be > 0; got {eps}")
    min_pts = check_positive_int(min_pts, name="min_pts", minimum=1)
    metric = get_metric(metric)
    t0 = time.perf_counter()

    n = X.shape[0]
    labels = np.full(n, OUTLIER_LABEL, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    core_mask = np.zeros(n, dtype=bool)

    def region(idx: int) -> np.ndarray:
        return np.flatnonzero(metric.pairwise_to_point(X, X[idx]) <= eps)

    cluster_id = -1
    for i in range(n):
        if visited[i]:
            continue
        visited[i] = True
        neighbours = region(i)
        if neighbours.size < min_pts:
            continue  # stays noise unless later reached as border
        cluster_id += 1
        core_mask[i] = True
        labels[i] = cluster_id
        # expand the cluster breadth-first over core points
        queue = [int(j) for j in neighbours if j != i]
        qpos = 0
        while qpos < len(queue):
            j = queue[qpos]
            qpos += 1
            if labels[j] == OUTLIER_LABEL:
                labels[j] = cluster_id  # border or core, joins cluster
            if visited[j]:
                continue
            visited[j] = True
            j_neighbours = region(j)
            if j_neighbours.size >= min_pts:
                core_mask[j] = True
                queue.extend(
                    int(m) for m in j_neighbours
                    if not visited[m] or labels[m] == OUTLIER_LABEL
                )

    return DBSCANResult(
        labels=labels,
        n_clusters=cluster_id + 1,
        core_mask=core_mask,
        seconds=time.perf_counter() - t0,
    )


class DBSCAN:
    """Estimator wrapper around :func:`dbscan`."""

    def __init__(self, eps: float, min_pts: int = 5, *,
                 metric: Union[str, Metric] = "euclidean"):
        self.eps = eps
        self.min_pts = min_pts
        self.metric = metric
        self.result_: Optional[DBSCANResult] = None

    def fit(self, X) -> "DBSCAN":
        """Run DBSCAN; returns self with ``result_`` populated."""
        self.result_ = dbscan(X, self.eps, self.min_pts, metric=self.metric)
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Run DBSCAN and return labels (-1 = noise)."""
        return self.fit(X).result_.labels
