"""Full-dimensional K-medoids: PAM and CLARANS (Ng & Han, VLDB 1994).

PROCLUS borrows CLARANS's local-search structure — these substrates are
both the historical baseline and a didactic reference for the iterative
phase.  Both return a :class:`KMedoidsResult` with medoids and labels.

* **PAM** (Kaufman & Rousseeuw): BUILD picks medoids greedily to
  minimise total distance; SWAP tries every (medoid, non-medoid)
  exchange until none improves.  Exact but ``O(k (N-k)^2)`` per pass —
  use on small data.
* **CLARANS**: searches the same graph (vertices = medoid sets, edges =
  single swaps) by sampling ``max_neighbors`` random swaps per step and
  restarting ``num_local`` times, keeping the best local minimum.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..distance.base import Metric, get_metric
from ..distance.matrix import cross_distances
from ..rng import SeedLike, ensure_rng
from ..validation import check_array, check_positive_int

__all__ = ["KMedoidsResult", "PAM", "CLARANS", "pam", "clarans"]


@dataclass
class KMedoidsResult:
    """A fitted full-dimensional k-medoids clustering."""

    labels: np.ndarray
    medoid_indices: np.ndarray
    medoids: np.ndarray
    cost: float
    n_swaps: int = 0
    seconds: float = 0.0
    history: List[float] = field(default_factory=list)

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.medoid_indices.size)

    def cluster_sizes(self) -> dict:
        """Mapping cluster id -> member count."""
        return {i: int(np.count_nonzero(self.labels == i)) for i in range(self.k)}


def _total_cost(dist_to_medoids: np.ndarray) -> tuple:
    """(labels, cost) given an (N, k) distance matrix."""
    labels = np.argmin(dist_to_medoids, axis=1).astype(np.int64)
    cost = float(dist_to_medoids[np.arange(labels.size), labels].sum())
    return labels, cost


def pam(X, k: int, *, metric: Union[str, Metric] = "manhattan",
        max_swaps: int = 200, seed: SeedLike = None) -> KMedoidsResult:
    """PAM: BUILD + SWAP.  Exact local search; quadratic — keep N small.

    ``seed`` only breaks ties in BUILD's first pick when several points
    minimise the initial cost (we take the argmin, so runs are in fact
    deterministic; the parameter is accepted for interface uniformity).
    """
    X = check_array(X, name="X")
    n = X.shape[0]
    k = check_positive_int(k, name="k", minimum=1, maximum=n)
    metric = get_metric(metric)
    t0 = time.perf_counter()

    # BUILD: first medoid minimises total distance; each next pick
    # maximally reduces the current cost.
    full = cross_distances(X, X, metric)  # (n, n)
    first = int(np.argmin(full.sum(axis=0)))
    medoids = [first]
    nearest = full[:, first].copy()
    while len(medoids) < k:
        # gain of adding candidate c: sum over points of max(0, nearest - d(x, c))
        gains = np.maximum(nearest[:, None] - full, 0.0).sum(axis=0)
        gains[medoids] = -np.inf
        best = int(np.argmax(gains))
        medoids.append(best)
        np.minimum(nearest, full[:, best], out=nearest)

    medoid_arr = np.asarray(medoids, dtype=np.intp)
    labels, cost = _total_cost(full[:, medoid_arr])
    history = [cost]

    # SWAP: steepest-descent over all (medoid, non-medoid) exchanges.
    n_swaps = 0
    improved = True
    while improved and n_swaps < max_swaps:
        improved = False
        best_delta = -1e-12
        best_pair = None
        non_medoids = np.setdiff1d(np.arange(n), medoid_arr)
        for mi_pos in range(k):
            trial = medoid_arr.copy()
            others = np.delete(medoid_arr, mi_pos)
            # distance to closest *other* medoid, for all points
            d_others = full[:, others].min(axis=1) if others.size else np.full(n, np.inf)
            for cand in non_medoids:
                new_nearest = np.minimum(d_others, full[:, cand])
                delta = cost - new_nearest.sum()
                if delta > best_delta:
                    best_delta = delta
                    best_pair = (mi_pos, cand)
        if best_pair is not None:
            mi_pos, cand = best_pair
            medoid_arr[mi_pos] = cand
            labels, cost = _total_cost(full[:, medoid_arr])
            history.append(cost)
            n_swaps += 1
            improved = True

    return KMedoidsResult(
        labels=labels, medoid_indices=medoid_arr, medoids=X[medoid_arr],
        cost=cost, n_swaps=n_swaps, seconds=time.perf_counter() - t0,
        history=history,
    )


def clarans(X, k: int, *, metric: Union[str, Metric] = "manhattan",
            num_local: int = 2, max_neighbors: Optional[int] = None,
            seed: SeedLike = None) -> KMedoidsResult:
    """CLARANS: randomised search over the medoid-set graph.

    Parameters follow Ng & Han: ``num_local`` restarts; per step,
    ``max_neighbors`` random single-swap neighbours are examined (their
    suggested default ``max(250, 1.25% of k(N-k))`` is used when
    ``None``); the first improving neighbour is taken.
    """
    X = check_array(X, name="X")
    n = X.shape[0]
    k = check_positive_int(k, name="k", minimum=1, maximum=n)
    check_positive_int(num_local, name="num_local", minimum=1)
    metric = get_metric(metric)
    rng = ensure_rng(seed)
    t0 = time.perf_counter()

    if max_neighbors is None:
        max_neighbors = max(250, int(0.0125 * k * (n - k)))

    best_cost = np.inf
    best_medoids = None
    history: List[float] = []
    total_swaps = 0

    for _ in range(num_local):
        current = rng.choice(n, size=k, replace=False)
        dist = cross_distances(X, X[current], metric)
        labels, cost = _total_cost(dist)
        tries = 0
        while tries < max_neighbors:
            pos = int(rng.integers(k))
            cand = int(rng.integers(n))
            if cand in current:
                tries += 1
                continue
            trial = current.copy()
            trial[pos] = cand
            new_col = metric.pairwise_to_point(X, X[cand])
            trial_dist = dist.copy()
            trial_dist[:, pos] = new_col
            _, new_cost = _total_cost(trial_dist)
            if new_cost < cost:
                current, dist, cost = trial, trial_dist, new_cost
                total_swaps += 1
                tries = 0
            else:
                tries += 1
        history.append(cost)
        if cost < best_cost:
            best_cost = cost
            best_medoids = current

    medoid_arr = np.asarray(best_medoids, dtype=np.intp)
    dist = cross_distances(X, X[medoid_arr], metric)
    labels, cost = _total_cost(dist)
    return KMedoidsResult(
        labels=labels, medoid_indices=medoid_arr, medoids=X[medoid_arr],
        cost=cost, n_swaps=total_swaps, seconds=time.perf_counter() - t0,
        history=history,
    )


class PAM:
    """Estimator wrapper around :func:`pam`."""

    def __init__(self, k: int, *, metric: Union[str, Metric] = "manhattan",
                 max_swaps: int = 200, seed: SeedLike = None):
        self.k = k
        self.metric = metric
        self.max_swaps = max_swaps
        self.seed = seed
        self.result_: Optional[KMedoidsResult] = None

    def fit(self, X) -> "PAM":
        """Run PAM; returns self with ``result_`` populated."""
        self.result_ = pam(X, self.k, metric=self.metric,
                           max_swaps=self.max_swaps, seed=self.seed)
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Run PAM and return labels."""
        return self.fit(X).result_.labels


class CLARANS:
    """Estimator wrapper around :func:`clarans`."""

    def __init__(self, k: int, *, metric: Union[str, Metric] = "manhattan",
                 num_local: int = 2, max_neighbors: Optional[int] = None,
                 seed: SeedLike = None):
        self.k = k
        self.metric = metric
        self.num_local = num_local
        self.max_neighbors = max_neighbors
        self.seed = seed
        self.result_: Optional[KMedoidsResult] = None

    def fit(self, X) -> "CLARANS":
        """Run CLARANS; returns self with ``result_`` populated."""
        self.result_ = clarans(
            X, self.k, metric=self.metric, num_local=self.num_local,
            max_neighbors=self.max_neighbors, seed=self.seed,
        )
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Run CLARANS and return labels."""
        return self.fit(X).result_.labels
