"""The CLIQUE grid: ``xi`` equal-width intervals per dimension.

The grid is fitted to the data's per-dimension range (the paper's data
lives in ``[0, 100]^d``; fitting to the observed range keeps the
implementation usable on arbitrary data).  The only operation the rest
of the algorithm needs is mapping points to integer cell coordinates.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...exceptions import ParameterError
from ...validation import check_array, check_positive_int

__all__ = ["Grid"]


class Grid:
    """Uniform grid over the bounding box of a dataset.

    Parameters
    ----------
    xi:
        Number of intervals per dimension (the paper uses ``xi = 10``).
    bounds:
        Optional ``(lows, highs)`` arrays fixing the box; fitted from the
        data when omitted.  Points on the upper boundary fall into the
        last interval (closed top interval), matching the usual
        histogram convention.
    """

    def __init__(self, xi: int = 10,
                 bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None):
        self.xi = check_positive_int(xi, name="xi", minimum=1)
        self._lows: Optional[np.ndarray] = None
        self._highs: Optional[np.ndarray] = None
        if bounds is not None:
            lows, highs = bounds
            self._set_bounds(np.asarray(lows, dtype=np.float64),
                             np.asarray(highs, dtype=np.float64))

    def _set_bounds(self, lows: np.ndarray, highs: np.ndarray) -> None:
        if lows.shape != highs.shape or lows.ndim != 1:
            raise ParameterError("bounds must be two 1-D arrays of equal length")
        if np.any(highs < lows):
            raise ParameterError("bounds must satisfy highs >= lows")
        self._lows = lows
        self._highs = highs

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """True once bounds are known."""
        return self._lows is not None

    @property
    def n_dims(self) -> int:
        """Dimensionality of the fitted grid."""
        if self._lows is None:
            raise ParameterError("grid is not fitted")
        return int(self._lows.shape[0])

    @property
    def interval_widths(self) -> np.ndarray:
        """Per-dimension interval widths (0 for constant dimensions)."""
        if self._lows is None:
            raise ParameterError("grid is not fitted")
        return (self._highs - self._lows) / self.xi

    def interval_bounds(self, dim: int, interval: int) -> Tuple[float, float]:
        """Real-valued ``[low, high)`` of one interval of one dimension."""
        if self._lows is None:
            raise ParameterError("grid is not fitted")
        if not 0 <= interval < self.xi:
            raise ParameterError(f"interval must lie in [0, {self.xi - 1}]")
        width = self.interval_widths[dim]
        low = self._lows[dim] + interval * width
        return float(low), float(low + width)

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "Grid":
        """Fit bounds to ``X``'s per-dimension min/max; returns self."""
        X = check_array(X, name="X")
        self._set_bounds(X.min(axis=0), X.max(axis=0))
        return self

    def cell_indices(self, X: np.ndarray) -> np.ndarray:
        """Integer cell coordinates ``(N, d)``, each in ``[0, xi-1]``.

        Points outside the fitted box are clamped into the boundary
        cells (relevant when transforming held-out data).
        """
        if self._lows is None:
            raise ParameterError("grid is not fitted; call fit(X) first")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_dims:
            raise ParameterError(
                f"X has {X.shape[1]} dims but the grid was fitted on {self.n_dims}"
            )
        span = self._highs - self._lows
        # constant dimensions: every point in interval 0
        safe_span = np.where(span > 0, span, 1.0)
        scaled = (X - self._lows) / safe_span * self.xi
        cells = np.floor(scaled).astype(np.int64)
        np.clip(cells, 0, self.xi - 1, out=cells)
        cells[:, span == 0] = 0
        return cells

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its cell coordinates."""
        return self.fit(X).cell_indices(X)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fitted = f", d={self.n_dims}" if self.is_fitted else ""
        return f"Grid(xi={self.xi}{fitted})"
