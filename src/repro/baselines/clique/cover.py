"""Greedy rectangle cover: CLIQUE's minimal cluster descriptions.

The original paper reports each cluster as a DNF expression over
axis-parallel rectangles.  It computes a (non-minimal) cover by *greedy
growth* — start from an uncovered unit and grow a maximal rectangle of
dense units around it, repeat — then discards rectangles whose units are
all covered by others.  We implement both steps; the experiment harness
uses the rectangle count as a compactness diagnostic, and the PROCLUS
paper's observation that axis-parallel regions offer low coverage of
Gaussian clusters emerges directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ...exceptions import ParameterError
from .units import Unit

__all__ = ["Rectangle", "greedy_cover"]


@dataclass(frozen=True)
class Rectangle:
    """An axis-parallel hyper-rectangle of grid units in one subspace.

    ``ranges[p] = (lo, hi)`` bounds (inclusive) the interval ids along
    dimension ``dims[p]``.
    """

    dims: Tuple[int, ...]
    ranges: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.ranges):
            raise ParameterError("dims and ranges must align")
        for lo, hi in self.ranges:
            if lo > hi:
                raise ParameterError(f"invalid range ({lo}, {hi})")

    @property
    def n_units(self) -> int:
        """Number of grid units inside the rectangle."""
        n = 1
        for lo, hi in self.ranges:
            n *= hi - lo + 1
        return n

    def contains(self, unit: Unit) -> bool:
        """True if ``unit`` (same subspace) lies inside the rectangle."""
        if unit.dims != self.dims:
            return False
        return all(lo <= v <= hi
                   for (lo, hi), v in zip(self.ranges, unit.intervals))

    def units(self) -> Iterable[Unit]:
        """Enumerate the member units (row-major over the ranges)."""
        def rec(pos: int, prefix: Tuple[int, ...]):
            if pos == len(self.ranges):
                yield Unit(dims=self.dims, intervals=prefix)
                return
            lo, hi = self.ranges[pos]
            for v in range(lo, hi + 1):
                yield from rec(pos + 1, prefix + (v,))
        return rec(0, ())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"x{d}∈[{lo}..{hi}]" for d, (lo, hi) in zip(self.dims, self.ranges)
        )
        return f"Rectangle({parts})"


def _grow(seed: Unit, members: Set[Unit]) -> Rectangle:
    """Greedily grow a maximal rectangle of ``members`` around ``seed``.

    Dimensions are extended one at a time (in subspace order), first
    left then right, only while *every* unit of the enlarged slab is a
    member — the original paper's growth procedure.
    """
    dims = seed.dims
    ranges = [[v, v] for v in seed.intervals]

    def slab_inside(pos: int, value: int) -> bool:
        # all combinations with intervals[pos] == value and the other
        # coordinates spanning the current ranges must be members
        def rec(p: int, prefix: Tuple[int, ...]) -> bool:
            if p == len(dims):
                return Unit(dims=dims, intervals=prefix) in members
            if p == pos:
                return rec(p + 1, prefix + (value,))
            lo, hi = ranges[p]
            return all(rec(p + 1, prefix + (v,)) for v in range(lo, hi + 1))
        return rec(0, ())

    for pos in range(len(dims)):
        while ranges[pos][0] > 0 and slab_inside(pos, ranges[pos][0] - 1):
            ranges[pos][0] -= 1
        while slab_inside(pos, ranges[pos][1] + 1):
            ranges[pos][1] += 1
    return Rectangle(dims=dims, ranges=tuple((lo, hi) for lo, hi in ranges))


def greedy_cover(component: Sequence[Unit]) -> List[Rectangle]:
    """Cover a connected component with maximal rectangles, then minimise.

    Growth starts from each still-uncovered unit; afterwards rectangles
    whose units are all covered by the remaining rectangles are removed
    (smallest first), yielding the paper's minimal description.
    """
    if not component:
        return []
    members: Set[Unit] = set(component)
    subspaces = {u.dims for u in members}
    if len(subspaces) != 1:
        raise ParameterError("greedy_cover expects units of one subspace")

    rectangles: List[Rectangle] = []
    covered: Set[Unit] = set()
    for seed in sorted(members, key=lambda u: u.intervals):
        if seed in covered:
            continue
        rect = _grow(seed, members)
        rectangles.append(rect)
        covered.update(rect.units())

    # removal heuristic: drop redundant rectangles, smallest first
    coverage: Dict[Unit, int] = {}
    rect_units: Dict[Rectangle, List[Unit]] = {}
    for rect in rectangles:
        ulist = list(rect.units())
        rect_units[rect] = ulist
        for u in ulist:
            coverage[u] = coverage.get(u, 0) + 1
    kept: List[Rectangle] = []
    for rect in sorted(rectangles, key=lambda r: r.n_units):
        if all(coverage[u] > 1 for u in rect_units[rect]):
            for u in rect_units[rect]:
                coverage[u] -= 1
        else:
            kept.append(rect)
    kept.sort(key=lambda r: r.ranges)
    return kept
