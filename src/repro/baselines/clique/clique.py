"""CLIQUE driver: grid -> dense units -> (MDL prune) -> components -> cover.

The public surface mirrors :class:`~repro.core.proclus.Proclus`:
construct with parameters, call :meth:`Clique.fit`, read a
:class:`~repro.baselines.clique.result.CliqueResult`.

Two options reproduce specific experiments of the PROCLUS paper:

* ``target_dimensionality`` restricts reported clusters to subspaces of
  exactly that dimensionality — "an option provided by the program" the
  authors used for the Table-5 run (clusters only in 7 dimensions);
* ``prune_subspaces`` enables the original MDL pruning, trading
  accuracy for speed during the bottom-up pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...data.dataset import Dataset
from ...exceptions import NotFittedError, ParameterError
from ...validation import check_array, check_positive_int
from .apriori import find_dense_units
from .connect import connected_components
from .cover import greedy_cover
from .grid import Grid
from .mdl import mdl_prune_subspaces
from .result import CliqueCluster, CliqueResult
from .units import Unit

__all__ = ["Clique", "CliqueConfig"]


@dataclass
class CliqueConfig:
    """Validated CLIQUE parameters.

    ``tau`` is a fraction of N (the PROCLUS paper quotes percentages:
    its ``tau = 0.5`` is ``0.005`` here).
    """

    xi: int = 10
    tau: float = 0.005
    max_dimensionality: Optional[int] = None
    target_dimensionality: Optional[int] = None
    prune_subspaces: bool = False
    compute_cover: bool = False

    def validate(self) -> "CliqueConfig":
        check_positive_int(self.xi, name="xi", minimum=1)
        if not 0 < self.tau < 1:
            raise ParameterError(f"tau must lie in (0, 1); got {self.tau}")
        if self.max_dimensionality is not None:
            check_positive_int(
                self.max_dimensionality, name="max_dimensionality", minimum=1
            )
        if self.target_dimensionality is not None:
            check_positive_int(
                self.target_dimensionality, name="target_dimensionality", minimum=1
            )
            if (self.max_dimensionality is not None
                    and self.target_dimensionality > self.max_dimensionality):
                raise ParameterError(
                    "target_dimensionality cannot exceed max_dimensionality"
                )
        return self


class Clique:
    """The CLIQUE subspace-clustering algorithm.

    Parameters
    ----------
    xi:
        Intervals per dimension (paper experiments: 10).
    tau:
        Density threshold as a fraction of N.
    max_dimensionality:
        Stop the bottom-up pass at this subspace dimensionality; when
        ``target_dimensionality`` is set and this is not, the pass stops
        there automatically (no higher level is needed).
    target_dimensionality:
        Report only clusters living in subspaces of exactly this
        dimensionality.
    prune_subspaces:
        Apply MDL pruning of low-coverage subspaces between levels.
    compute_cover:
        Also compute the greedy minimal rectangle description per
        cluster (off by default; only the region reports need it).
    """

    def __init__(self, xi: int = 10, tau: float = 0.005, *,
                 max_dimensionality: Optional[int] = None,
                 target_dimensionality: Optional[int] = None,
                 prune_subspaces: bool = False,
                 compute_cover: bool = False):
        self.config = CliqueConfig(
            xi=xi, tau=tau,
            max_dimensionality=max_dimensionality,
            target_dimensionality=target_dimensionality,
            prune_subspaces=prune_subspaces,
            compute_cover=compute_cover,
        ).validate()
        self.result_: Optional[CliqueResult] = None
        self.grid_: Optional[Grid] = None

    # ------------------------------------------------------------------
    def fit(self, X) -> "Clique":
        """Run CLIQUE on ``X`` (array or Dataset); returns ``self``."""
        if isinstance(X, Dataset):
            X = X.points
        X = check_array(X, name="X")
        cfg = self.config
        t0 = time.perf_counter()

        grid = Grid(cfg.xi).fit(X)
        cells = grid.cell_indices(X)

        max_dim = cfg.max_dimensionality
        if max_dim is None and cfg.target_dimensionality is not None:
            max_dim = cfg.target_dimensionality

        subspace_coverage: Dict[Tuple[int, ...], int] = {}

        def level_hook(level: int, units: List[Unit],
                       counts: Dict[Unit, int]) -> List[Unit]:
            # coverage of a subspace = points in its dense units; units
            # of one subspace are disjoint cells, so counts just add up
            coverages: Dict[Tuple[int, ...], int] = {}
            for u in units:
                coverages[u.subspace] = coverages.get(u.subspace, 0) + counts[u]
            subspace_coverage.update(coverages)
            if not cfg.prune_subspaces or len(coverages) <= 1:
                return units
            keep = set(mdl_prune_subspaces(coverages))
            return [u for u in units if u.subspace in keep]

        dense = find_dense_units(
            cells, cfg.xi, cfg.tau,
            max_dimensionality=max_dim, level_hook=level_hook,
        )

        units = list(dense)
        if cfg.target_dimensionality is not None:
            units = [u for u in units
                     if u.dimensionality == cfg.target_dimensionality]

        components = connected_components(units, cfg.xi)
        clusters: List[CliqueCluster] = []
        for cid, comp in enumerate(components):
            dims = comp[0].subspace
            members = self._points_in_units(cells, comp, cfg.xi)
            rectangles = greedy_cover(comp) if cfg.compute_cover else []
            clusters.append(CliqueCluster(
                cluster_id=cid, dims=dims, units=comp,
                point_indices=members, rectangles=rectangles,
            ))

        self.grid_ = grid
        self.result_ = CliqueResult(
            clusters=clusters,
            n_points=X.shape[0],
            xi=cfg.xi,
            tau=cfg.tau,
            n_dense_units=len(dense),
            subspace_coverage=subspace_coverage,
            seconds=time.perf_counter() - t0,
        )
        return self

    def fit_result(self, X) -> CliqueResult:
        """Fit and return the :class:`CliqueResult` directly."""
        return self.fit(X).result

    def clusters_containing(self, x) -> List[int]:
        """Ids of fitted clusters whose dense units contain point ``x``.

        Works for unseen points: the fitted grid maps ``x`` to cell
        coordinates (clamped into the box) and each cluster checks
        whether its subspace projection of that cell is one of its
        units.  Several ids (CLIQUE overlaps) or none (the point lies in
        no dense region) are both normal.
        """
        if self.grid_ is None or self.result_ is None:
            raise NotFittedError("call fit() before querying points")
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        cell = self.grid_.cell_indices(x)[0]
        hits: List[int] = []
        for cluster in self.result_.clusters:
            projected = tuple(int(cell[d]) for d in cluster.dims)
            if any(u.intervals == projected for u in cluster.units):
                hits.append(cluster.cluster_id)
        return hits

    @property
    def result(self) -> CliqueResult:
        """The result of the last :meth:`fit`."""
        if self.result_ is None:
            raise NotFittedError("call fit() before accessing results")
        return self.result_

    # ------------------------------------------------------------------
    @staticmethod
    def _points_in_units(cells: np.ndarray, units: List[Unit],
                         xi: int) -> np.ndarray:
        """Indices of points whose subspace cell is one of ``units``.

        All units must share a subspace; the subspace cell of every
        point is integer-encoded once and matched against the units'
        encoded keys with ``np.isin``.
        """
        if not units:
            return np.empty(0, dtype=np.intp)
        dims = units[0].subspace
        keys = np.zeros(cells.shape[0], dtype=np.int64)
        for pos, d in enumerate(dims):
            keys += cells[:, d].astype(np.int64) * (xi ** pos)
        unit_keys = np.array(
            [sum(iv * (xi ** pos) for pos, iv in enumerate(u.intervals))
             for u in units],
            dtype=np.int64,
        )
        return np.flatnonzero(np.isin(keys, unit_keys))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clique(xi={self.config.xi}, tau={self.config.tau:g})"
