"""Units: axis-parallel grid cells in a subspace.

A *unit* is a pair ``(dims, intervals)`` — a sorted tuple of dimension
indices and the aligned tuple of interval ids.  Units are hashable value
objects; the apriori pass, connectivity analysis, and cover all operate
on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ...exceptions import ParameterError

__all__ = ["Unit"]


@dataclass(frozen=True)
class Unit:
    """An axis-parallel cell in the subspace spanned by ``dims``.

    Attributes
    ----------
    dims:
        Strictly increasing dimension indices.
    intervals:
        Interval id along each dimension of ``dims`` (same length).
    """

    dims: Tuple[int, ...]
    intervals: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.intervals):
            raise ParameterError(
                f"dims and intervals must align; got {self.dims} / {self.intervals}"
            )
        if len(self.dims) == 0:
            raise ParameterError("a unit needs at least one dimension")
        if any(a >= b for a, b in zip(self.dims, self.dims[1:])):
            raise ParameterError(f"dims must be strictly increasing; got {self.dims}")

    # ------------------------------------------------------------------
    @property
    def dimensionality(self) -> int:
        """Number of constrained dimensions."""
        return len(self.dims)

    @property
    def subspace(self) -> Tuple[int, ...]:
        """The subspace (= ``dims``) this unit lives in."""
        return self.dims

    def interval_on(self, dim: int) -> int:
        """Interval id along dimension ``dim`` (must be constrained)."""
        try:
            return self.intervals[self.dims.index(dim)]
        except ValueError:
            raise ParameterError(f"dimension {dim} is not constrained by {self}")

    def faces(self) -> Iterator["Unit"]:
        """The (q-1)-dimensional projections obtained by dropping one dim.

        These are the unit's *faces*; apriori pruning requires all of
        them to be dense.  A 1-dimensional unit has no faces.
        """
        if self.dimensionality == 1:
            return
        for drop in range(self.dimensionality):
            yield Unit(
                dims=self.dims[:drop] + self.dims[drop + 1:],
                intervals=self.intervals[:drop] + self.intervals[drop + 1:],
            )

    def is_adjacent(self, other: "Unit") -> bool:
        """True if the two units share a face (common subspace, one
        interval differing by exactly 1)."""
        if self.dims != other.dims:
            return False
        diff = 0
        for a, b in zip(self.intervals, other.intervals):
            step = abs(a - b)
            if step == 0:
                continue
            if step > 1:
                return False
            diff += 1
            if diff > 1:
                return False
        return diff == 1

    def neighbours(self, xi: int) -> Iterator["Unit"]:
        """All potential face-adjacent units inside an ``xi``-wide grid."""
        for pos in range(self.dimensionality):
            for delta in (-1, 1):
                nv = self.intervals[pos] + delta
                if 0 <= nv < xi:
                    yield Unit(
                        dims=self.dims,
                        intervals=self.intervals[:pos] + (nv,) + self.intervals[pos + 1:],
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cells = ", ".join(
            f"x{d}∈[{i}]" for d, i in zip(self.dims, self.intervals)
        )
        return f"Unit({cells})"
