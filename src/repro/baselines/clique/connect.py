"""Clusters as connected components of dense units.

Within one subspace, CLIQUE defines a cluster as a maximal set of dense
units connected through shared faces (intervals differing by one along
a single dimension).  A BFS over the unit set — probing each unit's
``2q`` potential neighbours against a hash set — finds all components in
``O(units * q)``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List

from .apriori import units_by_subspace
from .units import Unit

__all__ = ["connected_components"]


def connected_components(units: Iterable[Unit], xi: int) -> List[List[Unit]]:
    """Group dense units into face-connected components per subspace.

    Returns a list of components (each a list of units); components of
    different subspaces are never merged.  Output order is
    deterministic: subspaces in sorted order, components by their
    lexicographically smallest unit.
    """
    components: List[List[Unit]] = []
    grouped = units_by_subspace(units)
    for dims in sorted(grouped):
        group = grouped[dims]
        unvisited = set(group)
        # deterministic seed order
        for seed in sorted(group, key=lambda u: u.intervals):
            if seed not in unvisited:
                continue
            component: List[Unit] = []
            queue = deque([seed])
            unvisited.discard(seed)
            while queue:
                u = queue.popleft()
                component.append(u)
                for nb in u.neighbours(xi):
                    if nb in unvisited:
                        unvisited.discard(nb)
                        queue.append(nb)
            component.sort(key=lambda u: u.intervals)
            components.append(component)
    return components
