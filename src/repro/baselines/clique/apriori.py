"""Bottom-up dense-unit discovery with apriori candidate generation.

CLIQUE identifies all *dense units* — subspace grid cells holding at
least a ``tau`` fraction of the points — level by level:

* level 1 from per-dimension histograms;
* level ``q`` candidates by joining two dense ``(q-1)``-units that agree
  on their first ``q-2`` (dimension, interval) pairs (the classic
  apriori join over the lexicographic order of dimensions);
* candidates with any non-dense face are pruned (monotonicity: every
  projection of a dense unit is dense);
* surviving candidates are counted in one vectorised pass per subspace
  (points' cell keys are integer-encoded and aggregated with
  ``np.unique``).

Note the PROCLUS paper quotes ``tau`` in percent (``tau = 0.5`` means
0.5% of N); this module takes a fraction in ``[0, 1]``.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ...exceptions import ParameterError
from .units import Unit

__all__ = ["find_dense_units", "units_by_subspace", "count_units",
           "generate_candidates", "density_threshold"]

SubspaceUnits = Dict[Tuple[int, ...], List[Unit]]


def density_threshold(n_points: int, tau: float) -> int:
    """Minimum point count for a unit to be dense (at least 1)."""
    if not 0 < tau < 1:
        raise ParameterError(f"tau must lie in (0, 1); got {tau}")
    return max(1, math.ceil(tau * n_points))


def units_by_subspace(units: Iterable[Unit]) -> SubspaceUnits:
    """Group units by the subspace they live in."""
    grouped: SubspaceUnits = defaultdict(list)
    for u in units:
        grouped[u.subspace].append(u)
    return dict(grouped)


def _encode_keys(cells: np.ndarray, dims: Sequence[int], xi: int) -> np.ndarray:
    """Mixed-radix encoding of each point's cell within a subspace."""
    dims = list(dims)
    keys = np.zeros(cells.shape[0], dtype=np.int64)
    for pos, d in enumerate(dims):
        keys += cells[:, d].astype(np.int64) * (xi ** pos)
    return keys


def _encode_unit(unit: Unit, dims_order: Sequence[int], xi: int) -> int:
    """Encode a unit's intervals with the same radix as :func:`_encode_keys`."""
    key = 0
    for pos, d in enumerate(dims_order):
        key += unit.interval_on(d) * (xi ** pos)
    return key


def count_units(cells: np.ndarray, candidates: Sequence[Unit],
                xi: int) -> Dict[Unit, int]:
    """Support counts for candidate units, one pass per subspace."""
    counts: Dict[Unit, int] = {}
    for dims, group in units_by_subspace(candidates).items():
        keys = _encode_keys(cells, dims, xi)
        uniq, cnt = np.unique(keys, return_counts=True)
        table = dict(zip(uniq.tolist(), cnt.tolist()))
        for u in group:
            counts[u] = table.get(_encode_unit(u, dims, xi), 0)
    return counts


def generate_candidates(prev_dense: Sequence[Unit]) -> List[Unit]:
    """Apriori join + prune: candidate ``q``-units from dense ``(q-1)``-units.

    Two units join when their first ``q-2`` (dimension, interval) pairs
    coincide and the joined dimensions differ; candidates with a
    non-dense face are dropped.
    """
    if not prev_dense:
        return []
    dense_set = set(prev_dense)
    by_prefix: Dict[tuple, List[Tuple[int, int]]] = defaultdict(list)
    for u in prev_dense:
        prefix = (u.dims[:-1], u.intervals[:-1])
        by_prefix[prefix].append((u.dims[-1], u.intervals[-1]))

    candidates: List[Unit] = []
    seen = set()
    for (pdims, pints), tails in by_prefix.items():
        tails.sort()
        for a in range(len(tails)):
            for b in range(a + 1, len(tails)):
                d1, i1 = tails[a]
                d2, i2 = tails[b]
                if d1 == d2:
                    continue  # same dimension, different intervals: no join
                cand = Unit(dims=pdims + (d1, d2), intervals=pints + (i1, i2))
                if cand in seen:
                    continue
                seen.add(cand)
                if all(f in dense_set for f in cand.faces()):
                    candidates.append(cand)
    return candidates


def find_dense_units(cells: np.ndarray, xi: int, tau: float, *,
                     max_dimensionality: Optional[int] = None,
                     level_hook=None) -> Dict[Unit, int]:
    """All dense units of every subspace, with their support counts.

    Parameters
    ----------
    cells:
        Integer cell coordinates ``(N, d)`` from
        :meth:`~repro.baselines.clique.grid.Grid.cell_indices`.
    xi, tau:
        Grid resolution and density threshold (fraction of ``N``).
    max_dimensionality:
        Stop after this subspace dimensionality (``None`` = up to ``d``).
    level_hook:
        Optional callable ``(level, dense_units_at_level, counts)
        -> kept_units`` invoked after each level, where ``counts`` maps
        each of the level's units to its support; used by the driver to
        apply MDL subspace pruning before the next join.  Returning a
        subset restricts what the next level joins on (the pruned units
        stay in the result, as in the original paper's description of
        pruning as a candidate-generation heuristic — callers can drop
        them too).

    Returns
    -------
    dict
        Mapping dense :class:`Unit` -> support count, covering every
        discovered level.
    """
    cells = np.asarray(cells)
    if cells.ndim != 2:
        raise ParameterError("cells must be 2-dimensional (N, d)")
    n, d = cells.shape
    threshold = density_threshold(n, tau)
    limit = d if max_dimensionality is None else min(max_dimensionality, d)

    all_dense: Dict[Unit, int] = {}

    # level 1: histograms
    level_units: List[Unit] = []
    level_counts: Dict[Unit, int] = {}
    for j in range(d):
        counts = np.bincount(cells[:, j], minlength=xi)
        for interval in np.flatnonzero(counts >= threshold):
            u = Unit(dims=(j,), intervals=(int(interval),))
            all_dense[u] = int(counts[interval])
            level_counts[u] = int(counts[interval])
            level_units.append(u)
    if level_hook is not None:
        level_units = list(level_hook(1, level_units, level_counts))

    level = 1
    while level_units and level < limit:
        level += 1
        candidates = generate_candidates(level_units)
        if not candidates:
            break
        counts = count_units(cells, candidates, xi)
        level_units = [u for u, c in counts.items() if c >= threshold]
        level_counts = {u: counts[u] for u in level_units}
        all_dense.update(level_counts)
        if level_hook is not None:
            level_units = list(level_hook(level, level_units, level_counts))
    return all_dense
