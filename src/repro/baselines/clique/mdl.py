"""MDL-based subspace pruning (CLIQUE section 3.1.1 of [1]).

When many subspaces contain dense units, CLIQUE optionally restricts
the search to "interesting" ones.  Subspaces are ranked by *coverage*
(the number of points lying in their dense units) and split into a
selected set ``I`` and a pruned set ``P`` at the cut that minimises the
two-part code length::

    CL(i) = log2(mu_I) + sum_{S in I} log2(|x_S - mu_I| + 1)
          + log2(mu_P) + sum_{S in P} log2(|x_S - mu_P| + 1)

where ``mu`` are the means of each part (the ``+1`` inside the deviation
logs guards zero deviations; the original paper elides this detail).
Pruning trades accuracy for speed exactly as the original authors note —
a dense region spanning a pruned subspace is lost.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...exceptions import ParameterError

__all__ = ["mdl_code_length", "mdl_optimal_cut", "mdl_prune_subspaces"]


def _part_cost(values: np.ndarray) -> float:
    """Code length of one part: mean plus per-item deviations."""
    if values.size == 0:
        return 0.0
    mu = float(np.ceil(values.mean()))
    cost = math.log2(mu) if mu > 0 else 0.0
    cost += float(np.log2(np.abs(values - mu) + 1.0).sum())
    return cost


def mdl_code_length(sorted_coverages: np.ndarray, cut: int) -> float:
    """Code length when the first ``cut`` (highest-coverage) subspaces
    are selected and the rest pruned."""
    values = np.asarray(sorted_coverages, dtype=np.float64)
    if not 1 <= cut <= values.size:
        raise ParameterError(f"cut must lie in [1, {values.size}]; got {cut}")
    return _part_cost(values[:cut]) + _part_cost(values[cut:])


def mdl_optimal_cut(coverages: Sequence[float]) -> int:
    """Number of subspaces to keep (>= 1) for the minimal code length."""
    values = np.sort(np.asarray(coverages, dtype=np.float64))[::-1]
    if values.size == 0:
        raise ParameterError("need at least one subspace")
    costs = [mdl_code_length(values, cut) for cut in range(1, values.size + 1)]
    return int(np.argmin(costs)) + 1


def mdl_prune_subspaces(coverages: Dict[Tuple[int, ...], float]) -> List[Tuple[int, ...]]:
    """Subspaces to *keep*, by MDL over their coverages.

    ``coverages`` maps subspace -> covered point count.  Ties are broken
    deterministically (coverage desc, then subspace lexicographic).
    """
    if not coverages:
        return []
    items = sorted(coverages.items(), key=lambda kv: (-kv[1], kv[0]))
    cut = mdl_optimal_cut([v for _, v in items])
    return [dims for dims, _ in items[:cut]]
