"""Result objects for CLIQUE.

CLIQUE's output is a *set of possibly-overlapping clusters*, each tied
to one subspace — not a partition.  :class:`CliqueResult` therefore
stores per-cluster point-index arrays and provides the coverage/overlap
summaries the PROCLUS paper computes when deciding whether CLIQUE's
output can stand in for a partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .cover import Rectangle
from .units import Unit

__all__ = ["CliqueCluster", "CliqueResult"]


@dataclass
class CliqueCluster:
    """One connected component of dense units in one subspace."""

    cluster_id: int
    dims: Tuple[int, ...]
    units: List[Unit]
    point_indices: np.ndarray
    rectangles: List[Rectangle] = field(default_factory=list)

    @property
    def dimensionality(self) -> int:
        """Subspace dimensionality of the cluster."""
        return len(self.dims)

    @property
    def n_points(self) -> int:
        """Number of points inside the cluster's dense units."""
        return int(self.point_indices.size)

    @property
    def n_units(self) -> int:
        """Number of dense units forming the cluster."""
        return len(self.units)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CliqueCluster(id={self.cluster_id}, dims={self.dims}, "
            f"units={self.n_units}, points={self.n_points})"
        )


@dataclass
class CliqueResult:
    """All clusters found by one CLIQUE run plus run metadata."""

    clusters: List[CliqueCluster]
    n_points: int
    xi: int
    tau: float
    n_dense_units: int
    subspace_coverage: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def n_clusters(self) -> int:
        """Number of reported clusters (all subspaces)."""
        return len(self.clusters)

    def clusters_of_dimensionality(self, q: int) -> List[CliqueCluster]:
        """Only the clusters living in ``q``-dimensional subspaces."""
        return [c for c in self.clusters if c.dimensionality == q]

    @property
    def max_dimensionality(self) -> int:
        """Highest subspace dimensionality among reported clusters."""
        return max((c.dimensionality for c in self.clusters), default=0)

    def covered_points(self) -> np.ndarray:
        """Indices of points belonging to at least one cluster."""
        if not self.clusters:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.concatenate([c.point_indices for c in self.clusters]))

    @property
    def coverage_fraction(self) -> float:
        """Fraction of all points covered by some cluster."""
        if self.n_points == 0:
            return 0.0
        return self.covered_points().size / self.n_points

    @property
    def average_overlap(self) -> float:
        """The PROCLUS paper's overlap: ``sum|C_i| / |union C_i|``.

        1.0 means the output is effectively a partition of the covered
        points; large values mean points are reported many times.
        """
        union = self.covered_points().size
        if union == 0:
            return 0.0
        total = sum(c.n_points for c in self.clusters)
        return total / union

    def membership_counts(self) -> np.ndarray:
        """Per-point count of clusters containing the point."""
        counts = np.zeros(self.n_points, dtype=np.int64)
        for c in self.clusters:
            counts[c.point_indices] += 1
        return counts

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"CLIQUE result: xi={self.xi}, tau={self.tau:g}, "
            f"{self.n_clusters} clusters from {self.n_dense_units} dense units",
            f"  coverage={self.coverage_fraction:.1%}, "
            f"average overlap={self.average_overlap:.2f}",
        ]
        by_dim: Dict[int, int] = {}
        for c in self.clusters:
            by_dim[c.dimensionality] = by_dim.get(c.dimensionality, 0) + 1
        for q in sorted(by_dim):
            lines.append(f"  {by_dim[q]} cluster(s) in {q}-dimensional subspaces")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CliqueResult(clusters={self.n_clusters}, "
            f"coverage={self.coverage_fraction:.2f}, "
            f"overlap={self.average_overlap:.2f})"
        )
