"""CLIQUE (Agrawal, Gehrke, Gunopulos, Raghavan; SIGMOD 1998).

The PROCLUS paper's main comparator, reimplemented from scratch so the
comparison experiments (Table 5, Figures 7-8) run against the real
algorithmic structure rather than a stub:

1. each dimension is partitioned into ``xi`` equal intervals
   (:mod:`~repro.baselines.clique.grid`);
2. *dense units* — grid cells in some subspace holding at least a
   ``tau`` fraction of the points — are discovered bottom-up, joining
   (q-1)-dimensional dense units apriori-style and pruning candidates
   with any non-dense face (:mod:`~repro.baselines.clique.apriori`);
3. optionally, low-coverage subspaces are pruned with the original MDL
   criterion (:mod:`~repro.baselines.clique.mdl`);
4. clusters are connected components of dense units within a subspace
   (:mod:`~repro.baselines.clique.connect`);
5. a greedy rectangle cover provides the minimal region descriptions
   the original paper reports (:mod:`~repro.baselines.clique.cover`).

The output is **not** a partition: a point can fall in dense units of
many subspaces, and projections of a dense region are dense and get
reported too — exactly the behaviour the PROCLUS paper measures with
its *average overlap* metric.
"""

from .apriori import find_dense_units
from .clique import Clique, CliqueConfig
from .connect import connected_components
from .cover import greedy_cover, Rectangle
from .grid import Grid
from .mdl import mdl_prune_subspaces
from .result import CliqueCluster, CliqueResult
from .units import Unit

__all__ = [
    "Clique",
    "CliqueConfig",
    "CliqueResult",
    "CliqueCluster",
    "Grid",
    "Unit",
    "find_dense_units",
    "connected_components",
    "greedy_cover",
    "Rectangle",
    "mdl_prune_subspaces",
]
