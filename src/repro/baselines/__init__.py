"""Baselines the paper compares against or builds upon.

* :mod:`repro.baselines.clique` — CLIQUE (Agrawal et al., SIGMOD 1998),
  the paper's main comparator, reimplemented from scratch;
* :mod:`repro.baselines.kmedoids` — PAM and CLARANS (Ng & Han, VLDB
  1994), the full-dimensional K-medoids methods PROCLUS generalises;
* :mod:`repro.baselines.kmeans` — Lloyd's algorithm with k-means++
  seeding, a full-dimensional reference;
* :mod:`repro.baselines.dbscan` — the density-based family the paper's
  related work cites ([9], [24]), full-dimensional;
* :mod:`repro.baselines.feature_selection` — global feature
  preselection followed by full-dimensional clustering, the strawman
  the paper's introduction (Figure 1) argues against.
"""

from .clique import Clique, CliqueCluster, CliqueConfig, CliqueResult
from .dbscan import DBSCAN, DBSCANResult, dbscan
from .feature_selection import FeatureSelectionClustering, variance_scores, spread_scores
from .kmeans import KMeans, kmeans
from .kmedoids import CLARANS, KMedoidsResult, PAM, clarans, pam

__all__ = [
    "Clique",
    "DBSCAN",
    "DBSCANResult",
    "dbscan",
    "CliqueConfig",
    "CliqueCluster",
    "CliqueResult",
    "PAM",
    "CLARANS",
    "pam",
    "clarans",
    "KMedoidsResult",
    "KMeans",
    "kmeans",
    "FeatureSelectionClustering",
    "variance_scores",
    "spread_scores",
]
