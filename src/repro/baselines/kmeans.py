"""Lloyd's k-means with k-means++ seeding.

A full-dimensional reference baseline: on the paper's workloads it
illustrates why clustering in the full space fails to separate projected
clusters (every cluster is spread out along its non-cluster dimensions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from ..validation import check_array, check_positive_int

__all__ = ["KMeansResult", "KMeans", "kmeans", "kmeans_pp_init"]


@dataclass
class KMeansResult:
    """A fitted k-means clustering."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool
    seconds: float = 0.0
    inertia_history: List[float] = field(default_factory=list)

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centroids.shape[0])


def kmeans_pp_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: D^2-weighted sequential centroid choice."""
    n = X.shape[0]
    centroids = np.empty((k, X.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = X[first]
    closest_sq = np.square(X - centroids[0]).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # all points coincide with chosen centroids: pick uniformly
            idx = int(rng.integers(n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centroids[i] = X[idx]
        dist_sq = np.square(X - centroids[i]).sum(axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centroids


def _lloyd(X: np.ndarray, centroids: np.ndarray, max_iter: int,
           tol: float, rng: np.random.Generator) -> KMeansResult:
    k = centroids.shape[0]
    history: List[float] = []
    converged = False
    labels = np.zeros(X.shape[0], dtype=np.int64)
    it = 0
    for it in range(1, max_iter + 1):
        # assignment
        dists = np.empty((X.shape[0], k))
        for i in range(k):
            diff = X - centroids[i]
            dists[:, i] = np.einsum("ij,ij->i", diff, diff)
        labels = np.argmin(dists, axis=1).astype(np.int64)
        inertia = float(dists[np.arange(labels.size), labels].sum())
        history.append(inertia)
        # update
        new_centroids = centroids.copy()
        for i in range(k):
            members = labels == i
            if members.any():
                new_centroids[i] = X[members].mean(axis=0)
            else:
                # re-seed an empty cluster at the point farthest from its centroid
                far = int(np.argmax(dists[np.arange(labels.size), labels]))
                new_centroids[i] = X[far]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift <= tol:
            converged = True
            break
    return KMeansResult(
        labels=labels, centroids=centroids,
        inertia=history[-1] if history else 0.0,
        n_iterations=it, converged=converged, inertia_history=history,
    )


def kmeans(X, k: int, *, n_init: int = 3, max_iter: int = 100,
           tol: float = 1e-6, seed: SeedLike = None) -> KMeansResult:
    """Run k-means ``n_init`` times and keep the lowest-inertia result."""
    X = check_array(X, name="X")
    k = check_positive_int(k, name="k", minimum=1, maximum=X.shape[0])
    check_positive_int(n_init, name="n_init", minimum=1)
    check_positive_int(max_iter, name="max_iter", minimum=1)
    if tol < 0:
        raise ParameterError(f"tol must be >= 0; got {tol}")
    rng = ensure_rng(seed)
    t0 = time.perf_counter()
    best: Optional[KMeansResult] = None
    for _ in range(n_init):
        centroids = kmeans_pp_init(X, k, rng)
        result = _lloyd(X, centroids, max_iter, tol, rng)
        if best is None or result.inertia < best.inertia:
            best = result
    best.seconds = time.perf_counter() - t0
    return best


class KMeans:
    """Estimator wrapper around :func:`kmeans`."""

    def __init__(self, k: int, *, n_init: int = 3, max_iter: int = 100,
                 tol: float = 1e-6, seed: SeedLike = None):
        self.k = k
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.result_: Optional[KMeansResult] = None

    def fit(self, X) -> "KMeans":
        """Run k-means; returns self with ``result_`` populated."""
        self.result_ = kmeans(X, self.k, n_init=self.n_init,
                              max_iter=self.max_iter, tol=self.tol,
                              seed=self.seed)
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Run k-means and return labels."""
        return self.fit(X).result_.labels
