"""Global feature preselection + full-dimensional clustering.

The strawman of the paper's introduction (Figure 1): pick one global
subset of dimensions up front, prune the rest, and cluster in that
subspace.  When different clusters correlate in *different* subspaces —
the projected-clustering setting — no single subset works, and this
baseline demonstrably fails where PROCLUS succeeds (see
``examples/feature_selection_failure.py`` and the ablation benches).

Two classical unsupervised scores are provided:

* ``variance_scores``: low variance = the dimension is globally
  compact; clusters hiding in a dimension lower its global variance
  only slightly, which is exactly why the approach breaks;
* ``spread_scores``: average absolute deviation from the dimension
  median — a robust variant.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike
from ..validation import check_array, check_positive_int
from .kmeans import KMeansResult, kmeans
from .kmedoids import KMedoidsResult, clarans

__all__ = ["variance_scores", "spread_scores", "FeatureSelectionClustering"]


def variance_scores(X: np.ndarray) -> np.ndarray:
    """Per-dimension variance (lower = more globally compact)."""
    X = check_array(X, name="X")
    return X.var(axis=0)


def spread_scores(X: np.ndarray) -> np.ndarray:
    """Per-dimension mean absolute deviation from the median (robust)."""
    X = check_array(X, name="X")
    med = np.median(X, axis=0)
    return np.abs(X - med).mean(axis=0)


class FeatureSelectionClustering:
    """Select the ``n_features`` most compact dimensions, then cluster.

    Parameters
    ----------
    k:
        Number of clusters for the downstream algorithm.
    n_features:
        Number of dimensions to keep globally.
    scorer:
        ``"variance"``, ``"spread"``, or a callable ``X -> scores``
        (lower score = keep).
    algorithm:
        ``"kmeans"`` (default) or ``"clarans"`` for the clustering step.
    """

    def __init__(self, k: int, n_features: int, *,
                 scorer: Union[str, Callable] = "variance",
                 algorithm: str = "kmeans", seed: SeedLike = None):
        self.k = check_positive_int(k, name="k", minimum=1)
        self.n_features = check_positive_int(n_features, name="n_features", minimum=1)
        if isinstance(scorer, str):
            try:
                scorer = {"variance": variance_scores, "spread": spread_scores}[scorer]
            except KeyError:
                raise ParameterError(
                    f"scorer must be 'variance', 'spread', or callable; got {scorer!r}"
                )
        self.scorer = scorer
        if algorithm not in ("kmeans", "clarans"):
            raise ParameterError(
                f"algorithm must be 'kmeans' or 'clarans'; got {algorithm!r}"
            )
        self.algorithm = algorithm
        self.seed = seed
        self.selected_dims_: Optional[np.ndarray] = None
        self.result_: Union[KMeansResult, KMedoidsResult, None] = None

    def fit(self, X) -> "FeatureSelectionClustering":
        """Score dimensions, keep the best, cluster in that subspace."""
        X = check_array(X, name="X")
        if self.n_features > X.shape[1]:
            raise ParameterError(
                f"n_features={self.n_features} exceeds d={X.shape[1]}"
            )
        scores = np.asarray(self.scorer(X), dtype=np.float64)
        if scores.shape != (X.shape[1],):
            raise ParameterError(
                "scorer must return one score per dimension; got shape "
                f"{scores.shape}"
            )
        self.selected_dims_ = np.sort(np.argsort(scores, kind="stable")[:self.n_features])
        sub = X[:, self.selected_dims_]
        if self.algorithm == "kmeans":
            self.result_ = kmeans(sub, self.k, seed=self.seed)
        else:
            self.result_ = clarans(sub, self.k, seed=self.seed)
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the label array."""
        return self.fit(X).result_.labels

    @property
    def labels_(self) -> np.ndarray:
        """Labels from the last fit."""
        if self.result_ is None:
            raise ParameterError("call fit() first")
        return self.result_.labels
