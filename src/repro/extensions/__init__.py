"""Extensions beyond the PROCLUS paper.

The paper's conclusion points at generalised projected clustering as
future work; its direct successor is **ORCLUS** (Aggarwal & Yu, SIGMOD
2000), which drops the axis-parallel restriction and finds clusters in
arbitrarily *oriented* subspaces via per-cluster eigen-analysis.  This
subpackage provides:

* :mod:`repro.extensions.orclus` — a from-scratch ORCLUS;
* :func:`repro.data.rotated.generate_rotated` (in the data package) —
  workloads whose projected structure is rotated out of the coordinate
  axes, where PROCLUS fails by construction and ORCLUS succeeds.
"""

from .orclus import Orclus, OrclusResult, orclus

__all__ = ["Orclus", "OrclusResult", "orclus"]
