"""ORCLUS: arbitrarily ORiented projected CLUSter generation.

A from-scratch implementation of Aggarwal & Yu (SIGMOD 2000), the
successor the PROCLUS paper's future-work section points toward.  Where
PROCLUS restricts each cluster's subspace to a subset of the coordinate
axes, ORCLUS associates with each cluster an arbitrary orthonormal
basis — the directions in which the cluster is *least* spread out —
found by eigen-decomposition of the cluster's covariance matrix.

Algorithm sketch (notation follows the ORCLUS paper):

* start from ``k0 = seed_factor * k`` random seeds with full-space
  bases;
* repeat until ``k_c == k`` and ``l_c == l``:

  - **assign** every point to the seed minimising the *projected
    distance* ``||E_i^T (x - s_i)||`` in that seed's current subspace;
  - **recompute** each seed as its cluster centroid and each basis as
    the eigenvectors of the cluster covariance with the ``l_c``
    smallest eigenvalues;
  - **merge** clusters down to ``k_c = max(k, alpha * k_c)``: greedily
    join the pair whose union has the least *projected energy* (mean
    squared projected distance to the union centroid in the union's own
    best subspace);
  - shrink ``l_c`` geometrically so dimensionality reaches ``l`` in the
    same number of passes as the cluster count reaches ``k``.

* a final assignment pass fixes the output partition; points whose
  projected distance to every seed exceeds ``outlier_factor`` times the
  cluster's own energy radius can optionally be labelled outliers.

The implementation keeps per-cluster sufficient statistics so merging
candidates are evaluated from covariances without re-touching points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import Dataset, OUTLIER_LABEL
from ..exceptions import NotFittedError, ParameterError
from ..rng import SeedLike, ensure_rng
from ..validation import check_array, check_positive_int

__all__ = ["OrclusResult", "Orclus", "orclus"]


@dataclass
class OrclusResult:
    """A fitted ORCLUS clustering.

    ``bases[i]`` is a ``(d, l)`` orthonormal matrix spanning cluster
    ``i``'s subspace (the directions of least spread).
    """

    labels: np.ndarray
    centroids: np.ndarray
    bases: List[np.ndarray]
    energy: float
    n_merge_phases: int
    seconds: float = 0.0

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centroids.shape[0])

    @property
    def n_outliers(self) -> int:
        """Number of points labelled as outliers."""
        return int(np.count_nonzero(self.labels == OUTLIER_LABEL))

    def cluster_sizes(self) -> Dict[int, int]:
        """Mapping cluster id -> member count."""
        return {i: int(np.count_nonzero(self.labels == i))
                for i in range(self.k)}

    def subspace_dimensionality(self) -> int:
        """The common output subspace dimensionality ``l``."""
        return int(self.bases[0].shape[1]) if self.bases else 0


def _projected_distances(X: np.ndarray, centroid: np.ndarray,
                         basis: np.ndarray) -> np.ndarray:
    """``||E^T (x - c)||`` for every row x — distance inside the subspace."""
    proj = (X - centroid) @ basis
    return np.sqrt(np.einsum("ij,ij->i", proj, proj))


def _least_spread_basis(cov: np.ndarray, l: int) -> Tuple[np.ndarray, float]:
    """Eigenvectors of the ``l`` smallest eigenvalues, plus their energy."""
    eigvals, eigvecs = np.linalg.eigh(cov)  # ascending order
    basis = eigvecs[:, :l]
    energy = float(np.clip(eigvals[:l], 0.0, None).sum())
    return basis, energy


@dataclass
class _ClusterStats:
    """Sufficient statistics: count, sum, and sum of outer products."""

    n: int
    s: np.ndarray
    ss: np.ndarray

    @classmethod
    def of(cls, X: np.ndarray) -> "_ClusterStats":
        return cls(n=X.shape[0], s=X.sum(axis=0), ss=X.T @ X)

    def merged(self, other: "_ClusterStats") -> "_ClusterStats":
        return _ClusterStats(n=self.n + other.n, s=self.s + other.s,
                             ss=self.ss + other.ss)

    @property
    def centroid(self) -> np.ndarray:
        return self.s / self.n

    def covariance(self) -> np.ndarray:
        c = self.centroid
        return self.ss / self.n - np.outer(c, c)


def orclus(X, k: int, l: int, *, seed_factor: int = 5, alpha: float = 0.5,
           max_passes: int = 50, outlier_factor: Optional[float] = None,
           seed: SeedLike = None) -> OrclusResult:
    """Run ORCLUS and return an :class:`OrclusResult`.

    Parameters
    ----------
    X:
        Data matrix ``(N, d)`` or a Dataset.
    k, l:
        Target cluster count and per-cluster subspace dimensionality
        (``1 <= l < d``; note ORCLUS's ``l`` counts *retained least-
        spread directions*, the analogue of PROCLUS's dimension sets).
    seed_factor:
        ``k0 = seed_factor * k`` initial seeds.
    alpha:
        Cluster-count decay per merge phase (ORCLUS paper default 0.5).
    outlier_factor:
        When set, the final pass labels a point an outlier if its
        projected distance to every centroid exceeds ``outlier_factor``
        times that cluster's RMS projected radius.
    """
    if isinstance(X, Dataset):
        X = X.points
    X = check_array(X, name="X")
    n, d = X.shape
    k = check_positive_int(k, name="k", minimum=1, maximum=n)
    l = check_positive_int(l, name="l", minimum=1, maximum=d - 1)
    check_positive_int(seed_factor, name="seed_factor", minimum=1)
    if not 0 < alpha < 1:
        raise ParameterError(f"alpha must lie in (0, 1); got {alpha}")
    rng = ensure_rng(seed)
    t0 = time.perf_counter()

    k_current = min(seed_factor * k, n)
    centroid_idx = rng.choice(n, size=k_current, replace=False)
    centroids = X[centroid_idx].copy()
    bases = [np.eye(d) for _ in range(k_current)]
    l_current = d

    # geometric dimensionality decay synchronised with cluster decay:
    # both reach their targets after the same number of phases.
    import math
    n_phases = max(1, math.ceil(math.log(max(k_current / k, 1.0001))
                                / math.log(1 / alpha)))
    beta = (l / d) ** (1.0 / n_phases)

    labels = np.zeros(n, dtype=np.int64)
    merge_phases = 0
    for _ in range(max_passes):
        # ---- assign --------------------------------------------------
        dist = np.empty((n, k_current))
        for i in range(k_current):
            dist[:, i] = _projected_distances(X, centroids[i], bases[i])
        labels = np.argmin(dist, axis=1).astype(np.int64)

        # ---- recompute centroids, bases ------------------------------
        stats: List[_ClusterStats] = []
        for i in range(k_current):
            members = X[labels == i]
            if members.shape[0] == 0:
                # re-seed an empty cluster at the worst-assigned point
                worst = int(np.argmax(dist[np.arange(n), labels]))
                members = X[worst:worst + 1]
            stats.append(_ClusterStats.of(members))
        l_next = max(l, int(round(l_current * beta)))
        centroids = np.vstack([st.centroid for st in stats])
        bases = []
        for st in stats:
            basis, _ = _least_spread_basis(st.covariance(), l_next)
            bases.append(basis)
        l_current = l_next

        if k_current == k and l_current == l:
            break

        # ---- merge ----------------------------------------------------
        k_target = max(k, int(alpha * k_current))
        if k_target < k_current:
            merge_phases += 1
            while k_current > k_target:
                best_pair, best_energy = None, np.inf
                for a in range(k_current):
                    for b in range(a + 1, k_current):
                        union = stats[a].merged(stats[b])
                        _, energy = _least_spread_basis(
                            union.covariance(), l_current,
                        )
                        if energy < best_energy:
                            best_energy = energy
                            best_pair = (a, b)
                a, b = best_pair
                stats[a] = stats[a].merged(stats[b])
                del stats[b]
                k_current -= 1
            centroids = np.vstack([st.centroid for st in stats])
            bases = []
            for st in stats:
                basis, _ = _least_spread_basis(st.covariance(), l_current)
                bases.append(basis)

    # ---- final assignment (and optional outliers) ----------------------
    dist = np.empty((n, k_current))
    for i in range(k_current):
        dist[:, i] = _projected_distances(X, centroids[i], bases[i])
    labels = np.argmin(dist, axis=1).astype(np.int64)
    total_energy = float(
        np.mean(dist[np.arange(n), labels] ** 2)
    )
    if outlier_factor is not None:
        radii = np.empty(k_current)
        for i in range(k_current):
            members = dist[labels == i, i]
            radii[i] = np.sqrt(np.mean(members ** 2)) if members.size else 0.0
        cutoff = radii[None, :] * outlier_factor
        outliers = np.all(dist > cutoff, axis=1)
        labels[outliers] = OUTLIER_LABEL

    return OrclusResult(
        labels=labels,
        centroids=centroids,
        bases=bases,
        energy=total_energy,
        n_merge_phases=merge_phases,
        seconds=time.perf_counter() - t0,
    )


class Orclus:
    """Estimator wrapper around :func:`orclus`."""

    def __init__(self, k: int, l: int, *, seed_factor: int = 5,
                 alpha: float = 0.5, max_passes: int = 50,
                 outlier_factor: Optional[float] = None,
                 seed: SeedLike = None):
        self.k = k
        self.l = l
        self.seed_factor = seed_factor
        self.alpha = alpha
        self.max_passes = max_passes
        self.outlier_factor = outlier_factor
        self.seed = seed
        self.result_: Optional[OrclusResult] = None

    def fit(self, X) -> "Orclus":
        """Run ORCLUS; returns self with ``result_`` populated."""
        self.result_ = orclus(
            X, self.k, self.l, seed_factor=self.seed_factor,
            alpha=self.alpha, max_passes=self.max_passes,
            outlier_factor=self.outlier_factor, seed=self.seed,
        )
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Run ORCLUS and return the label array."""
        return self.fit(X).result_.labels

    @property
    def labels_(self) -> np.ndarray:
        """Labels from the last fit."""
        if self.result_ is None:
            raise NotFittedError("call fit() before accessing results")
        return self.result_.labels
