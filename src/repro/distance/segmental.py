"""Manhattan segmental distance (paper section 1.2).

For a dimension subset ``D`` with ``|D| >= 1``, the Manhattan segmental
distance between points ``x`` and ``y`` is::

    d_D(x, y) = ( sum_{i in D} |x_i - y_i| ) / |D|

i.e. the *average* per-dimension separation over ``D``.  The
normalisation by ``|D|`` is the point: clusters live in subspaces of
different dimensionality, and dividing by ``|D|`` makes distances
relative to different subsets comparable.  (The paper notes there is no
comparably easy normalised variant of the Euclidean metric.)

Batch helpers compute segmental distances from many points to one medoid
in a single vectorised pass, which is what ``AssignPoints`` needs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..dtypes import as_working
from ..exceptions import ParameterError
from ..robustness.guards import resolve_row_chunk
from .base import Metric

__all__ = [
    "segmental_distance",
    "segmental_distances_to_point",
    "pairwise_segmental",
    "ManhattanSegmentalDistance",
]


def _as_dims(dims: Sequence[int]) -> np.ndarray:
    arr = np.asarray(list(dims), dtype=np.intp)
    if arr.size == 0:
        raise ParameterError(
            "Manhattan segmental distance needs a non-empty dimension set"
        )
    return arr


def segmental_distance(a, b, dims: Sequence[int]) -> float:
    """Segmental distance between two points relative to ``dims``."""
    d = _as_dims(dims)
    a = as_working(a).ravel()
    b = as_working(b).ravel()
    return float(np.abs(a[d] - b[d]).mean())


def segmental_distances_to_point(X: np.ndarray, p, dims: Sequence[int], *,
                                 memory_budget_bytes: Optional[int] = None,
                                 n_jobs: int = 1) -> np.ndarray:
    """Segmental distances from every row of ``X`` to point ``p``.

    Parameters
    ----------
    X:
        Array of shape ``(n, d)``.
    p:
        Point of shape ``(d,)``.
    dims:
        Dimension subset ``D``.
    memory_budget_bytes:
        Soft cap on the ``(n, |D|)`` gather/diff temporaries (default:
        :data:`repro.robustness.guards.DEFAULT_MEMORY_BUDGET_BYTES`).
        Past it, rows are processed in chunks — same values, bounded
        peak memory, exactly like
        :func:`repro.distance.matrix.cross_distances`.
    n_jobs:
        ``!= 1`` dispatches the row chunks to a thread pool
        (:func:`repro.perf.parallel.parallel_chunks`); each chunk
        writes its own disjoint output slice, so the result is
        bit-identical to the serial loop's.

    Returns
    -------
    numpy.ndarray of shape ``(n,)``, in ``X``'s working dtype.  The
    per-row mean spans only ``|D| <= d`` entries (a short reduction, the
    same rounding exposure for every row), so it runs natively in the
    working dtype — values are compared against each other, never
    against a float64 branch of the same quantity.
    """
    d = _as_dims(dims)
    X = as_working(X)
    p = np.asarray(p, dtype=X.dtype).ravel()
    target = p[d]
    n = X.shape[0]
    chunk = resolve_row_chunk(n, d.size, memory_budget_bytes,
                              itemsize=X.dtype.itemsize)
    if n_jobs == 1 and chunk is None:
        return np.abs(X[:, d] - target).mean(axis=1)
    out = np.empty(n, dtype=X.dtype)

    def fill_rows(start: int, stop: int) -> None:
        out[start:stop] = np.abs(X[start:stop, d] - target).mean(axis=1)

    if n_jobs == 1:
        for start in range(0, n, chunk):
            fill_rows(start, min(start + chunk, n))
        return out
    from ..perf.parallel import parallel_chunks

    parallel_chunks(fill_rows, n, chunk=chunk, n_jobs=n_jobs)
    return out


def pairwise_segmental(X: np.ndarray, dims: Sequence[int]) -> np.ndarray:
    """Full ``(n, n)`` matrix of segmental distances among rows of ``X``.

    Quadratic in memory; intended for the small point sets (medoids,
    localities) the algorithms inspect, not whole databases.
    """
    d = _as_dims(dims)
    sub = as_working(X)[:, d]
    return np.abs(sub[:, None, :] - sub[None, :, :]).mean(axis=2)


class ManhattanSegmentalDistance(Metric):
    """Metric object bound to a fixed dimension subset ``D``.

    Useful where an API expects a plain two-argument metric but the
    distance must be evaluated in a projected subspace.
    """

    def __init__(self, dims: Sequence[int]):
        self.dims = np.sort(_as_dims(dims))
        self.name = "segmental[" + ",".join(str(int(j)) for j in self.dims) + "]"

    def pairwise_to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        return segmental_distances_to_point(X, p, self.dims)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ManhattanSegmentalDistance(dims={self.dims.tolist()})"
