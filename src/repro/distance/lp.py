"""Lp-norm distances (paper section 1.2).

The Manhattan distance is the ``L1`` norm, the Euclidean distance the
``L2`` norm, and in general ``d_p(x, y) = (sum_i |x_i - y_i|^p)^(1/p)``.
The Chebyshev distance is the ``p -> infinity`` limit.  Instances are
registered in the metric registry under the names ``"manhattan"`` /
``"l1"``, ``"euclidean"`` / ``"l2"``, and ``"chebyshev"`` / ``"linf"``.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import as_working
from ..exceptions import ParameterError
from .base import Metric, register_metric

__all__ = [
    "ManhattanDistance",
    "EuclideanDistance",
    "LpDistance",
    "ChebyshevDistance",
    "manhattan",
    "euclidean",
    "lp_distance",
    "chebyshev",
]


class ManhattanDistance(Metric):
    """L1 norm: ``sum_i |x_i - y_i|``."""

    name = "manhattan"

    def pairwise_to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        return np.abs(X - p).sum(axis=1)


class EuclideanDistance(Metric):
    """L2 norm: ``sqrt(sum_i (x_i - y_i)^2)``."""

    name = "euclidean"

    def pairwise_to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        diff = X - p
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))


class ChebyshevDistance(Metric):
    """L-infinity norm: ``max_i |x_i - y_i|``."""

    name = "chebyshev"

    def pairwise_to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        return np.abs(X - p).max(axis=1)


class LpDistance(Metric):
    """General Lp norm for a fixed ``p >= 1``."""

    def __init__(self, p: float):
        p = float(p)
        if p < 1:
            raise ParameterError(f"Lp distance requires p >= 1; got {p}")
        self.p = p
        self.name = f"l{p:g}"

    def pairwise_to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        return np.power(
            np.power(np.abs(X - p), self.p).sum(axis=1), 1.0 / self.p
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LpDistance(p={self.p:g})"


_MANHATTAN = register_metric(ManhattanDistance(), "l1", "cityblock")
_EUCLIDEAN = register_metric(EuclideanDistance(), "l2")
_CHEBYSHEV = register_metric(ChebyshevDistance(), "linf", "linfinity")


def manhattan(a, b) -> float:
    """Manhattan (L1) distance between two points."""
    return _MANHATTAN(as_working(a), as_working(b))


def euclidean(a, b) -> float:
    """Euclidean (L2) distance between two points."""
    return _EUCLIDEAN(as_working(a), as_working(b))


def chebyshev(a, b) -> float:
    """Chebyshev (L-infinity) distance between two points."""
    return _CHEBYSHEV(as_working(a), as_working(b))


def lp_distance(a, b, p: float) -> float:
    """General Lp distance between two points for ``p >= 1``."""
    return LpDistance(p)(as_working(a), as_working(b))
