"""Metric protocol and registry.

A :class:`Metric` computes distances between points and, in batch form,
between a set of points and a single point.  Algorithms take either a
metric *name* (looked up in the registry) or a :class:`Metric` instance,
so users can plug in custom distances without touching library code.
"""

from __future__ import annotations

import abc
from typing import Dict, Union

import numpy as np

from ..dtypes import as_working
from ..exceptions import ParameterError

__all__ = ["Metric", "register_metric", "get_metric", "available_metrics"]


class Metric(abc.ABC):
    """Abstract distance function.

    Subclasses implement :meth:`pairwise_to_point`; the scalar form
    :meth:`__call__` is derived from it.  All inputs are float arrays —
    callers validate shape/dtype once at the public API boundary.
    """

    #: registry key; subclasses set this to a short lowercase name.
    name: str = ""

    @abc.abstractmethod
    def pairwise_to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        """Distances from each row of ``X`` (n, d) to point ``p`` (d,)."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two individual points."""
        a = np.atleast_2d(as_working(a))
        b = np.asarray(b, dtype=a.dtype).ravel()
        return float(self.pairwise_to_point(a, b)[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Metric] = {}


def register_metric(metric: Metric, *aliases: str) -> Metric:
    """Register ``metric`` under its ``name`` plus optional aliases."""
    if not metric.name:
        raise ParameterError("metric must define a non-empty .name")
    for key in (metric.name, *aliases):
        _REGISTRY[key.lower()] = metric
    return metric


def get_metric(metric: Union[str, Metric]) -> Metric:
    """Resolve a metric name or pass an instance through."""
    if isinstance(metric, Metric):
        return metric
    if isinstance(metric, str):
        try:
            return _REGISTRY[metric.lower()]
        except KeyError:
            raise ParameterError(
                f"unknown metric {metric!r}; available: {sorted(_REGISTRY)}"
            )
    raise ParameterError(
        f"metric must be a name or a Metric instance; got {type(metric).__name__}"
    )


def available_metrics() -> list:
    """Sorted list of registered metric names (including aliases)."""
    return sorted(_REGISTRY)
