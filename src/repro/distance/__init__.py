"""Distance functions used throughout the library.

The paper works with three families of distances:

* classic **Lp norms** (Manhattan ``L1``, Euclidean ``L2``, general ``Lp``,
  and the ``L-infinity`` limit) — used by the initialization phase and the
  locality analysis;
* the **Manhattan segmental distance** — the paper's central metric: the
  Manhattan distance restricted to a dimension subset ``D`` and normalised
  by ``|D|`` so clusters with different dimensionalities are comparable;
* **pairwise kernels** over point sets (``cdist``-style), vectorised with
  numpy for the batch operations the algorithms need.
"""

from .base import Metric, get_metric, register_metric, available_metrics
from .lp import (
    ChebyshevDistance,
    EuclideanDistance,
    LpDistance,
    ManhattanDistance,
    chebyshev,
    euclidean,
    lp_distance,
    manhattan,
)
from .matrix import (
    cross_distances,
    distances_to_point,
    pairwise_distances,
    per_dimension_average_distance,
)
from .segmental import (
    ManhattanSegmentalDistance,
    pairwise_segmental,
    segmental_distance,
    segmental_distances_to_point,
)

__all__ = [
    "Metric",
    "get_metric",
    "register_metric",
    "available_metrics",
    "ManhattanDistance",
    "EuclideanDistance",
    "LpDistance",
    "ChebyshevDistance",
    "manhattan",
    "euclidean",
    "lp_distance",
    "chebyshev",
    "ManhattanSegmentalDistance",
    "segmental_distance",
    "segmental_distances_to_point",
    "pairwise_segmental",
    "pairwise_distances",
    "cross_distances",
    "distances_to_point",
    "per_dimension_average_distance",
]
