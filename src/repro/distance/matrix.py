"""Batch distance kernels (``cdist``-style) over point sets.

These helpers are the numpy workhorses behind the algorithms: the greedy
farthest-point selection, CLARANS, locality analysis, and cluster
evaluation all reduce to "distances from a block of points to one or a
few anchors".  Memory is kept linear in ``n`` by iterating over the
(small) anchor set rather than materialising 3-D broadcast temporaries.

When even the per-anchor ``O(n * d)`` temporaries would exceed the
memory budget (see :mod:`repro.robustness.guards`), the kernels fall
back to row-chunked computation: identical values, peak memory bounded
by the budget.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..dtypes import as_working, to_float64
from ..obs import get_tracer
from ..robustness.guards import resolve_row_chunk
from .base import Metric, get_metric

__all__ = [
    "distances_to_point",
    "cross_distances",
    "pairwise_distances",
    "per_dimension_average_distance",
]

MetricLike = Union[str, Metric]


def distances_to_point(X: np.ndarray, p, metric: MetricLike = "euclidean") -> np.ndarray:
    """Distances from every row of ``X`` (n, d) to a single point ``p``.

    Computes natively in ``X``'s working dtype (float32 stays float32);
    non-float input is coerced to float64 (see :mod:`repro.dtypes`).
    """
    m = get_metric(metric)
    X = as_working(X)
    p = np.asarray(p, dtype=X.dtype).ravel()
    return m.pairwise_to_point(X, p)


def cross_distances(X: np.ndarray, anchors: np.ndarray,
                    metric: MetricLike = "euclidean", *,
                    memory_budget_bytes: Optional[int] = None) -> np.ndarray:
    """Matrix of shape ``(n, m)``: distance from each row of ``X`` to each anchor.

    ``anchors`` is expected to be small (medoid sets); the loop over
    anchors keeps peak memory at ``O(n)`` per column.  When the per-anchor
    temporaries would exceed ``memory_budget_bytes`` (default:
    :data:`repro.robustness.guards.DEFAULT_MEMORY_BUDGET_BYTES`), rows
    are processed in chunks instead — same values, bounded peak memory.
    """
    m = get_metric(metric)
    X = as_working(X)
    anchors = np.atleast_2d(np.asarray(anchors, dtype=X.dtype))
    n = X.shape[0]
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("kernel.distance_rows", n * anchors.shape[0])
        # bytes the kernel streams: the (n, d) block read once per
        # anchor plus the (n, m) output written, in the working dtype
        tracer.count("kernel.distance_bytes",
                     n * anchors.shape[0] * (X.shape[1] + 1)
                     * X.dtype.itemsize)
    out = np.empty((n, anchors.shape[0]), dtype=X.dtype)
    chunk = resolve_row_chunk(n, X.shape[1], memory_budget_bytes,
                              itemsize=X.dtype.itemsize)
    if chunk is None:
        for j, a in enumerate(anchors):
            out[:, j] = m.pairwise_to_point(X, a)
        return out
    for start in range(0, n, chunk):
        block = X[start:start + chunk]
        for j, a in enumerate(anchors):
            out[start:start + chunk, j] = m.pairwise_to_point(block, a)
    return out


def pairwise_distances(X: np.ndarray, metric: MetricLike = "euclidean", *,
                       memory_budget_bytes: Optional[int] = None,
                       n_jobs: int = 1) -> np.ndarray:
    """Symmetric ``(n, n)`` distance matrix among the rows of ``X``.

    The metric is assumed symmetric (every registered metric is), so
    only the lower triangle (diagonal included) is computed and the
    upper triangle is mirrored — half the work of the naive
    anchors-times-rows product, with identical values.  The row-chunk
    memory budget applies per anchor column, as in
    :func:`cross_distances`.

    ``n_jobs != 1`` dispatches anchor ranges to a thread pool
    (:func:`repro.perf.parallel.parallel_chunks`).  Anchor ``i`` writes
    only column ``i`` of the lower triangle and its mirrored row, so
    the writes are disjoint and the assembled matrix is bit-identical
    to the serial loop's.
    """
    m = get_metric(metric)
    X = as_working(X)
    n = X.shape[0]
    out = np.empty((n, n), dtype=X.dtype)
    chunk = resolve_row_chunk(n, X.shape[1], memory_budget_bytes,
                              itemsize=X.dtype.itemsize)

    def fill_anchor(i: int) -> None:
        block = X[i:]
        if chunk is None:
            col = m.pairwise_to_point(block, X[i])
        else:
            col = np.empty(n - i, dtype=X.dtype)
            for start in range(0, block.shape[0], chunk):
                col[start:start + chunk] = m.pairwise_to_point(
                    block[start:start + chunk], X[i]
                )
        out[i:, i] = col
        out[i, i:] = col

    if n_jobs == 1:
        for i in range(n):
            fill_anchor(i)
        return out
    from ..perf.parallel import parallel_chunks, resolve_n_jobs

    # anchor i does n - i distance rows, so contiguous anchor ranges
    # carry very unequal work; several small pieces per worker let the
    # pool balance the heavy low-index ranges against the light tail
    workers = resolve_n_jobs(n_jobs, n_tasks=n)
    piece = max(1, -(-n // (4 * workers)))

    def fill_range(start: int, stop: int) -> None:
        for i in range(start, stop):
            fill_anchor(i)

    parallel_chunks(fill_range, n, chunk=piece, n_jobs=n_jobs)
    return out


def per_dimension_average_distance(X: np.ndarray, p,
                                   weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Average absolute distance along each dimension from rows of ``X`` to ``p``.

    This is the quantity ``X_{i,j}`` in the paper's ``FindDimensions``:
    the mean of ``|x_j - p_j|`` over the points ``x`` in a locality (or
    cluster).  ``weights`` allows a weighted mean; an empty ``X`` raises
    ``ValueError`` — callers guard against empty localities explicitly.

    Accumulation policy: the gather/diff runs in ``X``'s working dtype
    (that's the bandwidth-bound part), but the mean over members
    **accumulates in float64 and the result is float64** regardless of
    the input dtype — these statistics feed the Z-score ranking whose
    argsort decides dimension allocation, and a long float32 reduction
    could flip that ranking between otherwise-identical runs.
    """
    X = as_working(X)
    if X.ndim != 2 or X.shape[0] == 0:
        raise ValueError("per_dimension_average_distance needs a non-empty 2-D array")
    p = np.asarray(p, dtype=X.dtype).ravel()
    diffs = np.abs(X - p)
    if weights is None:
        return diffs.mean(axis=0, dtype=np.float64)
    weights = to_float64(weights)
    return (diffs * weights[:, None]).sum(axis=0, dtype=np.float64) / weights.sum()
