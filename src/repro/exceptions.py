"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch one base class.  Validation
failures raise :class:`ParameterError` (a subclass of ``ValueError`` as
well, for API friendliness), while data-shape problems raise
:class:`DataError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "DataError",
    "NotFittedError",
    "ConvergenceWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """An algorithm or generator parameter is out of its legal range."""


class DataError(ReproError, ValueError):
    """Input data has the wrong shape, dtype, or content (NaN/inf)."""


class NotFittedError(ReproError, RuntimeError):
    """A result attribute was requested before ``fit`` was called."""


class ConvergenceWarning(UserWarning):
    """An iterative algorithm stopped on its safety cap, not its criterion."""
