"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch one base class.  Validation
failures raise :class:`ParameterError` (a subclass of ``ValueError`` as
well, for API friendliness), while data-shape problems raise
:class:`DataError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "DataError",
    "DegenerateDataError",
    "NotFittedError",
    "BudgetExceededError",
    "CheckpointError",
    "ServeError",
    "ConvergenceWarning",
    "SanitizationWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """An algorithm or generator parameter is out of its legal range."""


class DataError(ReproError, ValueError):
    """Input data has the wrong shape, dtype, or content (NaN/inf)."""


class DegenerateDataError(DataError):
    """Input data is so degenerate no meaningful clustering exists.

    Raised when even the graceful-degradation ladder cannot proceed:
    e.g. sanitization dropped every row, a column holds no finite value
    to impute from, or fewer than two distinct points remain.
    """


class NotFittedError(ReproError, RuntimeError):
    """A result attribute was requested before ``fit`` was called."""


class BudgetExceededError(ReproError, RuntimeError):
    """A runtime budget (wall-clock or memory) was exceeded.

    Budget guards normally *degrade* (return best-so-far, chunk the
    computation) instead of raising; this error is reserved for
    call sites that explicitly request hard enforcement via
    :meth:`repro.robustness.Deadline.check`.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint directory cannot be used for the requested run.

    Raised by the fault-tolerant run supervisor when ``resume=True``
    finds no manifest, an unreadable manifest, or a manifest recorded by
    a *different* run (other seed stream, restart count, or fit
    parameters) — resuming from it would silently change results.
    Corrupt *per-restart* payload files are handled more gently: they
    are discarded and recomputed, never raised.
    """


class ServeError(ReproError, RuntimeError):
    """The model-serving layer could not complete a request.

    Raised by the query server for serving-specific failures (no model
    loaded, open circuit breaker observed at dispatch) and by the
    retrying client when a request exhausts its retry budget or total
    deadline.  Validation problems keep their own types
    (:class:`ParameterError` / :class:`DataError`), as do expired
    per-request budgets (:class:`BudgetExceededError`) — this class
    covers the transport and availability failures unique to serving.
    """


class ConvergenceWarning(UserWarning):
    """An iterative algorithm stopped on its safety cap, not its criterion."""


class SanitizationWarning(UserWarning):
    """Input sanitization or graceful degradation modified the request.

    Emitted whenever the robustness layer changes data (dropped /
    imputed / clipped values, collapsed duplicates) or parameters
    (reduced ``k``, clamped factors, a baseline fallback).  The same
    messages are recorded on ``ProclusResult.warnings``.
    """
