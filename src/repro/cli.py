"""Command-line interface: ``python -m repro`` or the ``proclus`` script.

Subcommands
-----------
``generate``
    Draw a synthetic dataset (paper section 4.1, or a named domain
    workload via ``--workload``) and write it to CSV.
``cluster`` (alias ``run``)
    Run PROCLUS on a CSV dataset and print the result summary.
    ``--profile`` adds a structured profile report, ``--trace-file``
    writes the span/event trace as JSONL, ``--log-level`` turns on the
    stdlib-logging bridge (see ``docs/observability.md``).
``sweep``
    Sweep ``l`` (and optionally ``k``) on a CSV dataset to pick
    parameters, per the paper's section-4.3 advice.
``clique``
    Run the CLIQUE baseline on a CSV dataset and print its summary.
``experiment``
    Run a registered paper experiment (``table1`` .. ``table5``,
    ``fig7`` .. ``fig9``, ablations) and print its report.
``serve``
    Start the hardened query server on a saved model (``cluster
    --save-model``): per-request deadlines, 429 load shedding, a
    per-model circuit breaker, and SIGTERM graceful drain (see
    ``docs/serving.md``).
``predict``
    Assign the points of a CSV dataset to a saved model locally (no
    server) and print/write the labels.
``lint``
    Run the determinism & contract lint gate (rules RPR001-RPR009)
    over source trees; exits nonzero on any finding.
``list``
    List available experiments.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional

from . import experiments  # noqa: F401 - populates the registry
from .baselines.clique import Clique
from .core.proclus import proclus
from .data.io import load_csv, save_csv
from .data.synthetic import generate
from .exceptions import (CheckpointError, ParameterError, ReproError,
                         SanitizationWarning)
from .experiments.registry import get_experiment, list_experiments
from .metrics.confusion import confusion_matrix
from .metrics.external import adjusted_rand_index

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the CLI."""
    parser = argparse.ArgumentParser(
        prog="proclus",
        description="PROCLUS (SIGMOD 1999) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic dataset")
    g.add_argument("output", help="CSV file to write")
    g.add_argument("--workload", default=None,
                   choices=["collaborative-filtering", "segmentation",
                            "sensors"],
                   help="named domain workload instead of the generic "
                        "section-4.1 generator")
    g.add_argument("--n-points", type=int, default=10_000)
    g.add_argument("--n-dims", type=int, default=20)
    g.add_argument("--n-clusters", type=int, default=5)
    g.add_argument("--cluster-dims", type=int, nargs="*", default=None,
                   help="exact dimensionality per cluster, e.g. 7 7 7 7 7")
    g.add_argument("--outlier-fraction", type=float, default=0.05)
    g.add_argument("--seed", type=int, default=None)

    c = sub.add_parser("cluster", aliases=["run"],
                       help="run PROCLUS on a CSV dataset")
    c.add_argument("input", help="CSV file (from `generate` or compatible)")
    c.add_argument("-k", type=int, required=True, help="number of clusters")
    c.add_argument("-l", type=float, required=True,
                   help="average cluster dimensionality")
    c.add_argument("--seed", type=int, default=None)
    c.add_argument("--min-deviation", type=float, default=0.1)
    c.add_argument("--no-outliers", action="store_true",
                   help="skip outlier detection in the refinement phase")
    c.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget; on expiry the best-so-far "
                        "clustering is returned (terminated_by=deadline)")
    c.add_argument("--restarts", type=int, default=1,
                   help="run the whole pipeline this many times with "
                        "independent seeds and keep the best run "
                        "(paper section 4.3; default 1)")
    c.add_argument("--n-jobs", type=int, default=1,
                   help="worker count for the parallel execution layer: "
                        "1 = serial (default), N >= 2 fans restarts out "
                        "over N processes, -1 = all cores; results are "
                        "bit-identical for any value")
    c.add_argument("--max-retries", type=int, default=2,
                   help="retry budget per restart for crashed/hung "
                        "workers in the multi-restart fan-out; retries "
                        "replay the identical seed stream (default 2)")
    c.add_argument("--restart-timeout-s", type=float, default=None,
                   metavar="SECONDS",
                   help="treat a restart as hung after this many "
                        "seconds and replace its worker (default: off)")
    c.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="persist each completed restart atomically under "
                        "DIR; an interrupted run (exit code 130) can be "
                        "resumed with --resume")
    c.add_argument("--resume", action="store_true",
                   help="resume a checkpointed run from --checkpoint-dir; "
                        "the result is bit-identical to an uninterrupted "
                        "run")
    c.add_argument("--on-bad-values", default="drop",
                   choices=["raise", "drop", "impute_median", "clip"],
                   help="policy for NaN/inf cells in the input "
                        "(default: drop the affected rows)")
    c.add_argument("--no-sanitize", action="store_true",
                   help="feed the CSV to PROCLUS verbatim: no bad-value "
                        "handling, no degradation ladder (degenerate "
                        "input raises)")
    c.add_argument("--dtype", default="float64",
                   choices=["float64", "float32"],
                   help="working dtype of the compute path: float64 "
                        "(default, the bit-exact reference path) or "
                        "float32 (half the memory bandwidth per kernel; "
                        "deterministic within the dtype)")
    c.add_argument("--profile", action="store_true",
                   help="trace the run (phase spans, counters) and print "
                        "a profile report after the summary; results are "
                        "bit-identical with and without tracing")
    c.add_argument("--trace-file", default=None, metavar="PATH",
                   help="write the structured trace as JSON Lines to "
                        "PATH (implies --profile); validate with "
                        "`python -m repro.obs PATH`")
    c.add_argument("--log-level", default=None, metavar="LEVEL",
                   choices=["DEBUG", "INFO", "WARNING", "ERROR"],
                   help="emit tracer phases/events through stdlib "
                        "logging at this level to stderr")
    c.add_argument("--save-model", default=None, metavar="PATH",
                   help="save the fitted result atomically (temp file + "
                        "rename, sha256-fingerprinted) for `serve` / "
                        "`predict`")

    s = sub.add_parser("sweep", help="sweep l (and k) to pick parameters")
    s.add_argument("input")
    s.add_argument("-k", type=int, required=True,
                   help="cluster count used during the l sweep")
    s.add_argument("--l-values", type=float, nargs="+", required=True)
    s.add_argument("--k-values", type=int, nargs="*", default=None,
                   help="optionally sweep k afterwards at the chosen l")
    s.add_argument("--seed", type=int, default=None)

    q = sub.add_parser("clique", help="run the CLIQUE baseline on a CSV dataset")
    q.add_argument("input")
    q.add_argument("--xi", type=int, default=10)
    q.add_argument("--tau-percent", type=float, default=0.5,
                   help="density threshold in percent of N (paper convention)")
    q.add_argument("--max-dim", type=int, default=None)
    q.add_argument("--target-dim", type=int, default=None)
    q.add_argument("--mdl-prune", action="store_true")

    o = sub.add_parser("orclus", help="run the ORCLUS extension "
                                      "(oriented subspaces)")
    o.add_argument("input")
    o.add_argument("-k", type=int, required=True)
    o.add_argument("-l", type=int, required=True,
                   help="subspace dimensionality per cluster")
    o.add_argument("--seed", type=int, default=None)
    o.add_argument("--outlier-factor", type=float, default=None)

    st = sub.add_parser("stability", help="cross-seed stability analysis "
                                          "of PROCLUS on a dataset")
    st.add_argument("input")
    st.add_argument("-k", type=int, required=True)
    st.add_argument("-l", type=float, required=True)
    st.add_argument("--n-runs", type=int, default=5)
    st.add_argument("--seed", type=int, default=None)

    e = sub.add_parser("experiment", help="run a registered paper experiment")
    e.add_argument("name", help="experiment name (see `list`)")
    e.add_argument("--n-points", type=int, default=None,
                   help="override workload size (paper scale: 100000)")
    e.add_argument("--seed", type=int, default=None)
    e.add_argument("--n-jobs", type=int, default=None,
                   help="run the experiment's config grid concurrently "
                        "(experiments that accept n_jobs only; timings "
                        "of concurrent configs share the machine)")

    sv = sub.add_parser(
        "serve",
        help="serve predict queries from a saved model over HTTP",
        description="Hardened query server: per-request wall-clock "
                    "deadlines threaded into the predict kernel, bounded "
                    "admission with 429 shedding, a per-model circuit "
                    "breaker, /healthz + /readyz probes, hot reload, and "
                    "SIGINT/SIGTERM graceful drain (second signal "
                    "hard-exits 130).  See docs/serving.md.",
    )
    sv.add_argument("model", help="saved result (`cluster --save-model`)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8437,
                    help="TCP port (0 picks a free one; default 8437)")
    sv.add_argument("--max-points", type=int, default=100_000,
                    help="largest query batch accepted (default 100000)")
    sv.add_argument("--deadline-s", type=float, default=10.0,
                    help="default per-request wall-clock budget when the "
                         "client sends no X-Deadline-S header")
    sv.add_argument("--max-deadline-s", type=float, default=60.0,
                    help="cap on client-requested deadlines")
    sv.add_argument("--max-concurrency", type=int, default=4,
                    help="predict batches allowed in the kernel at once")
    sv.add_argument("--max-queue", type=int, default=16,
                    help="requests allowed to wait for a slot before "
                         "shedding with 429")
    sv.add_argument("--breaker-threshold", type=int, default=5,
                    help="consecutive kernel failures that open the "
                         "circuit breaker")
    sv.add_argument("--breaker-reset-s", type=float, default=30.0,
                    help="seconds the breaker stays open before a "
                         "half-open probe")
    sv.add_argument("--drain-s", type=float, default=10.0,
                    help="budget for in-flight requests to finish after "
                         "the first SIGINT/SIGTERM")
    sv.add_argument("--on-bad-values", default="raise",
                    choices=["raise", "drop", "impute_median", "clip"],
                    help="default NaN/inf policy for query batches "
                         "(default: raise -> HTTP 400)")
    sv.add_argument("--chunk-size", type=int, default=None,
                    help="predict kernel row-chunk override")
    sv.add_argument("--memory-budget-mb", type=float, default=None,
                    help="kernel scratch budget per batch, in MiB")
    sv.add_argument("--trace-file", default=None, metavar="PATH",
                    help="write the serve.* span/counter trace as JSON "
                         "Lines to PATH on shutdown")

    p = sub.add_parser(
        "predict",
        help="assign CSV points to a saved model locally",
        description="Runs the inference core directly (no server): "
                    "Manhattan segmental distance to each medoid over "
                    "its cluster's dimension set, sphere-of-influence "
                    "outlier flagging.  predict on the training CSV "
                    "reproduces the fitted labels bit-identically.",
    )
    p.add_argument("model", help="saved result (`cluster --save-model`)")
    p.add_argument("input", help="CSV file of query points")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="write one label per line to PATH (default: "
                        "print a summary only)")
    p.add_argument("--on-bad-values", default="raise",
                   choices=["raise", "drop", "impute_median", "clip"],
                   help="NaN/inf policy for the query points "
                        "(default: raise)")
    p.add_argument("--no-outliers", action="store_true",
                   help="skip the sphere-of-influence outlier rule; "
                        "every point gets its nearest medoid's label")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="kernel row-chunk override")
    p.add_argument("--deadline-s", type=float, default=None,
                   help="wall-clock budget for the whole batch")

    ln = sub.add_parser(
        "lint",
        help="determinism & contract lint (RPR001-RPR009)",
        description="Static analysis of the library's determinism "
                    "contracts: seeded-Generator threading, wall-clock "
                    "hygiene, cache-key completeness, API typing, "
                    "multiprocessing picklability, and working-dtype "
                    "preservation. Exit code 0 means every contract "
                    "holds.",
    )
    from .analysis.cli import add_lint_arguments
    add_lint_arguments(ln)

    sub.add_parser("list", help="list available experiments")
    return parser


def _cmd_generate(args) -> int:
    if args.workload is None:
        ds = generate(
            args.n_points, args.n_dims, args.n_clusters,
            cluster_dim_counts=args.cluster_dims,
            outlier_fraction=args.outlier_fraction,
            seed=args.seed,
        )
    else:
        from .data.workloads import (
            collaborative_filtering_workload,
            customer_segmentation_workload,
            sensor_fleet_workload,
        )
        makers = {
            "collaborative-filtering": lambda: collaborative_filtering_workload(
                seed=args.seed),
            "segmentation": lambda: customer_segmentation_workload(
                seed=args.seed),
            "sensors": lambda: sensor_fleet_workload(
                args.n_points, seed=args.seed),
        }
        ds = makers[args.workload]()
    path = save_csv(ds, args.output)
    print(f"wrote {ds.n_points} x {ds.n_dims} points "
          f"({ds.n_clusters} clusters, {ds.n_outliers} outliers) to {path}")
    return 0


def _cmd_sweep(args) -> int:
    from .core.tuning import sweep_k, sweep_l
    ds = load_csv(args.input)
    l_sweep = sweep_l(ds.points, args.k, args.l_values, seed=args.seed)
    print(l_sweep.to_text())
    picked_l = l_sweep.knee_value()
    print(f"-> picked l = {picked_l:g} (largest value on the plateau)")
    if args.k_values:
        k_sweep = sweep_k(ds.points, args.k_values, picked_l, seed=args.seed)
        print()
        print(k_sweep.to_text())
        print(f"-> picked k = {int(k_sweep.knee_value())}")
    return 0


def _cmd_cluster(args) -> int:
    from contextlib import ExitStack

    from .obs import (Tracer, configure_logging, format_profile, get_logger,
                      use_tracer)

    sanitize = not args.no_sanitize
    tracing = bool(args.profile or args.trace_file or args.log_level)
    logger = None
    if args.log_level is not None:
        configure_logging(args.log_level)
        logger = get_logger("cli")
    ds = load_csv(args.input, allow_nonfinite=sanitize)
    tracer = Tracer(logger=logger) if tracing else None
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        with warnings.catch_warnings():
            # the summary below prints result.warnings; no need to emit twice
            warnings.simplefilter("ignore", SanitizationWarning)
            result = proclus(
                ds.points, args.k, args.l,
                min_deviation=args.min_deviation,
                handle_outliers=not args.no_outliers,
                on_bad_values=args.on_bad_values if sanitize else "raise",
                auto_degrade=sanitize,
                time_budget_s=args.time_budget,
                restarts=args.restarts,
                n_jobs=args.n_jobs,
                max_retries=args.max_retries,
                restart_timeout_s=args.restart_timeout_s,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                profile=tracing,
                dtype=args.dtype,
                seed=args.seed,
            )
    if tracer is not None and args.trace_file:
        path = tracer.write_jsonl(args.trace_file)
        print(f"trace written to {path}")
    if args.save_model is not None:
        from .core.serialization import result_fingerprint, save_result
        model_path = save_result(result, args.save_model)
        print(f"model saved to {model_path} "
              f"(fingerprint {result_fingerprint(model_path)[:12]})")
    print(result.summary())
    if args.profile and result.profile is not None:
        print()
        print(format_profile(result.profile))
    if ds.has_ground_truth:
        print()
        print(confusion_matrix(result.labels, ds.labels).to_table())
        print(f"\nadjusted Rand index = "
              f"{adjusted_rand_index(result.labels, ds.labels):.3f}")
    if result.terminated_by == "signal":
        # POSIX convention for interrupted commands (128 + SIGINT);
        # the partial result above is still valid and checkpointed
        return 130
    return 0


def _cmd_clique(args) -> int:
    ds = load_csv(args.input)
    clique = Clique(
        xi=args.xi, tau=args.tau_percent / 100.0,
        max_dimensionality=args.max_dim,
        target_dimensionality=args.target_dim,
        prune_subspaces=args.mdl_prune,
    ).fit(ds.points)
    print(clique.result.summary())
    return 0


def _cmd_orclus(args) -> int:
    from .extensions import orclus
    ds = load_csv(args.input)
    result = orclus(ds.points, args.k, args.l, seed=args.seed,
                    outlier_factor=args.outlier_factor)
    sizes = ", ".join(f"{cid}:{n}" for cid, n in result.cluster_sizes().items())
    print(f"ORCLUS: k={result.k}, subspace dim "
          f"{result.subspace_dimensionality()}, energy={result.energy:.3f}")
    print(f"cluster sizes {{{sizes}}}, outliers={result.n_outliers}")
    if ds.has_ground_truth:
        print(f"adjusted Rand index = "
              f"{adjusted_rand_index(result.labels, ds.labels):.3f}")
    return 0


def _cmd_stability(args) -> int:
    from .core.proclus import proclus as _proclus
    from .metrics import stability_report
    ds = load_csv(args.input)

    def fit(X, seed):
        return _proclus(X, args.k, args.l, seed=seed, keep_history=False)

    print(stability_report(fit, ds.points, n_runs=args.n_runs,
                           seed=args.seed).to_text())
    return 0


def _cmd_experiment(args) -> int:
    import inspect

    runner = get_experiment(args.name)
    kwargs = {}
    if args.n_points is not None:
        kwargs["n_points"] = args.n_points
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.n_jobs is not None:
        if "n_jobs" not in inspect.signature(runner).parameters:
            raise ParameterError(
                f"experiment {args.name!r} does not support --n-jobs"
            )
        kwargs["n_jobs"] = args.n_jobs
    report = runner(**kwargs)
    print(report.to_text())
    return 0


def _cmd_serve(args) -> int:
    from contextlib import ExitStack

    from .obs import Tracer, use_tracer
    from .serve import ProclusServer, ServerConfig

    budget = args.memory_budget_mb
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_points=args.max_points,
        default_deadline_s=args.deadline_s,
        max_deadline_s=args.max_deadline_s,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset_s,
        drain_s=args.drain_s,
        on_bad_values=args.on_bad_values,
        chunk_size=args.chunk_size,
        memory_budget_bytes=None if budget is None else int(budget * 2**20),
    )
    tracer = Tracer() if args.trace_file else None
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        server = ProclusServer(config, model_path=args.model)
        code = server.run()
    if tracer is not None and args.trace_file:
        path = tracer.write_jsonl(args.trace_file)
        print(f"trace written to {path}")
    return code


def _cmd_predict(args) -> int:
    from .core.serialization import load_result
    from .robustness.guards import Deadline

    result = load_result(args.model)
    ds = load_csv(args.input, allow_nonfinite=args.on_bad_values != "raise")
    report = result.predict_report(
        ds.points,
        handle_outliers=not args.no_outliers,
        on_bad_values=args.on_bad_values,
        chunk_size=args.chunk_size,
        deadline=Deadline.start(args.deadline_s),
    )
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.writelines(f"{label}\n" for label in report.labels)
        print(f"labels written to {args.output}")
    print(f"predicted {report.n_points} points with k={result.k} model "
          f"({result.medoids.dtype}): {report.n_outliers} outliers")
    for message in report.warnings:
        print(f"note: {message}")
    if ds.has_ground_truth and report.n_points == ds.n_points:
        print(f"adjusted Rand index = "
              f"{adjusted_rand_index(report.labels, ds.labels):.3f}")
    return 0


def _cmd_lint(args) -> int:
    from .analysis.cli import run_lint
    return run_lint(args)


def _cmd_list(args) -> int:
    for name, desc in list_experiments():
        print(f"{name:<16} {desc}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "cluster": _cmd_cluster,
        "run": _cmd_cluster,
        "sweep": _cmd_sweep,
        "clique": _cmd_clique,
        "orclus": _cmd_orclus,
        "stability": _cmd_stability,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "predict": _cmd_predict,
        "lint": _cmd_lint,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except CheckpointError as exc:
        # distinct code so wrappers can tell "fix your --resume flags"
        # from ordinary usage errors (see docs/robustness.md)
        print(f"error: {exc}", file=sys.stderr)
        return 4
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
