"""Evaluation metrics used in the paper's empirical study plus
standard external/internal validity indices.

* :mod:`~repro.metrics.confusion` — the paper's Confusion Matrix
  (section 4.2) between output and input clusters, with outlier
  row/column;
* :mod:`~repro.metrics.matching` — output-to-input cluster matching
  (Hungarian via scipy when available; greedy fallback);
* :mod:`~repro.metrics.overlap` — the paper's *average overlap* for
  CLIQUE's non-partitioning output;
* :mod:`~repro.metrics.dimensions` — recovered-dimension quality
  (exact match, precision/recall/Jaccard) for Tables 1-2;
* :mod:`~repro.metrics.external` — ARI, NMI, purity, pairwise F1;
* :mod:`~repro.metrics.internal` — segmental silhouette and the
  projected objective.
"""

from .confusion import (
    ConfusionMatrix,
    confusion_from_memberships,
    confusion_matrix,
)
from .dimensions import (
    DimensionMatchReport,
    dimension_jaccard,
    dimension_precision_recall,
    match_dimension_sets,
)
from .external import adjusted_rand_index, normalized_mutual_info, pairwise_f1, purity
from .internal import projected_objective, segmental_silhouette
from .matching import greedy_match, hungarian_match, match_clusters
from .stability import StabilityReport, stability_report
from .overlap import average_overlap, coverage_fraction, cluster_points_recovered

__all__ = [
    "ConfusionMatrix",
    "confusion_matrix",
    "confusion_from_memberships",
    "match_clusters",
    "hungarian_match",
    "greedy_match",
    "average_overlap",
    "coverage_fraction",
    "cluster_points_recovered",
    "dimension_precision_recall",
    "dimension_jaccard",
    "match_dimension_sets",
    "DimensionMatchReport",
    "adjusted_rand_index",
    "normalized_mutual_info",
    "purity",
    "pairwise_f1",
    "segmental_silhouette",
    "projected_objective",
    "stability_report",
    "StabilityReport",
]
