"""Overlap and coverage (paper section 4.2).

The paper quantifies how far CLIQUE's output is from a partition::

    overlap = sum_i |C_i| / |union_i C_i|

1 means each covered point is reported once (a de-facto partition);
3.63 — the paper's Table-5 run — means the average covered point is
reported in more than three clusters.  ``coverage_fraction`` and
``cluster_points_recovered`` capture the companion observation that
CLIQUE throws away a large share of the true cluster points as
outliers (42.7% recovered at ``tau = 0.5``, 30.7% at ``0.8``, ...).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.dataset import OUTLIER_LABEL
from ..exceptions import DataError

__all__ = ["average_overlap", "coverage_fraction", "cluster_points_recovered"]


def _union_size(memberships: Sequence[np.ndarray]) -> int:
    if not memberships:
        return 0
    arrays = [np.asarray(m, dtype=np.intp) for m in memberships if len(m)]
    if not arrays:
        return 0
    return int(np.unique(np.concatenate(arrays)).size)


def average_overlap(memberships: Sequence[np.ndarray]) -> float:
    """``sum |C_i| / |union C_i|`` over output clusters; 0 when empty."""
    union = _union_size(memberships)
    if union == 0:
        return 0.0
    total = sum(len(np.asarray(m)) for m in memberships)
    return total / union


def coverage_fraction(memberships: Sequence[np.ndarray], n_points: int) -> float:
    """Fraction of all points covered by at least one output cluster."""
    if n_points <= 0:
        raise DataError(f"n_points must be positive; got {n_points}")
    return _union_size(memberships) / n_points


def cluster_points_recovered(memberships: Sequence[np.ndarray],
                             true_labels: np.ndarray) -> float:
    """Fraction of *true cluster points* covered by some output cluster.

    The paper's "percentage of cluster points discovered by CLIQUE":
    input outliers are excluded from the denominator, and a true cluster
    point counts as discovered when any output cluster contains it.
    """
    true_labels = np.asarray(true_labels)
    cluster_mask = true_labels != OUTLIER_LABEL
    denom = int(cluster_mask.sum())
    if denom == 0:
        return 0.0
    covered = np.zeros(true_labels.shape[0], dtype=bool)
    for m in memberships:
        covered[np.asarray(m, dtype=np.intp)] = True
    return float(np.count_nonzero(covered & cluster_mask)) / denom
