"""Recovered-dimension quality (Tables 1-2).

After matching output clusters to input clusters, each output cluster's
dimension set ``D_out`` is compared to its input cluster's ``D_in``:

* *exact match* — the headline result of Tables 1-2 ("a perfect
  correspondence between the sets of dimensions");
* precision / recall / Jaccard for partial credit when they differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

__all__ = [
    "dimension_precision_recall",
    "dimension_jaccard",
    "match_dimension_sets",
    "DimensionMatchReport",
]

DimSet = Tuple[int, ...]


def dimension_precision_recall(found: Sequence[int],
                               true: Sequence[int]) -> Tuple[float, float]:
    """(precision, recall) of a recovered dimension set.

    Precision: fraction of found dimensions that are true; recall:
    fraction of true dimensions that were found.  Empty sets yield 0.
    """
    f, t = set(found), set(true)
    inter = len(f & t)
    precision = inter / len(f) if f else 0.0
    recall = inter / len(t) if t else 0.0
    return precision, recall


def dimension_jaccard(found: Sequence[int], true: Sequence[int]) -> float:
    """Jaccard similarity of two dimension sets (1 when both empty)."""
    f, t = set(found), set(true)
    union = f | t
    if not union:
        return 1.0
    return len(f & t) / len(union)


@dataclass
class DimensionMatchReport:
    """Aggregate dimension-recovery quality over matched cluster pairs."""

    per_cluster: Dict[int, Dict[str, float]]
    n_exact: int
    n_matched: int

    @property
    def exact_match_rate(self) -> float:
        """Fraction of matched clusters whose dimension set is exact."""
        return self.n_exact / self.n_matched if self.n_matched else 0.0

    @property
    def mean_jaccard(self) -> float:
        """Mean Jaccard similarity over matched clusters."""
        if not self.per_cluster:
            return 0.0
        return sum(v["jaccard"] for v in self.per_cluster.values()) / len(self.per_cluster)

    @property
    def mean_precision(self) -> float:
        """Mean dimension precision over matched clusters."""
        if not self.per_cluster:
            return 0.0
        return sum(v["precision"] for v in self.per_cluster.values()) / len(self.per_cluster)

    @property
    def mean_recall(self) -> float:
        """Mean dimension recall over matched clusters."""
        if not self.per_cluster:
            return 0.0
        return sum(v["recall"] for v in self.per_cluster.values()) / len(self.per_cluster)


def match_dimension_sets(found_dims: Mapping[int, Sequence[int]],
                         true_dims: Mapping[int, Sequence[int]],
                         matching: Mapping[int, int]) -> DimensionMatchReport:
    """Compare dimension sets along an output->input cluster matching.

    ``matching`` maps output cluster ids to input cluster ids (from
    :func:`repro.metrics.matching.match_clusters`).  Output clusters
    without a match are skipped (they correspond to no input cluster).
    """
    per_cluster: Dict[int, Dict[str, float]] = {}
    n_exact = 0
    for out_id, in_id in matching.items():
        found = tuple(sorted(set(found_dims.get(out_id, ()))))
        true = tuple(sorted(set(true_dims.get(in_id, ()))))
        precision, recall = dimension_precision_recall(found, true)
        jac = dimension_jaccard(found, true)
        exact = found == true and len(found) > 0
        if exact:
            n_exact += 1
        per_cluster[out_id] = {
            "precision": precision,
            "recall": recall,
            "jaccard": jac,
            "exact": float(exact),
        }
    return DimensionMatchReport(
        per_cluster=per_cluster,
        n_exact=n_exact,
        n_matched=len(matching),
    )
