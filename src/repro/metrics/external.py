"""External clustering validity indices, implemented from scratch.

These supplement the paper's confusion matrices with single-number
summaries: adjusted Rand index, normalized mutual information, purity,
and pairwise F1.  Outlier handling is explicit: by convention points
labelled ``-1`` in *either* labelling are excluded from the pairwise
indices unless ``include_outliers=True`` (in which case all outliers
are treated as one extra class).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..data.dataset import OUTLIER_LABEL
from ..validation import check_same_length

__all__ = ["adjusted_rand_index", "normalized_mutual_info", "purity",
           "pairwise_f1"]


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense contingency table between two integer labelings."""
    a_ids, a_inv = np.unique(a, return_inverse=True)
    b_ids, b_inv = np.unique(b, return_inverse=True)
    table = np.zeros((a_ids.size, b_ids.size), dtype=np.int64)
    np.add.at(table, (a_inv, b_inv), 1)
    return table


def _filter(found: np.ndarray, true: np.ndarray,
            include_outliers: bool) -> Tuple[np.ndarray, np.ndarray]:
    found = np.asarray(found)
    true = np.asarray(true)
    check_same_length(found, true, names=("found", "true"))
    if include_outliers:
        return found, true
    keep = (found != OUTLIER_LABEL) & (true != OUTLIER_LABEL)
    return found[keep], true[keep]


def adjusted_rand_index(found, true, *, include_outliers: bool = False) -> float:
    """Adjusted Rand index in [-1, 1]; 1 = identical partitions."""
    f, t = _filter(found, true, include_outliers)
    if f.size == 0:
        return 0.0
    table = _contingency(f, t)
    n = f.size

    def comb2(x):
        x = np.asarray(x, dtype=np.float64)
        return x * (x - 1) / 2.0

    sum_ij = comb2(table).sum()
    sum_a = comb2(table.sum(axis=1)).sum()
    sum_b = comb2(table.sum(axis=0)).sum()
    total = comb2(n)
    expected = sum_a * sum_b / total if total else 0.0
    max_index = (sum_a + sum_b) / 2.0
    denom = max_index - expected
    if denom == 0:
        return 1.0 if sum_ij == max_index else 0.0
    return float((sum_ij - expected) / denom)


def normalized_mutual_info(found, true, *, include_outliers: bool = False) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1]."""
    f, t = _filter(found, true, include_outliers)
    if f.size == 0:
        return 0.0
    table = _contingency(f, t).astype(np.float64)
    n = table.sum()
    pij = table / n
    pi = pij.sum(axis=1, keepdims=True)
    pj = pij.sum(axis=0, keepdims=True)
    nz = pij > 0
    mi = float((pij[nz] * np.log(pij[nz] / (pi @ pj)[nz])).sum())
    hi = float(-(pi[pi > 0] * np.log(pi[pi > 0])).sum())
    hj = float(-(pj[pj > 0] * np.log(pj[pj > 0])).sum())
    denom = (hi + hj) / 2.0
    if denom == 0:
        return 1.0
    return mi / denom


def purity(found, true, *, include_outliers: bool = False) -> float:
    """Weighted fraction of each output cluster's dominant true class."""
    f, t = _filter(found, true, include_outliers)
    if f.size == 0:
        return 0.0
    table = _contingency(f, t)
    return float(table.max(axis=1).sum() / table.sum())


def pairwise_f1(found, true, *, include_outliers: bool = False) -> float:
    """F1 over point pairs: pairs together in both labelings are TP."""
    f, t = _filter(found, true, include_outliers)
    if f.size == 0:
        return 0.0
    table = _contingency(f, t).astype(np.float64)

    def comb2(x):
        return (x * (x - 1) / 2.0)

    tp = comb2(table).sum()
    found_pairs = comb2(table.sum(axis=1)).sum()
    true_pairs = comb2(table.sum(axis=0)).sum()
    if found_pairs == 0 or true_pairs == 0:
        return 0.0
    precision = tp / found_pairs
    recall = tp / true_pairs
    if precision + recall == 0:
        return 0.0
    return float(2 * precision * recall / (precision + recall))
