"""Output-to-input cluster matching.

The accuracy tables compare each output cluster against "its" input
cluster.  The assignment maximising matched mass is computed with the
Hungarian algorithm when scipy is available and with a greedy
largest-entry-first matcher otherwise (the two agree on the paper's
workloads, where the confusion matrices are near-diagonal).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .confusion import ConfusionMatrix

__all__ = ["greedy_match", "hungarian_match", "match_clusters"]

try:  # scipy is an optional test dependency; degrade gracefully
    from scipy.optimize import linear_sum_assignment as _lsa
except ImportError:  # pragma: no cover - environment-dependent
    _lsa = None


def greedy_match(matrix: np.ndarray) -> Dict[int, int]:
    """Greedy matching: repeatedly take the largest remaining entry.

    Returns a partial mapping row -> column; rows whose remaining
    entries are all zero stay unmatched.
    """
    matrix = np.asarray(matrix, dtype=np.float64).copy()
    mapping: Dict[int, int] = {}
    n_rounds = min(matrix.shape)
    for _ in range(n_rounds):
        r, c = np.unravel_index(int(np.argmax(matrix)), matrix.shape)
        if matrix[r, c] <= 0:
            break
        mapping[int(r)] = int(c)
        matrix[r, :] = -1.0
        matrix[:, c] = -1.0
    return mapping


def hungarian_match(matrix: np.ndarray) -> Dict[int, int]:
    """Optimal matching (max total mass) via the Hungarian algorithm.

    Falls back to :func:`greedy_match` when scipy is unavailable.
    Zero-mass pairs are never matched.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if _lsa is None:  # pragma: no cover - environment-dependent
        return greedy_match(matrix)
    rows, cols = _lsa(-matrix)
    return {
        int(r): int(c) for r, c in zip(rows, cols) if matrix[r, c] > 0
    }


def match_clusters(confusion: ConfusionMatrix, *,
                   method: str = "hungarian") -> Dict[int, int]:
    """Match output cluster *ids* to input cluster *ids*.

    Only the cluster-to-cluster block is matched; the outlier
    row/column never participate.  Output clusters made purely of input
    outliers stay unmatched.
    """
    core = confusion.matrix[:-1, :-1]
    if method == "hungarian":
        raw = hungarian_match(core)
    elif method == "greedy":
        raw = greedy_match(core)
    else:
        raise ValueError(f"method must be 'hungarian' or 'greedy'; got {method!r}")
    return {
        confusion.output_ids[r]: confusion.input_ids[c]
        for r, c in raw.items()
    }
