"""Stability analysis for randomised clusterings.

PROCLUS is a randomised local search; practitioners need to know how
much its output moves between runs.  :func:`stability_report` runs a
clustering function over several seeds and summarises

* pairwise label agreement (mean adjusted Rand index across run pairs),
* dimension-set agreement (mean Jaccard of matched clusters' dimension
  sets across run pairs),
* objective spread.

A high label ARI with low dimension Jaccard indicates the partition is
stable but the reported subspaces are not — worth knowing before
interpreting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng, spawn
from .confusion import confusion_matrix
from .dimensions import dimension_jaccard
from .external import adjusted_rand_index
from .matching import match_clusters

__all__ = ["StabilityReport", "stability_report"]


@dataclass
class StabilityReport:
    """Cross-seed agreement statistics for a randomised clustering."""

    n_runs: int
    pairwise_ari: List[float] = field(default_factory=list)
    pairwise_dimension_jaccard: List[float] = field(default_factory=list)
    objectives: List[float] = field(default_factory=list)

    @property
    def mean_ari(self) -> float:
        """Mean pairwise label agreement."""
        return float(np.mean(self.pairwise_ari)) if self.pairwise_ari else 1.0

    @property
    def mean_dimension_jaccard(self) -> float:
        """Mean pairwise dimension-set agreement."""
        if not self.pairwise_dimension_jaccard:
            return 1.0
        return float(np.mean(self.pairwise_dimension_jaccard))

    @property
    def objective_spread(self) -> float:
        """(max - min) / min of the objective across runs; 0 = stable."""
        if not self.objectives:
            return 0.0
        lo, hi = min(self.objectives), max(self.objectives)
        return (hi - lo) / lo if lo > 0 else 0.0

    def to_text(self) -> str:
        """Three-line summary."""
        return (
            f"stability over {self.n_runs} runs:\n"
            f"  label agreement (mean pairwise ARI)   = {self.mean_ari:.3f}\n"
            f"  dimension agreement (mean Jaccard)    = "
            f"{self.mean_dimension_jaccard:.3f}\n"
            f"  objective spread ((max-min)/min)      = "
            f"{self.objective_spread:.3f}"
        )


def stability_report(fit: Callable, X: np.ndarray, *, n_runs: int = 5,
                     seed: SeedLike = None) -> StabilityReport:
    """Run ``fit(X, seed=...)`` over independent seeds and compare runs.

    ``fit`` must return an object with ``labels`` (array) and optionally
    ``dimensions`` (mapping) and ``objective`` (float) — a
    :class:`~repro.core.result.ProclusResult` qualifies directly::

        report = stability_report(
            lambda X, seed: proclus(X, 5, 7, seed=seed), X, n_runs=5,
        )
    """
    if n_runs < 2:
        raise ParameterError(f"n_runs must be >= 2; got {n_runs}")
    rng = ensure_rng(seed)
    results = [fit(X, seed=child) for child in spawn(rng, n_runs)]

    report = StabilityReport(n_runs=n_runs)
    for r in results:
        objective = getattr(r, "objective", None)
        if objective is not None:
            report.objectives.append(float(objective))

    for i in range(n_runs):
        for j in range(i + 1, n_runs):
            a, b = results[i], results[j]
            report.pairwise_ari.append(
                adjusted_rand_index(a.labels, b.labels)
            )
            dims_a = getattr(a, "dimensions", None)
            dims_b = getattr(b, "dimensions", None)
            if dims_a and dims_b:
                cm = confusion_matrix(a.labels, b.labels)
                matching = match_clusters(cm)
                if matching:
                    jaccards = [
                        dimension_jaccard(dims_a[x], dims_b[y])
                        for x, y in matching.items()
                        if x in dims_a and y in dims_b
                    ]
                    if jaccards:
                        report.pairwise_dimension_jaccard.append(
                            float(np.mean(jaccards))
                        )
    return report
