"""Internal (ground-truth-free) validity for projected clusterings.

* :func:`projected_objective` re-exposes the paper's EvaluateClusters
  criterion for arbitrary labelings/dimension sets;
* :func:`segmental_silhouette` generalises the silhouette coefficient
  to per-cluster subspaces: cohesion of a point is its Manhattan
  segmental distance to its own cluster's centroid in that cluster's
  dimensions, separation the minimum over other clusters in *their*
  dimensions — consistent with how PROCLUS assigns points.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.objective import evaluate_clusters
from ..data.dataset import OUTLIER_LABEL
from ..distance.segmental import segmental_distances_to_point
from ..exceptions import DataError
from ..validation import check_array

__all__ = ["projected_objective", "segmental_silhouette"]


def projected_objective(X, labels, dimensions: Mapping[int, Sequence[int]]) -> float:
    """The paper's objective for any labeling + dimension assignment."""
    k = (max(dimensions) + 1) if dimensions else 0
    dim_sets = [tuple(dimensions[i]) for i in range(k)]
    return evaluate_clusters(X, labels, dim_sets)


def segmental_silhouette(X, labels, dimensions: Mapping[int, Sequence[int]]) -> float:
    """Mean silhouette in the per-cluster subspaces; in [-1, 1].

    Outlier-labelled points are ignored.  Clusters with a single member
    contribute silhouette 0 (the standard convention).
    """
    X = check_array(X, name="X")
    labels = np.asarray(labels)
    ids = sorted(int(i) for i in np.unique(labels) if i != OUTLIER_LABEL)
    if len(ids) < 2:
        raise DataError("segmental silhouette needs at least 2 clusters")

    centroids = {}
    for cid in ids:
        members = labels == cid
        if not members.any():
            continue
        centroids[cid] = X[members].mean(axis=0)

    # distance of every point to every cluster's centroid in that
    # cluster's own dimensions
    dist = np.full((X.shape[0], len(ids)), np.inf)
    for col, cid in enumerate(ids):
        if cid not in centroids:
            continue
        dims = tuple(dimensions[cid])
        dist[:, col] = segmental_distances_to_point(X, centroids[cid], dims)

    scores = []
    col_of = {cid: col for col, cid in enumerate(ids)}
    for cid in ids:
        members = np.flatnonzero(labels == cid)
        if members.size == 0:
            continue
        if members.size == 1:
            scores.append(0.0)
            continue
        a = dist[members, col_of[cid]]
        other_cols = [col_of[c] for c in ids if c != cid]
        b = dist[members][:, other_cols].min(axis=1)
        denom = np.maximum(a, b)
        s = np.where(denom > 0, (b - a) / denom, 0.0)
        scores.extend(s.tolist())
    return float(np.mean(scores)) if scores else 0.0
