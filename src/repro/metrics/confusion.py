"""The paper's Confusion Matrix (section 4.2).

Entry ``(i, j)`` counts the points assigned to output cluster ``i`` that
were generated as part of input cluster ``j``; an extra row/column holds
output/input outliers.  A clustering is good when every row has one
dominant entry — "a clear correspondence between the input and output
clusters" (Tables 3-4).

Two constructors cover both algorithms:

* :func:`confusion_matrix` from two label arrays (PROCLUS-style
  partitions, ``-1`` = outlier);
* :func:`confusion_from_memberships` from per-cluster point-index lists
  (CLIQUE-style overlapping output; a point may count in several rows,
  and points covered by no cluster fall into the output-outlier row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import OUTLIER_LABEL
from ..exceptions import DataError
from ..validation import check_same_length

__all__ = ["ConfusionMatrix", "confusion_matrix", "confusion_from_memberships"]


@dataclass
class ConfusionMatrix:
    """Counts plus the row/column cluster ids they refer to.

    ``matrix`` has shape ``(n_output + 1, n_input + 1)``; the final
    row/column are the outlier bucket (present even when empty, matching
    the tables of the paper).
    """

    matrix: np.ndarray
    output_ids: Tuple[int, ...]
    input_ids: Tuple[int, ...]

    @property
    def n_output(self) -> int:
        """Number of output clusters (outlier row excluded)."""
        return len(self.output_ids)

    @property
    def n_input(self) -> int:
        """Number of input clusters (outlier column excluded)."""
        return len(self.input_ids)

    def row(self, output_id: int) -> np.ndarray:
        """The counts of one output cluster across all input clusters."""
        return self.matrix[self.output_ids.index(output_id)]

    def dominant_input(self, output_id: int) -> Optional[int]:
        """The input cluster contributing most points to ``output_id``.

        ``None`` when the row is dominated by input outliers or empty.
        """
        row = self.row(output_id)
        if row[:-1].sum() == 0:
            return None
        j = int(np.argmax(row[:-1]))
        return self.input_ids[j]

    def dominance(self, output_id: int) -> float:
        """Fraction of the row's points coming from its dominant input."""
        row = self.row(output_id)
        total = row.sum()
        if total == 0:
            return 0.0
        return float(row[:-1].max() / total) if row[:-1].size else 0.0

    def misplaced_fraction(self) -> float:
        """Fraction of cluster-to-cluster mass off the dominant entries.

        The paper notes "the percentage of misplaced points is very
        small"; this quantifies it: 1 - (dominant mass) / (total
        cluster->cluster mass).  Outlier row/column are excluded.
        """
        core = self.matrix[:-1, :-1]
        total = core.sum()
        if total == 0:
            return 0.0
        dominant = core.max(axis=1).sum()
        return float(1.0 - dominant / total)

    def to_table(self, *, input_names: Optional[Sequence[str]] = None,
                 output_names: Optional[Sequence[str]] = None) -> str:
        """Render in the paper's Tables 3-4 layout (ASCII)."""
        in_names = list(input_names or [chr(ord("A") + i) for i in range(self.n_input)])
        out_names = list(output_names or [str(i + 1) for i in range(self.n_output)])
        in_names.append("Out.")
        out_names.append("Outliers")
        widths = [max(8, len(n) + 2) for n in in_names]
        head = "Input".ljust(10) + "".join(n.rjust(w) for n, w in zip(in_names, widths))
        lines = [head, "-" * len(head)]
        for r, name in enumerate(out_names):
            cells = "".join(
                str(int(self.matrix[r, c])).rjust(w) for c, w in enumerate(widths)
            )
            lines.append(name.ljust(10) + cells)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConfusionMatrix(output={self.n_output}, input={self.n_input}, "
            f"total={int(self.matrix.sum())})"
        )


def _input_ids(true_labels: np.ndarray) -> Tuple[int, ...]:
    ids = np.unique(true_labels)
    return tuple(int(i) for i in ids if i != OUTLIER_LABEL)


def confusion_matrix(found_labels: np.ndarray,
                     true_labels: np.ndarray) -> ConfusionMatrix:
    """Confusion matrix from two label arrays (``-1`` = outlier)."""
    found_labels = np.asarray(found_labels)
    true_labels = np.asarray(true_labels)
    check_same_length(found_labels, true_labels,
                      names=("found_labels", "true_labels"))
    out_ids = _input_ids(found_labels)
    in_ids = _input_ids(true_labels)
    matrix = np.zeros((len(out_ids) + 1, len(in_ids) + 1), dtype=np.int64)
    out_pos = {cid: i for i, cid in enumerate(out_ids)}
    in_pos = {cid: j for j, cid in enumerate(in_ids)}
    for f, t in zip(found_labels, true_labels):
        r = out_pos.get(int(f), len(out_ids))
        c = in_pos.get(int(t), len(in_ids))
        matrix[r, c] += 1
    return ConfusionMatrix(matrix=matrix, output_ids=out_ids, input_ids=in_ids)


def confusion_from_memberships(memberships: Sequence[np.ndarray],
                               true_labels: np.ndarray,
                               n_points: Optional[int] = None) -> ConfusionMatrix:
    """Confusion matrix for overlapping output clusters (CLIQUE).

    ``memberships[i]`` holds the point indices of output cluster ``i``.
    Points in no output cluster populate the output-outlier row; a point
    in several clusters counts in each of their rows (so column sums can
    exceed the input sizes — exactly the overlap phenomenon the paper
    discusses).
    """
    true_labels = np.asarray(true_labels)
    n = n_points if n_points is not None else true_labels.shape[0]
    if true_labels.shape[0] != n:
        raise DataError(
            f"true_labels has {true_labels.shape[0]} entries for n_points={n}"
        )
    in_ids = _input_ids(true_labels)
    in_pos = {cid: j for j, cid in enumerate(in_ids)}
    q = len(memberships)
    matrix = np.zeros((q + 1, len(in_ids) + 1), dtype=np.int64)
    covered = np.zeros(n, dtype=bool)
    for r, members in enumerate(memberships):
        members = np.asarray(members, dtype=np.intp)
        covered[members] = True
        for t in true_labels[members]:
            matrix[r, in_pos.get(int(t), len(in_ids))] += 1
    for t in true_labels[~covered]:
        matrix[q, in_pos.get(int(t), len(in_ids))] += 1
    return ConfusionMatrix(
        matrix=matrix,
        output_ids=tuple(range(q)),
        input_ids=in_ids,
    )
