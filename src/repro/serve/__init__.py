"""Model serving: the hardened PROCLUS query server and its client.

The production half of the reproduction: once a projected clustering is
fitted and saved (atomically, fingerprinted — see
:mod:`repro.core.serialization`), this package serves point-assignment
queries over HTTP with the failure-handling a real deployment needs:

* :mod:`~repro.serve.server` — threaded HTTP daemon with per-request
  wall-clock deadlines threaded into the chunked predict kernel,
  structured JSON error bodies, hot model reload by atomic pointer
  swap, ``/healthz`` / ``/readyz`` probes, and SIGINT/SIGTERM graceful
  drain (second signal hard-exits 130);
* :mod:`~repro.serve.admission` — bounded concurrency + queue gate;
  overload is shed with 429 and ``Retry-After`` instead of queueing
  unboundedly;
* :mod:`~repro.serve.breaker` — per-model circuit breaker on the
  monotonic clock: consecutive untyped kernel failures open it (503),
  a single half-open probe closes it again;
* :mod:`~repro.serve.client` — retrying client with jittered
  exponential backoff, ``Retry-After`` honouring, and a total-deadline
  cap.

Serving is deterministic where it matters: the predict path is the
refinement phase's own kernel, so served labels are bit-identical to
``result.labels`` on the training data and identical with tracing on
or off.  All timing goes through ``repro.obs.clock.monotonic_s``.

Quickstart::

    from repro.serve import ProclusServer, ServerConfig, PredictClient
    server = ProclusServer(ServerConfig(port=0), model_path="model.npz")
    server.start()
    client = PredictClient(port=server.port)
    labels = client.predict(points)["labels"]
    server.drain_and_stop()
"""

from __future__ import annotations

from .admission import AdmissionController
from .breaker import (BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN,
                      CircuitBreaker)
from .client import PredictClient, RetryPolicy
from .server import LoadedModel, ModelStore, ProclusServer, ServerConfig

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "PredictClient",
    "RetryPolicy",
    "LoadedModel",
    "ModelStore",
    "ProclusServer",
    "ServerConfig",
]
