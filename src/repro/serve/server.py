"""The hardened PROCLUS query server.

A small threaded HTTP daemon that loads a fingerprint-validated saved
:class:`~repro.core.result.ProclusResult` and answers point-assignment
queries with the refinement-phase semantics of
:func:`repro.core.predict.predict_points`.  It exists to make the
*robustness* contracts of this repo hold under network conditions:

* **Deadlines** — every request carries a wall-clock budget (default
  from config, overridable per request via the ``X-Deadline-S`` header,
  capped by ``max_deadline_s``).  The budget covers the body read (slow
  clients are cut off with 408) and is threaded into the chunked
  predict kernel; expiry discards the partial batch and returns a typed
  504 — never a half-assigned answer.
* **Admission control** — a bounded concurrency + queue gate
  (:class:`~repro.serve.admission.AdmissionController`).  Requests past
  both limits are shed with 429 and ``Retry-After``.
* **Circuit breaking** — consecutive *untyped* kernel failures open a
  per-model :class:`~repro.serve.breaker.CircuitBreaker`; while open,
  predict requests are rejected with 503 + ``Retry-After``, and a
  single half-open probe decides recovery.
* **Typed errors, structured bodies** — malformed/oversized/NaN input
  maps to HTTP 400 with a JSON error body; an expired budget to 504; a
  draining or model-less server to 503.  A client never sees a raw
  traceback.
* **Graceful drain** — the first SIGINT/SIGTERM stops admission,
  finishes in-flight requests up to the drain budget, and exits 0; a
  second signal hard-exits 130.  Model hot-reload swaps an atomic
  pointer, so in-flight requests keep the model they started with.

Every request runs under a ``serve.request`` span of the ambient
:mod:`repro.obs` tracer with ``serve.*`` counters; tracing is
observational only — served labels are bit-identical with and without
it (test-enforced).
"""

from __future__ import annotations

import json
import math
import os
import signal
import socket
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union, cast

import numpy as np

from ..core.predict import normalize_dimension_sets, predict_points
from ..core.refinement import spheres_of_influence
from ..core.result import ProclusResult
from ..core.serialization import load_result_with_fingerprint
from ..exceptions import (BudgetExceededError, CheckpointError, DataError,
                          ParameterError, ReproError, ServeError)
from ..obs import get_tracer
from ..robustness.faults import ServeFaultSpec, apply_serve_fault
from ..robustness.guards import Deadline
from ..robustness.sanitize import BAD_VALUE_POLICIES
from .admission import AdmissionController
from .breaker import BREAKER_OPEN, CircuitBreaker

__all__ = ["ServerConfig", "LoadedModel", "ModelStore", "ProclusServer"]

PathLike = Union[str, Path]
_Response = Tuple[int, Dict[str, Any], Dict[str, str]]


@dataclass(frozen=True)
class ServerConfig:
    """Operational limits of one :class:`ProclusServer`.

    Attributes
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`ProclusServer.port` — chaos tests rely on this).
    max_points:
        Largest query batch accepted per request (rows).
    max_body_bytes:
        Largest request body accepted (bytes, checked against
        ``Content-Length`` before reading).
    default_deadline_s / max_deadline_s:
        Per-request wall-clock budget when the client sends none, and
        the cap on client-requested budgets (``X-Deadline-S`` header).
    header_timeout_s:
        Socket timeout while reading the request line and headers — the
        first slow-loris cutoff.
    max_concurrency / max_queue:
        Admission gate (see :mod:`repro.serve.admission`).
    breaker_threshold / breaker_reset_s:
        Circuit breaker knobs (see :mod:`repro.serve.breaker`).
    drain_s:
        Seconds the graceful drain waits for in-flight requests.
    on_bad_values:
        Default NaN/inf policy for query batches (requests may override
        per call with any policy in
        :data:`repro.robustness.sanitize.BAD_VALUE_POLICIES`).
    chunk_size / memory_budget_bytes:
        Forwarded to :func:`repro.core.predict.predict_points`.
    """

    host: str = "127.0.0.1"
    port: int = 8437
    max_points: int = 100_000
    max_body_bytes: int = 32 * 2**20
    default_deadline_s: float = 10.0
    max_deadline_s: float = 60.0
    header_timeout_s: float = 5.0
    max_concurrency: int = 4
    max_queue: int = 16
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0
    drain_s: float = 10.0
    on_bad_values: str = "raise"
    chunk_size: Optional[int] = None
    memory_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ParameterError(f"port must be in [0, 65535]; got {self.port}")
        for name in ("max_points", "max_body_bytes", "max_concurrency"):
            if int(getattr(self, name)) < 1:
                raise ParameterError(
                    f"{name} must be >= 1; got {getattr(self, name)}")
        for name in ("default_deadline_s", "max_deadline_s",
                     "header_timeout_s"):
            value = float(getattr(self, name))
            if not value > 0 or not math.isfinite(value):
                raise ParameterError(
                    f"{name} must be a positive finite number; got {value}")
        if self.default_deadline_s > self.max_deadline_s:
            raise ParameterError(
                f"default_deadline_s ({self.default_deadline_s}) exceeds "
                f"max_deadline_s ({self.max_deadline_s})")
        if self.max_queue < 0 or self.drain_s < 0:
            raise ParameterError("max_queue and drain_s must be >= 0")
        if self.on_bad_values not in BAD_VALUE_POLICIES:
            raise ParameterError(
                f"on_bad_values must be one of {BAD_VALUE_POLICIES}; "
                f"got {self.on_bad_values!r}")


@dataclass(frozen=True)
class LoadedModel:
    """An immutable, predict-ready view of one saved fit.

    Everything derived from the result (normalized dimension sets, the
    spheres of influence) is computed once here, at load time, so the
    per-request path touches only ready-made arrays.  The whole object
    is swapped atomically on reload — in-flight requests keep the
    instance they started with.
    """

    result: ProclusResult
    path: str
    fingerprint: str
    dim_sets: Tuple[Tuple[int, ...], ...]
    spheres: np.ndarray

    @property
    def d(self) -> int:
        """Fitted data dimensionality."""
        return int(self.result.medoids.shape[1])

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly identity for ``/stats`` and reload responses."""
        return {
            "path": self.path,
            "fingerprint": self.fingerprint,
            "k": self.result.k,
            "d": self.d,
            "dtype": str(self.result.medoids.dtype.name),
        }


class ModelStore:
    """Atomic-pointer holder of the currently served :class:`LoadedModel`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._model: Optional[LoadedModel] = None
        self._reloads = 0

    def load(self, path: PathLike) -> LoadedModel:
        """Load + fingerprint-verify ``path``, then swap it in atomically.

        The old model keeps serving until the new one is fully built;
        a corrupt file (:class:`~repro.exceptions.CheckpointError`)
        leaves the store untouched.
        """
        # one read supplies both the arrays and the fingerprint — two
        # reads could straddle a concurrent atomic replace and pair the
        # old model with the new file's identity
        result, fingerprint = load_result_with_fingerprint(path)
        dim_sets = tuple(normalize_dimension_sets(
            result.dimensions, result.k, int(result.medoids.shape[1])))
        spheres = spheres_of_influence(result.medoids, dim_sets)
        model = LoadedModel(result=result, path=str(path),
                            fingerprint=fingerprint, dim_sets=dim_sets,
                            spheres=spheres)
        with self._lock:
            self._model = model
            self._reloads += 1
        return model

    @property
    def current(self) -> Optional[LoadedModel]:
        """The model new requests will use (``None`` before first load)."""
        with self._lock:
            return self._model

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly store state for ``/stats``."""
        with self._lock:
            model = self._model
            return {
                "loaded": model is not None,
                "reloads": self._reloads,
                **(model.describe() if model is not None else {}),
            }


def _error_payload(kind: str, message: str) -> Dict[str, Any]:
    """The structured error body every non-2xx response carries."""
    return {"error": {"type": kind, "message": message}}


class _ServeHTTPServer(ThreadingHTTPServer):
    """Thread-per-request server carrying a back-pointer to the app."""

    daemon_threads = True
    allow_reuse_address = True
    app: "ProclusServer"


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin shim: all logic lives on :class:`ProclusServer`."""

    server_version = "proclus-serve/1.0"
    protocol_version = "HTTP/1.0"

    def do_GET(self) -> None:
        cast(_ServeHTTPServer, self.server).app.dispatch(self, "GET")

    def do_POST(self) -> None:
        cast(_ServeHTTPServer, self.server).app.dispatch(self, "POST")

    def log_message(self, format: str, *args: Any) -> None:
        # request logging is the tracer's job; stderr chatter would race
        # with the CLI's own output
        return


class ProclusServer:
    """The hardened query server (see module docstring for guarantees).

    Parameters
    ----------
    config:
        Operational limits; ``None`` uses :class:`ServerConfig` defaults.
    model_path:
        Saved result to load before serving; ``None`` starts model-less
        (``/readyz`` reports 503 until ``/reload``).
    fault:
        Optional :class:`~repro.robustness.faults.ServeFaultSpec` the
        chaos suite injects into the predict path.
    """

    def __init__(self, config: Optional[ServerConfig] = None, *,
                 model_path: Optional[PathLike] = None,
                 fault: Optional[ServeFaultSpec] = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.store = ModelStore()
        self.admission = AdmissionController(self.config.max_concurrency,
                                             self.config.max_queue)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_after_s=self.config.breaker_reset_s)
        self._fault = fault
        self._ordinal_lock = threading.Lock()
        self._ordinal = 0
        self._draining = threading.Event()
        self._stats_lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._httpd: Optional[_ServeHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        if model_path is not None:
            self.store.load(model_path)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ProclusServer":
        """Bind the socket and serve in a daemon thread; returns self."""
        if self._httpd is not None:
            raise ServeError("server is already running")
        handler = type("_BoundHandler", (_RequestHandler,),
                       {"timeout": self.config.header_timeout_s})
        self._httpd = _ServeHTTPServer(
            (self.config.host, self.config.port), handler)
        self._httpd.app = self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="proclus-serve", daemon=True)
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._httpd is None:
            raise ServeError("server is not running")
        return int(self._httpd.server_address[1])

    def initiate_drain(self) -> None:
        """Stop admitting new predict work; in-flight requests continue."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        """Has a drain been initiated?"""
        return self._draining.is_set()

    def drain_and_stop(self, drain_s: Optional[float] = None) -> bool:
        """Drain in-flight work, then shut the listener down.

        Returns ``True`` for a clean drain (no request still in flight
        when the budget expired).  Safe to call more than once.
        """
        self._draining.set()
        budget = self.config.drain_s if drain_s is None else drain_s
        drained = self.admission.wait_idle(budget)
        httpd, thread = self._httpd, self._thread
        self._httpd, self._thread = None, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        return drained

    def run(self) -> int:
        """Blocking foreground entry point with the signal contract.

        First SIGINT/SIGTERM: stop admission, drain in-flight requests
        up to the drain budget, exit 0 (1 if the drain budget expired
        with work still in flight).  Second signal: hard exit 130.
        """
        stop = threading.Event()
        seen = {"signals": 0}

        def _on_signal(signum: int, frame: Any) -> None:
            seen["signals"] += 1
            if seen["signals"] >= 2:
                os._exit(130)
            self._draining.set()
            stop.set()

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, _on_signal)
        try:
            self.start()
            print(f"listening on http://{self.config.host}:{self.port}",
                  flush=True)
            stop.wait()
            drained = self.drain_and_stop()
            print("drained cleanly" if drained
                  else "drain budget expired with requests in flight",
                  flush=True)
            return 0 if drained else 1
        finally:
            for sig, old_handler in previous.items():
                signal.signal(sig, old_handler)

    # -- request handling ----------------------------------------------

    def dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        """Route one request and send its JSON response.

        The catch-all exists to uphold the structured-body contract:
        whatever goes wrong, the client receives JSON, not a traceback.
        """
        path = handler.path.split("?", 1)[0]
        self._count("requests")
        tracer = get_tracer()
        with tracer.span("serve.request", method=method, path=path) as span:
            try:
                status, payload, headers = self._route(handler, method, path)
            except Exception as exc:  # noqa: BLE001 - structured-500 backstop
                self._count("internal_errors")
                status, payload, headers = 500, _error_payload(
                    "internal", f"unhandled server error: {exc}"), {}
            span.set(status=status)
            self._send_json(handler, status, payload, headers)

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` document (counters + component snapshots)."""
        with self._stats_lock:
            counters = dict(self._counters)
        return {
            "counters": counters,
            "admission": self.admission.snapshot(),
            "breaker": self.breaker.snapshot(),
            "model": self.store.snapshot(),
            "draining": self._draining.is_set(),
        }

    def set_fault(self, fault: Optional[ServeFaultSpec]) -> None:
        """Install/clear an injected kernel fault (chaos tests only)."""
        self._fault = fault

    # ------------------------------------------------------------------

    def _route(self, handler: BaseHTTPRequestHandler, method: str,
               path: str) -> _Response:
        if method == "GET":
            if path == "/healthz":
                return 200, {"status": "ok",
                             "draining": self._draining.is_set()}, {}
            if path == "/readyz":
                return self._readyz()
            if path == "/stats":
                return 200, self.stats(), {}
            return 404, _error_payload("not_found", f"no route {path}"), {}
        if method == "POST":
            if path == "/predict":
                return self._predict(handler)
            if path == "/reload":
                return self._reload(handler)
            return 404, _error_payload("not_found", f"no route {path}"), {}
        return 405, _error_payload("method_not_allowed", method), {}

    def _readyz(self) -> _Response:
        if self._draining.is_set():
            return 503, {"ready": False, "reason": "draining"}, {}
        if self.store.current is None:
            return 503, {"ready": False, "reason": "no_model"}, {}
        if self.breaker.state == BREAKER_OPEN:
            return 503, {"ready": False, "reason": "circuit_open"}, {
                "Retry-After": self._retry_after_header()}
        return 200, {"ready": True}, {}

    def _predict(self, handler: BaseHTTPRequestHandler) -> _Response:
        cfg = self.config
        if self._draining.is_set():
            self._count("rejected_draining")
            return 503, _error_payload(
                "draining", "server is draining; no new work accepted"), {
                "Retry-After": "1"}
        model = self.store.current
        if model is None:
            return 503, _error_payload(
                "no_model", "no model is loaded; POST /reload first"), {}

        try:
            deadline = self._request_deadline(handler)
            body = self._read_body(handler, deadline)
        except (socket.timeout, TimeoutError, BudgetExceededError):
            self._count("read_timeouts")
            return 408, _error_payload(
                "request_timeout",
                "request body arrived too slowly for its deadline"), {}
        except (ParameterError, DataError) as exc:
            self._count("invalid_requests")
            return 400, _error_payload("invalid_request", str(exc)), {}
        try:
            obj = json.loads(body)
        except ValueError:
            self._count("invalid_requests")
            return 400, _error_payload(
                "invalid_json", "request body is not valid JSON"), {}
        if not isinstance(obj, dict) or "points" not in obj:
            self._count("invalid_requests")
            return 400, _error_payload(
                "invalid_request",
                'body must be a JSON object with a "points" array'), {}
        on_bad = obj.get("on_bad_values", cfg.on_bad_values)
        if on_bad not in BAD_VALUE_POLICIES:
            self._count("invalid_requests")
            return 400, _error_payload(
                "invalid_request",
                f"on_bad_values must be one of {BAD_VALUE_POLICIES}; "
                f"got {on_bad!r}"), {}

        if not self.admission.acquire(deadline.remaining()):
            self._count("shed")
            return 429, _error_payload(
                "overloaded",
                "admission queue is full; retry after the backlog "
                "clears"), {"Retry-After": "1"}
        try:
            if not self.breaker.allow():
                self._count("breaker_rejections")
                return 503, _error_payload(
                    "circuit_open",
                    "predict kernel circuit breaker is open"), {
                    "Retry-After": self._retry_after_header()}
            ordinal = self._next_ordinal()
            # every admitted call must resolve the breaker's half-open
            # probe: success/failure where the kernel gave a verdict,
            # abandon_probe when a typed error (deadline, bad batch)
            # ended the call before the kernel's health was exercised —
            # otherwise the probe slot leaks and the circuit would stay
            # HALF_OPEN, rejecting everything, until restart
            verdict_recorded = False
            try:
                try:
                    apply_serve_fault(self._fault, ordinal)
                    deadline.check("predict request")
                    report = predict_points(
                        obj["points"], model.result.medoids, model.dim_sets,
                        spheres=model.spheres, on_bad_values=on_bad,
                        max_points=cfg.max_points, chunk_size=cfg.chunk_size,
                        memory_budget_bytes=cfg.memory_budget_bytes,
                        deadline=deadline)
                except BudgetExceededError as exc:
                    self._count("deadline_exceeded")
                    return 504, _error_payload(
                        "deadline_exceeded", str(exc)), {}
                except (ParameterError, DataError) as exc:
                    self._count("invalid_requests")
                    return 400, _error_payload("invalid_request", str(exc)), {}
                except ReproError as exc:
                    # typed but unexpected here — still not a kernel failure
                    self._count("invalid_requests")
                    return 400, _error_payload(type(exc).__name__,
                                               str(exc)), {}
                except Exception as exc:  # noqa: BLE001 - breaker accounting
                    self.breaker.record_failure()
                    verdict_recorded = True
                    self._count("kernel_failures")
                    return 500, _error_payload(
                        "internal", f"predict kernel failed: {exc}"), {}
                self.breaker.record_success()
                verdict_recorded = True
            finally:
                if not verdict_recorded:
                    self.breaker.abandon_probe()
            self._count("predictions")
            tracer = get_tracer()
            if tracer.enabled:
                tracer.count("serve.predicted_points", report.n_points)
            payload = report.to_dict()
            payload["model"] = {"fingerprint": model.fingerprint}
            return 200, payload, {}
        finally:
            self.admission.release()

    def _reload(self, handler: BaseHTTPRequestHandler) -> _Response:
        deadline = Deadline.start(self.config.default_deadline_s)
        try:
            body = self._read_body(handler, deadline)
            obj = json.loads(body) if body else {}
        except (socket.timeout, TimeoutError, BudgetExceededError):
            self._count("read_timeouts")
            return 408, _error_payload(
                "request_timeout", "reload body arrived too slowly"), {}
        except (ParameterError, ValueError) as exc:
            return 400, _error_payload("invalid_request", str(exc)), {}
        current = self.store.current
        path = obj.get("path") if isinstance(obj, dict) else None
        if path is None and current is not None:
            path = current.path
        if not isinstance(path, str) or not path:
            return 400, _error_payload(
                "invalid_request",
                'reload needs a "path" (no model loaded to re-read)'), {}
        try:
            model = self.store.load(path)
        except (CheckpointError, DataError, ParameterError, OSError) as exc:
            self._count("reload_failures")
            return 400, _error_payload(
                "bad_model", f"reload rejected: {exc}"), {}
        self._count("reloads")
        return 200, {"reloaded": True, **model.describe()}, {}

    # ------------------------------------------------------------------

    def _request_deadline(self, handler: BaseHTTPRequestHandler) -> Deadline:
        raw = handler.headers.get("X-Deadline-S")
        if raw is None:
            return Deadline.start(self.config.default_deadline_s)
        try:
            budget = float(raw)
        except ValueError:
            raise ParameterError(
                f"X-Deadline-S must be a positive number; got {raw!r}")
        if not budget > 0 or not math.isfinite(budget):
            raise ParameterError(
                f"X-Deadline-S must be a positive finite number; got {raw!r}")
        return Deadline.start(min(budget, self.config.max_deadline_s))

    def _read_body(self, handler: BaseHTTPRequestHandler,
                   deadline: Deadline) -> bytes:
        raw_length = handler.headers.get("Content-Length")
        if raw_length is None:
            raise ParameterError("Content-Length header is required")
        try:
            length = int(raw_length)
        except ValueError:
            raise ParameterError(
                f"Content-Length must be an integer; got {raw_length!r}")
        if length < 0:
            raise ParameterError(f"Content-Length must be >= 0; got {length}")
        if length > self.config.max_body_bytes:
            raise ParameterError(
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit")
        data = bytearray()
        try:
            while len(data) < length:
                remaining_s = deadline.remaining()
                if remaining_s <= 0:
                    raise BudgetExceededError(
                        "request deadline expired while reading the body")
                # per-read socket timeout: a dribbling client cannot hold
                # the thread past its own deadline
                handler.connection.settimeout(remaining_s)
                chunk = handler.rfile.read(min(65536, length - len(data)))
                if not chunk:
                    raise ParameterError(
                        f"request body truncated at {len(data)} of {length} "
                        "bytes")
                data.extend(chunk)
        finally:
            # the response write must not inherit whatever sliver of
            # deadline the last body read left on the socket
            try:
                handler.connection.settimeout(self.config.header_timeout_s)
            except OSError:
                pass
        return bytes(data)

    def _retry_after_header(self) -> str:
        return str(max(1, int(math.ceil(self.breaker.retry_after_s()))))

    def _next_ordinal(self) -> int:
        with self._ordinal_lock:
            ordinal = self._ordinal
            self._ordinal += 1
            return ordinal

    def _count(self, name: str) -> None:
        with self._stats_lock:
            self._counters[name] = self._counters.get(name, 0) + 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count(f"serve.{name}")

    def _send_json(self, handler: BaseHTTPRequestHandler, status: int,
                   payload: Dict[str, Any],
                   headers: Dict[str, str]) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(body)))
            for key, value in headers.items():
                handler.send_header(key, value)
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, socket.timeout,
                TimeoutError, OSError):
            # the client gave up; nothing useful left to do with the socket
            self._count("client_disconnects")
