"""Per-model circuit breaker for the query server.

A projected-clustering model server has exactly one expensive dependency
— the predict kernel — and when that dependency starts failing
(corrupted model memory, a numpy regression, an injected chaos fault)
every admitted request burns a concurrency slot to produce another 500.
The breaker converts that failure mode into fast, explicit rejection:

* **CLOSED** — normal operation; consecutive kernel failures are
  counted, and :attr:`~CircuitBreaker.failure_threshold` of them in a
  row open the circuit.
* **OPEN** — every request is rejected up front (the server maps this
  to HTTP 503 with a ``Retry-After`` hint) until
  :attr:`~CircuitBreaker.reset_after_s` seconds have passed on the
  monotonic clock.
* **HALF_OPEN** — exactly one probe request is let through.  Success
  closes the circuit and clears the failure count; failure reopens it
  and restarts the timer.

Only *untyped* errors count as failures: a
:class:`~repro.exceptions.ParameterError` for a malformed batch or a
:class:`~repro.exceptions.BudgetExceededError` for an expired deadline
says nothing about kernel health, so the server never records those.
All timing goes through :func:`repro.obs.clock.monotonic_s` (the
sanctioned seam — wall clocks can step backwards and would reopen or
close circuits spuriously), and every transition is thread-safe: the
server's handler threads share one breaker per loaded model.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict

from ..exceptions import ParameterError
from ..obs.clock import monotonic_s

__all__ = ["BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
           "CircuitBreaker"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe CLOSED → OPEN → HALF_OPEN breaker on a monotonic timer.

    Parameters
    ----------
    failure_threshold:
        Consecutive :meth:`record_failure` calls (with no intervening
        :meth:`record_success`) that open the circuit.
    reset_after_s:
        Seconds the circuit stays open before a half-open probe is
        allowed.
    clock:
        Monotonic-seconds source; injectable so chaos tests can drive
        state transitions without sleeping.  Defaults to the library's
        sanctioned seam :func:`repro.obs.clock.monotonic_s`.
    """

    def __init__(self, *, failure_threshold: int = 5,
                 reset_after_s: float = 30.0,
                 clock: Callable[[], float] = monotonic_s) -> None:
        if failure_threshold < 1:
            raise ParameterError(
                f"failure_threshold must be >= 1; got {failure_threshold}")
        if reset_after_s < 0:
            raise ParameterError(
                f"reset_after_s must be >= 0; got {reset_after_s}")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self._n_opens = 0
        self._n_rejections = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, refreshing the OPEN → HALF_OPEN timer first."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a request proceed to the kernel right now?

        In HALF_OPEN only one caller gets ``True`` (the probe); everyone
        else is rejected until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN and not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            self._n_rejections += 1
            return False

    def record_success(self) -> None:
        """A kernel call completed: close the circuit, clear the count."""
        with self._lock:
            self._state = BREAKER_CLOSED
            self._consecutive_failures = 0
            self._probe_outstanding = False

    def abandon_probe(self) -> None:
        """An admitted call ended with no kernel verdict: free the probe.

        A HALF_OPEN probe can die of a *typed* error — a malformed
        batch, an expired deadline — before the kernel ever runs.  That
        says nothing about kernel health, so neither
        :meth:`record_success` nor :meth:`record_failure` applies; but
        the probe slot must be returned, or the circuit would sit in
        HALF_OPEN rejecting every request forever (the OPEN→HALF_OPEN
        timer never fires again).  State is unchanged; the next
        :meth:`allow` hands the probe to another caller.
        """
        with self._lock:
            self._probe_outstanding = False

    def record_failure(self) -> None:
        """An *untyped* kernel failure: count it, maybe open the circuit.

        A failed HALF_OPEN probe reopens immediately regardless of the
        threshold — the dependency just proved it is still broken.
        """
        with self._lock:
            self._consecutive_failures += 1
            if (self._state == BREAKER_HALF_OPEN
                    or self._consecutive_failures >= self.failure_threshold):
                if self._state != BREAKER_OPEN:
                    self._n_opens += 1
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self._probe_outstanding = False

    def retry_after_s(self) -> float:
        """Seconds until a half-open probe will be allowed (0 unless OPEN)."""
        with self._lock:
            if self._state != BREAKER_OPEN:
                return 0.0
            return max(0.0, self.reset_after_s
                       - (self._clock() - self._opened_at))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly state for ``/stats`` and drain logging."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "probe_outstanding": self._probe_outstanding,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_after_s": self.reset_after_s,
                "opens": self._n_opens,
                "rejections": self._n_rejections,
            }

    # ------------------------------------------------------------------
    def _maybe_half_open(self) -> None:
        """Lock held: move OPEN to HALF_OPEN once the timer has elapsed."""
        if (self._state == BREAKER_OPEN
                and self._clock() - self._opened_at >= self.reset_after_s):
            self._state = BREAKER_HALF_OPEN
            self._probe_outstanding = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self._consecutive_failures})")
