"""Retrying HTTP client for the PROCLUS query server.

The server side sheds load (429), breaks circuits (503), and enforces
deadlines (504) — behaviour that only pays off when clients react
correctly.  This client encodes the well-behaved reaction:

* **Retry only what the server says is retryable** — 429 and 503
  responses and transport-level connection failures.  Validation
  errors (400) raise :class:`~repro.exceptions.ParameterError`
  immediately, deadline failures (408/504)
  :class:`~repro.exceptions.BudgetExceededError`, and server-internal
  500s :class:`~repro.exceptions.ServeError` — repeating any of those
  verbatim would just reproduce the failure.
* **Jittered exponential backoff** — doubling waits with multiplicative
  jitter so a fleet of clients does not re-dogpile a recovering server
  in lockstep.  Jitter comes from a seeded
  :func:`repro.rng.ensure_rng` generator (the library bans global-state
  RNG everywhere, clients included), so tests are reproducible.
* **``Retry-After`` is honoured** — the server's hint (breaker reset
  remaining, shed backoff) overrides a shorter computed backoff.
* **A total deadline caps everything** — retries never extend past
  :attr:`RetryPolicy.total_deadline_s`; when the next backoff would
  cross it, the client gives up with a typed
  :class:`~repro.exceptions.ServeError`.
"""

from __future__ import annotations

import http.client
import json
import math
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..exceptions import BudgetExceededError, ParameterError, ServeError
from ..rng import SeedLike, ensure_rng
from ..robustness.guards import Deadline

__all__ = ["RetryPolicy", "PredictClient"]

#: Statuses worth repeating: transient overload/unavailability signals.
_RETRYABLE_STATUSES = (429, 502, 503)


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently the client repeats retryable failures.

    ``total_deadline_s=None`` means no overall cap (per-attempt socket
    timeouts still apply); retries stop after ``max_attempts`` either
    way.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    jitter_fraction: float = 0.5
    total_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1; got {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ParameterError("backoff seconds must be >= 0")
        if not 0 <= self.jitter_fraction <= 1:
            raise ParameterError(
                f"jitter_fraction must lie in [0, 1]; got "
                f"{self.jitter_fraction}")
        if self.total_deadline_s is not None and self.total_deadline_s <= 0:
            raise ParameterError(
                f"total_deadline_s must be positive; got "
                f"{self.total_deadline_s}")


class PredictClient:
    """Typed client for :class:`~repro.serve.server.ProclusServer`.

    Parameters
    ----------
    host / port:
        Server address.
    policy:
        Retry behaviour; ``None`` uses :class:`RetryPolicy` defaults.
    request_timeout_s:
        Per-attempt socket timeout (connect + response).
    seed:
        Seed for backoff jitter (tests pin it for reproducible timing).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8437, *,
                 policy: Optional[RetryPolicy] = None,
                 request_timeout_s: float = 10.0,
                 seed: SeedLike = None) -> None:
        if request_timeout_s <= 0:
            raise ParameterError(
                f"request_timeout_s must be positive; got "
                f"{request_timeout_s}")
        self.host = host
        self.port = int(port)
        self.policy = policy if policy is not None else RetryPolicy()
        self.request_timeout_s = float(request_timeout_s)
        self._rng = ensure_rng(seed)

    # -- endpoints -----------------------------------------------------

    def predict(self, points: Any, *, deadline_s: Optional[float] = None,
                on_bad_values: Optional[str] = None) -> Dict[str, Any]:
        """POST a query batch; returns the parsed success body.

        ``deadline_s`` becomes the server-side ``X-Deadline-S`` budget;
        ``on_bad_values`` overrides the server's NaN/inf policy for
        this batch.  Labels come back under ``"labels"``.
        """
        payload: Dict[str, Any] = {"points": np.asarray(points).tolist()}
        if on_bad_values is not None:
            payload["on_bad_values"] = on_bad_values
        headers: Dict[str, str] = {}
        if deadline_s is not None:
            headers["X-Deadline-S"] = f"{float(deadline_s):g}"
        return self._request("POST", "/predict", payload, headers)

    def reload(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Hot-swap the served model (server re-reads its current path
        when ``path`` is ``None``)."""
        body: Dict[str, Any] = {} if path is None else {"path": str(path)}
        return self._request("POST", "/reload", body, {})

    def healthz(self) -> Dict[str, Any]:
        """Liveness document (200 even while draining)."""
        return self._request("GET", "/healthz", None, {})

    def ready(self) -> bool:
        """True when the server would accept a predict right now."""
        try:
            status, _, _ = self._once("GET", "/readyz", None, {},
                                      self.request_timeout_s)
        except (OSError, http.client.HTTPException):
            return False
        return status == 200

    def stats(self) -> Dict[str, Any]:
        """The server's counter/breaker/admission snapshot."""
        return self._request("GET", "/stats", None, {})

    # -- machinery -----------------------------------------------------

    def _once(self, method: str, path: str,
              payload: Optional[Dict[str, Any]], headers: Dict[str, str],
              timeout_s: float) -> Tuple[int, Dict[str, str],
                                         Dict[str, Any]]:
        """One HTTP attempt; returns (status, headers, parsed body)."""
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout_s)
        try:
            send_headers = dict(headers)
            send_headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=send_headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                obj = json.loads(raw) if raw else {}
            except ValueError:
                obj = {"error": {"type": "non_json",
                                 "message": raw[:200].decode("utf-8",
                                                             "replace")}}
            resp_headers = {k: v for k, v in resp.getheaders()}
            return resp.status, resp_headers, obj
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]],
                 headers: Dict[str, str]) -> Dict[str, Any]:
        policy = self.policy
        deadline = Deadline.start(policy.total_deadline_s)
        last_failure = "no attempt made"
        for attempt in range(1, policy.max_attempts + 1):
            timeout_s = self.request_timeout_s
            remaining = deadline.remaining()
            if math.isfinite(remaining):
                if remaining <= 0:
                    break
                timeout_s = min(timeout_s, remaining)
            retry_after = 0.0
            try:
                status, resp_headers, obj = self._once(
                    method, path, payload, headers, timeout_s)
            except (OSError, http.client.HTTPException) as exc:
                # HTTPException covers garbled/truncated responses
                # (BadStatusLine, IncompleteRead) that are not OSErrors;
                # both are transport failures, so both retry
                last_failure = f"connection failed: {exc}"
            else:
                if status < 300:
                    return obj
                message = self._error_message(obj, status)
                if status == 400:
                    raise ParameterError(message)
                if status in (408, 504):
                    raise BudgetExceededError(message)
                if status not in _RETRYABLE_STATUSES:
                    raise ServeError(
                        f"server returned {status} for {method} {path}: "
                        f"{message}")
                last_failure = f"{status}: {message}"
                try:
                    retry_after = float(resp_headers.get("Retry-After", "0"))
                except ValueError:
                    retry_after = 0.0
            if attempt >= policy.max_attempts:
                break
            backoff = min(policy.max_backoff_s,
                          policy.base_backoff_s * 2.0 ** (attempt - 1))
            backoff *= 1.0 + policy.jitter_fraction * float(
                self._rng.random())
            backoff = max(backoff, retry_after)
            if backoff >= deadline.remaining():
                raise ServeError(
                    f"{method} {path} gave up: total deadline of "
                    f"{policy.total_deadline_s:g}s would expire during "
                    f"backoff (last failure: {last_failure})")
            time.sleep(backoff)
        raise ServeError(
            f"{method} {path} failed after {policy.max_attempts} "
            f"attempt(s); last failure: {last_failure}")

    @staticmethod
    def _error_message(obj: Dict[str, Any], status: int) -> str:
        error = obj.get("error") if isinstance(obj, dict) else None
        if isinstance(error, dict):
            return f"[{error.get('type', 'error')}] {error.get('message', '')}"
        return f"HTTP {status}"
