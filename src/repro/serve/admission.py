"""Bounded admission control for the query server.

The predict kernel is CPU-bound, so running more than a handful of
batches concurrently only adds context-switch overhead and memory
pressure; and an unbounded backlog converts a load spike into unbounded
latency for *everyone* (every queued request eventually times out
anyway).  The controller therefore enforces two small numbers:

* ``max_concurrency`` — predict batches allowed in the kernel at once;
* ``max_queue`` — requests allowed to *wait* for a slot.

A request beyond both limits is **shed immediately** — the server maps
that to HTTP 429 with ``Retry-After`` — which keeps the latency of
admitted requests bounded and tells well-behaved clients exactly when
to come back.  Shedding early is the robust choice: a clustered answer
a client has already given up on is pure waste.

The controller also owns the **drain barrier**: on SIGTERM the server
stops admitting and calls :meth:`AdmissionController.wait_idle`, which
blocks until the last in-flight batch finishes (or the drain budget
expires).  In-flight work is never cancelled — partial batches are the
one thing the serving contract forbids.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional

from ..exceptions import ParameterError
from ..robustness.guards import Deadline

__all__ = ["AdmissionController"]


class AdmissionController:
    """Concurrency-slot + bounded-wait-queue gate for predict requests.

    Parameters
    ----------
    max_concurrency:
        Requests allowed past :meth:`acquire` at the same time (>= 1).
    max_queue:
        Requests allowed to block *waiting* for a slot (>= 0; 0 means
        shed the moment every slot is busy).
    """

    def __init__(self, max_concurrency: int = 4, max_queue: int = 16) -> None:
        if max_concurrency < 1:
            raise ParameterError(
                f"max_concurrency must be >= 1; got {max_concurrency}")
        if max_queue < 0:
            raise ParameterError(f"max_queue must be >= 0; got {max_queue}")
        self.max_concurrency = int(max_concurrency)
        self.max_queue = int(max_queue)
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._admitted_total = 0
        self._shed_total = 0

    # ------------------------------------------------------------------
    def acquire(self, timeout_s: Optional[float] = None) -> bool:
        """Claim a slot; ``True`` when admitted, ``False`` when shed.

        Shedding happens either immediately (queue full) or when
        ``timeout_s`` expires while waiting — a request whose deadline
        passed in the queue must not reach the kernel.  Every ``True``
        must be paired with exactly one :meth:`release`.
        """
        deadline = Deadline.start(timeout_s)
        with self._cond:
            if self._active < self.max_concurrency:
                self._active += 1
                self._admitted_total += 1
                return True
            if self._waiting >= self.max_queue:
                self._shed_total += 1
                return False
            self._waiting += 1
            try:
                while self._active >= self.max_concurrency:
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        self._shed_total += 1
                        return False
                    self._cond.wait(
                        None if math.isinf(remaining) else remaining)
                self._active += 1
                self._admitted_total += 1
                return True
            finally:
                self._waiting -= 1

    def release(self) -> None:
        """Return a slot claimed by a successful :meth:`acquire`."""
        with self._cond:
            if self._active <= 0:
                raise ParameterError(
                    "release() without a matching successful acquire()")
            self._active -= 1
            self._cond.notify_all()

    def wait_idle(self, budget_s: Optional[float] = None) -> bool:
        """Block until no request is in flight; the drain barrier.

        Returns ``True`` when the controller went idle within
        ``budget_s`` seconds, ``False`` when the budget expired with
        work still in flight (the server then reports an unclean drain).
        """
        deadline = Deadline.start(budget_s)
        with self._cond:
            while self._active > 0:
                remaining = deadline.remaining()
                if remaining <= 0:
                    return False
                self._cond.wait(None if math.isinf(remaining) else remaining)
            return True

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Requests currently holding a slot."""
        with self._cond:
            return self._active

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        with self._cond:
            return self._waiting

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly counters for ``/stats``."""
        with self._cond:
            return {
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
                "inflight": self._active,
                "queued": self._waiting,
                "admitted_total": self._admitted_total,
                "shed_total": self._shed_total,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AdmissionController(inflight={self.inflight}, "
                f"queued={self.queued})")
