"""Allow ``python -m repro`` to invoke the CLI."""

import sys

from .cli import main

sys.exit(main())
