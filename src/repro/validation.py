"""Input validation helpers shared by every public entry point.

The functions here normalise user input into canonical numpy form and
raise :class:`~repro.exceptions.ParameterError` /
:class:`~repro.exceptions.DataError` with actionable messages.  They are
deliberately small and composable; algorithm modules call them at the top
of their public functions and then assume clean input internally.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from .dtypes import as_working, check_dtype  # noqa: F401 - re-exported
from .exceptions import DataError, ParameterError

__all__ = [
    "check_array",
    "check_dtype",
    "check_positive_int",
    "check_fraction",
    "check_k_l",
    "check_dimension_subset",
    "check_max_retries",
    "check_n_jobs",
    "check_same_length",
    "check_time_budget",
]


def check_array(X, *, name: str = "X", min_rows: int = 1, min_cols: int = 1,
                allow_1d: bool = False, dtype=None,
                allow_nonfinite: bool = False) -> np.ndarray:
    """Coerce ``X`` to a 2-D float array and validate its contents.

    Parameters
    ----------
    X:
        Array-like of shape ``(n_points, n_dims)`` (or 1-D when
        ``allow_1d`` is true, in which case it is reshaped to a row).
    name:
        Name used in error messages.
    min_rows, min_cols:
        Minimum acceptable shape.
    allow_1d:
        Accept a single point given as a 1-D sequence.
    dtype:
        Target dtype.  ``None`` (default) preserves a float32/float64
        input's *working dtype* and coerces everything else (lists,
        integer arrays, float16, ...) to float64 — see
        :mod:`repro.dtypes`.  Pass an explicit dtype to force a
        conversion (the public ``proclus(..., dtype=...)`` boundary
        does this once; internal call sites preserve).
    allow_nonfinite:
        Skip the NaN/inf content check.  Used by the sanitization
        pipeline (:mod:`repro.robustness`), which needs the shape checks
        but handles bad values itself.

    Returns
    -------
    numpy.ndarray
        A C-contiguous 2-D array of the resolved dtype.

    Raises
    ------
    DataError
        If the array is empty, has the wrong rank, or contains NaN/inf.
    """
    arr = as_working(X) if dtype is None else np.asarray(X, dtype=dtype)
    if arr.ndim == 1:
        if not allow_1d:
            raise DataError(
                f"{name} must be 2-dimensional (n_points, n_dims); "
                f"got a 1-D array of length {arr.shape[0]}"
            )
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DataError(f"{name} must be 2-dimensional; got ndim={arr.ndim}")
    if arr.shape[0] < min_rows:
        raise DataError(
            f"{name} must have at least {min_rows} row(s); got {arr.shape[0]}"
        )
    if arr.shape[1] < min_cols:
        raise DataError(
            f"{name} must have at least {min_cols} column(s); got {arr.shape[1]}"
        )
    if not allow_nonfinite and not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_positive_int(value, *, name: str, minimum: int = 1,
                       maximum: Optional[int] = None) -> int:
    """Validate an integral parameter and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ParameterError(f"{name} must be an integer; got {value!r}")
    value = int(value)
    if value < minimum:
        raise ParameterError(f"{name} must be >= {minimum}; got {value}")
    if maximum is not None and value > maximum:
        raise ParameterError(f"{name} must be <= {maximum}; got {value}")
    return value


def check_fraction(value, *, name: str, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Validate a float in [0, 1] (bounds optionally exclusive)."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ParameterError(f"{name} must be a float in [0, 1]; got {value!r}")
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        raise ParameterError(f"{name} must lie in [0, 1]; got {value}")
    return value


def check_k_l(k, l, n_dims: int, n_points: Optional[int] = None) -> tuple:
    """Validate PROCLUS's ``k`` (clusters) and ``l`` (average dims).

    The paper requires ``l >= 2`` per cluster (so average ``l >= 2``),
    ``l <= d``, and that ``k * l`` is integral.  ``l`` may be fractional
    as long as ``k * l`` is a whole number.
    """
    k = check_positive_int(k, name="k", minimum=1)
    try:
        l = float(l)
    except (TypeError, ValueError):
        raise ParameterError(f"l must be numeric; got {l!r}")
    if l < 2:
        raise ParameterError(f"l (average cluster dimensionality) must be >= 2; got {l}")
    if l > n_dims:
        raise ParameterError(
            f"l must be <= data dimensionality d={n_dims}; got {l}"
        )
    total = k * l
    if abs(total - round(total)) > 1e-9:
        raise ParameterError(
            f"k * l must be integral (paper, section 1); got k={k}, l={l}"
        )
    if n_points is not None and k > n_points:
        raise ParameterError(
            f"k={k} exceeds the number of data points N={n_points}"
        )
    return k, l


def check_dimension_subset(dims: Iterable[int], n_dims: int, *,
                           name: str = "dims") -> np.ndarray:
    """Validate a set of dimension indices against dimensionality ``n_dims``."""
    arr = np.asarray(sorted(set(int(j) for j in dims)), dtype=np.intp)
    if arr.size == 0:
        raise ParameterError(f"{name} must be non-empty")
    if arr[0] < 0 or arr[-1] >= n_dims:
        raise ParameterError(
            f"{name} must contain indices in [0, {n_dims - 1}]; got {arr.tolist()}"
        )
    return arr


def check_time_budget(value, *, name: str = "time_budget_s"):
    """Validate an optional wall-clock budget: ``None`` or a float >= 0."""
    if value is None:
        return None
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ParameterError(
            f"{name} must be None or a non-negative number; got {value!r}"
        )
    if not np.isfinite(value) or value < 0:
        raise ParameterError(f"{name} must be >= 0 and finite; got {value}")
    return value


def check_n_jobs(value, *, name: str = "n_jobs") -> int:
    """Validate a worker-count knob: an int ``>= 1``, or ``-1`` (all cores).

    Returns the value unchanged (``-1`` is resolved to a concrete core
    count later, by :func:`repro.perf.parallel.resolve_n_jobs`).
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ParameterError(f"{name} must be an integer; got {value!r}")
    value = int(value)
    if value == 0 or value < -1:
        raise ParameterError(
            f"{name} must be >= 1, or -1 for all cores; got {value}"
        )
    return value


def check_max_retries(value, *, name: str = "max_retries") -> int:
    """Validate a retry budget: an integer ``>= 0`` (0 disables retries)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ParameterError(f"{name} must be an integer; got {value!r}")
    value = int(value)
    if value < 0:
        raise ParameterError(f"{name} must be >= 0; got {value}")
    return value


def check_same_length(a: Sequence, b: Sequence, *, names=("a", "b")) -> None:
    """Raise :class:`DataError` unless ``len(a) == len(b)``."""
    if len(a) != len(b):
        raise DataError(
            f"{names[0]} and {names[1]} must have equal length; "
            f"got {len(a)} and {len(b)}"
        )
