"""Deterministic random-number plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument
that may be ``None`` (fresh entropy), an ``int``, or an existing
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises the three
forms.  :func:`spawn` derives independent child generators so that, e.g.,
the PROCLUS initialization and iterative phases consume decoupled
streams — inserting extra draws in one phase does not perturb the other,
which keeps regression tests stable across refactors.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["ensure_rng", "spawn", "SeedLike"]

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    ``None`` gives fresh OS entropy; an ``int`` gives a reproducible
    generator; an existing generator is passed through unchanged (shared,
    not copied — callers who need isolation should use :func:`spawn`).
    """
    if seed is None:
        # the one sanctioned fresh-entropy point in the library
        return np.random.default_rng()  # repr: noqa RPR001
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Uses the generator's underlying ``SeedSequence`` machinery when
    available, falling back to integer reseeding otherwise.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0; got {n}")
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is not None:
        return [np.random.default_rng(s) for s in seed_seq.spawn(n)]
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
