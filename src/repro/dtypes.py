"""The sanctioned dtype seam for the precision-aware compute path.

The numeric core supports two *working dtypes*: ``float64`` (the
default, bit-identical to the historical implementation) and ``float32``
(opt-in via ``proclus(..., dtype="float32")`` — half the memory traffic
on every bandwidth-bound kernel).  The contract is:

* the public boundary (:func:`repro.validation.check_array` /
  :func:`repro.robustness.sanitize.sanitize`) converts the input matrix
  to the requested working dtype **once**;
* every kernel downstream *preserves* the working dtype of the arrays
  it receives — no silent up-casts back to float64 inside
  ``core``/``perf``/``distance`` (lint rule RPR006 enforces this);
* reductions whose rounding error would affect an argmin/ranking
  decision accumulate in float64 regardless of the working dtype, and
  route through :func:`to_float64` so the up-cast is explicit and
  auditable.  The per-kernel accumulation policy is documented in
  ``docs/performance.md``.

This module is the only place allowed to spell the coercions out, which
is why it lives *outside* the determinism-scoped directories.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from .exceptions import ParameterError

__all__ = [
    "WORKING_DTYPES",
    "check_dtype",
    "working_dtype",
    "as_working",
    "to_float64",
]

#: The dtypes the compute path runs natively in.  Anything else is
#: coerced to float64 at the boundary (ints, lists, float16, ...).
WORKING_DTYPES: Tuple[np.dtype, ...] = (np.dtype(np.float64),
                                        np.dtype(np.float32))


def check_dtype(value: Any, *, name: str = "dtype") -> str:
    """Validate a user-facing dtype knob; returns ``"float64"``/``"float32"``.

    Accepts dtype names, ``np.float32``/``np.float64``, ``np.dtype``
    instances, or ``None`` (the float64 default).  Anything outside the
    two working dtypes raises :class:`~repro.exceptions.ParameterError`
    — the compute path is validated for these two only.
    """
    if value is None:
        return "float64"
    try:
        dt = np.dtype(value)
    except TypeError:
        raise ParameterError(
            f"{name} must be 'float64' or 'float32'; got {value!r}"
        )
    if dt not in WORKING_DTYPES:
        raise ParameterError(
            f"{name} must be 'float64' or 'float32'; got {dt.name!r}"
        )
    return str(dt.name)


def working_dtype(X: Any) -> np.dtype:
    """The working dtype an array-like maps to: itself if float32/float64,
    else float64."""
    dt = getattr(X, "dtype", None)
    if dt is not None and dt in WORKING_DTYPES:
        return np.dtype(dt)
    return np.dtype(np.float64)


def as_working(X: Any) -> np.ndarray:
    """Coerce to a working-dtype array, preserving float32/float64 input.

    A float32 or float64 ndarray passes through as-is (no copy); every
    other input — lists, integer arrays, float16 — is coerced to
    float64, exactly as the historical kernels did.  This is the
    dtype-preserving replacement for ``np.asarray(X, dtype=np.float64)``
    inside the numeric core.
    """
    return np.asarray(X, dtype=working_dtype(X))


def to_float64(X: Any) -> np.ndarray:
    """Explicit float64 up-cast for ranking/accumulation domains.

    Some reductions feed order statistics (the Z-score ranking behind
    dimension allocation, the hill climb's objective comparison) where
    float32 rounding could flip an argmin between otherwise-identical
    runs.  Those domains compute in float64 regardless of the working
    dtype; this helper is their sanctioned seam, so the up-casts stay
    greppable and RPR006-clean.
    """
    return np.asarray(X, dtype=np.float64)
