"""Ablation studies for the design choices the paper motivates.

The paper argues for, but does not always quantify:

* the two-step initialization (sample then greedy) versus alternatives
  (:func:`run_initialization_ablation`);
* the bad-medoid threshold ``minDeviation = 0.1``
  (:func:`run_min_deviation_ablation`);
* the pool multipliers ``A`` and ``B``
  (:func:`run_pool_size_ablation`);
* Theorem 3.1 — random medoids see localities of expected size ``N/k``
  (:func:`run_locality_theorem_check`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.dimensions import compute_localities
from ..core.greedy import greedy_select
from ..core.iterative import run_iterative_phase
from ..core.proclus import proclus
from ..data.dataset import Dataset
from ..data.synthetic import SyntheticDataGenerator
from ..metrics.external import adjusted_rand_index
from ..perf.parallel import parallel_map
from ..rng import ensure_rng
from .configs import make_case_config
from .registry import register_experiment
from .tables import format_table

__all__ = [
    "AblationReport",
    "run_initialization_ablation",
    "run_min_deviation_ablation",
    "run_pool_size_ablation",
    "run_locality_theorem_check",
    "LocalityCheckReport",
]


@dataclass
class AblationReport:
    """Rows of (variant, metrics) for one ablated knob."""

    knob: str
    rows: List[Dict[str, float]] = field(default_factory=list)

    def to_text(self) -> str:
        """ASCII rendering; one row per variant."""
        if not self.rows:
            return f"Ablation of {self.knob}: no rows"
        keys = [k for k in self.rows[0] if k != "variant"]
        table_rows = [
            [r["variant"], *[f"{r[k]:.4g}" for k in keys]] for r in self.rows
        ]
        return format_table(
            ["variant", *keys], table_rows, title=f"Ablation: {self.knob}",
        )

    def best_by(self, key: str, *, minimize: bool = False) -> Dict[str, float]:
        """The row with the best value of ``key``."""
        pick = min if minimize else max
        return pick(self.rows, key=lambda r: r[key])

    def row_for(self, variant: str) -> Dict[str, float]:
        """The row for a named variant."""
        for r in self.rows:
            if r["variant"] == variant:
                return r
        raise KeyError(f"no variant {variant!r}")


def _case_dataset(n_points: int, seed: int, case: int = 1) -> Dataset:
    cfg = make_case_config(case, n_points=n_points, seed=seed)
    return SyntheticDataGenerator(cfg.synthetic_config()).generate(), cfg


def run_initialization_ablation(*, n_points: int = 5000, n_seeds: int = 3,
                                seed: int = 1999) -> AblationReport:
    """Greedy-on-sample (paper) vs random pool vs greedy-on-full-data.

    All variants feed the same iterative+refinement pipeline; quality is
    the ARI against ground truth, averaged over ``n_seeds`` runs.
    """
    ds, cfg = _case_dataset(n_points, seed)
    k, l = cfg.n_clusters, cfg.l
    pool_size = 5 * k
    sample_size = 30 * k
    report = AblationReport(knob="initialization strategy")

    def pipeline(pool: np.ndarray, run_seed: int) -> Tuple[float, float]:
        phase2 = run_iterative_phase(ds.points, pool, k, l, seed=run_seed,
                                     keep_history=False)
        ari = adjusted_rand_index(phase2.labels, ds.labels)
        return ari, phase2.objective

    variants = {
        "greedy_on_sample (paper)": "paper",
        "random_pool": "random",
        "greedy_on_full": "full",
    }
    for label, mode in variants.items():
        aris, objs, secs = [], [], []
        for s in range(n_seeds):
            rng = ensure_rng(seed + 17 * s)
            t0 = time.perf_counter()
            if mode == "paper":
                sample = rng.choice(ds.n_points, size=sample_size, replace=False)
                local = greedy_select(ds.points[sample], pool_size, seed=rng)
                pool = sample[local]
            elif mode == "random":
                pool = rng.choice(ds.n_points, size=pool_size, replace=False)
            else:
                pool = greedy_select(ds.points, pool_size, seed=rng)
            ari, obj = pipeline(pool, run_seed=seed + 17 * s + 1)
            secs.append(time.perf_counter() - t0)
            aris.append(ari)
            objs.append(obj)
        report.rows.append({
            "variant": label,
            "ari": float(np.mean(aris)),
            "objective": float(np.mean(objs)),
            "seconds": float(np.mean(secs)),
        })
    return report


def run_min_deviation_ablation(*, n_points: int = 5000,
                               values: Sequence[float] = (0.01, 0.05, 0.1, 0.3, 0.5),
                               seed: int = 1999,
                               n_jobs: int = 1) -> AblationReport:
    """Sweep the bad-medoid threshold (paper default 0.1).

    ``n_jobs > 1`` evaluates the grid values concurrently
    (:func:`repro.perf.parallel.parallel_map`); every value keeps its
    own fixed seed, so the rows are identical in either mode.
    """
    ds, cfg = _case_dataset(n_points, seed)
    report = AblationReport(knob="min_deviation")

    def evaluate(v):
        result = proclus(ds.points, cfg.n_clusters, cfg.l,
                         min_deviation=v, seed=seed + 1, keep_history=False)
        return {
            "variant": f"{v:g}",
            "ari": adjusted_rand_index(result.labels, ds.labels),
            "objective": result.objective,
            "outliers": float(result.n_outliers),
        }

    report.rows.extend(parallel_map(evaluate, values, n_jobs=n_jobs))
    return report


def run_pool_size_ablation(*, n_points: int = 5000,
                           a_values: Sequence[int] = (5, 15, 30, 60),
                           b_values: Sequence[int] = (2, 5, 10),
                           seed: int = 1999,
                           n_jobs: int = 1) -> AblationReport:
    """Sweep the A (sample) and B (pool) multipliers jointly.

    ``n_jobs > 1`` evaluates the (A, B) grid concurrently
    (:func:`repro.perf.parallel.parallel_map`); every cell keeps its
    own fixed seed, so the rows are identical in either mode.
    """
    ds, cfg = _case_dataset(n_points, seed)
    report = AblationReport(knob="sample_factor (A) x pool_factor (B)")
    grid = [(a, b) for a in a_values for b in b_values if b <= a]

    def evaluate(cell):
        a, b = cell
        result = proclus(ds.points, cfg.n_clusters, cfg.l,
                         sample_factor=a, pool_factor=b,
                         seed=seed + 1, keep_history=False)
        return {
            "variant": f"A={a},B={b}",
            "ari": adjusted_rand_index(result.labels, ds.labels),
            "objective": result.objective,
        }

    report.rows.extend(parallel_map(evaluate, grid, n_jobs=n_jobs))
    return report


@dataclass
class LocalityCheckReport:
    """Empirical check of Theorem 3.1."""

    n_points: int
    k: int
    expected: float
    observed_mean: float
    observed_per_trial: List[float] = field(default_factory=list)

    @property
    def relative_error(self) -> float:
        """|observed - expected| / expected."""
        return abs(self.observed_mean - self.expected) / self.expected

    def to_text(self) -> str:
        """One-paragraph summary."""
        return (
            f"Theorem 3.1 check: N={self.n_points}, k={self.k}\n"
            f"  expected locality size N/k = {self.expected:.1f}\n"
            f"  observed mean              = {self.observed_mean:.1f}"
            f"  (relative error {self.relative_error:.1%})"
        )


def run_locality_theorem_check(*, n_points: int = 5000, k: int = 5,
                               n_dims: int = 20, n_trials: int = 60,
                               seed: int = 42) -> LocalityCheckReport:
    """Theorem 3.1: random medoids have expected locality size ``N/k``.

    Uses uniform data (the theorem's order-statistics argument assumes
    nothing about structure) and averages the mean locality size over
    ``n_trials`` random medoid draws.  The locality here includes all
    points within ``delta_i`` (medoid excluded), matching the library's
    :func:`~repro.core.dimensions.compute_localities`.
    """
    rng = ensure_rng(seed)
    X = rng.uniform(0, 100, size=(n_points, n_dims))
    sizes: List[float] = []
    for _ in range(n_trials):
        medoids = rng.choice(n_points, size=k, replace=False)
        localities, _ = compute_localities(X, medoids, min_locality_size=0)
        sizes.append(float(np.mean([len(loc) for loc in localities])))
    return LocalityCheckReport(
        n_points=n_points, k=k, expected=n_points / k,
        observed_mean=float(np.mean(sizes)), observed_per_trial=sizes,
    )


register_experiment(
    "ablation-init", run_initialization_ablation,
    "Ablation: greedy-on-sample initialization vs random vs greedy-on-full",
)
register_experiment(
    "ablation-mindev", run_min_deviation_ablation,
    "Ablation: bad-medoid threshold minDeviation",
)
register_experiment(
    "ablation-pool", run_pool_size_ablation,
    "Ablation: initialization multipliers A and B",
)
register_experiment(
    "theorem31", run_locality_theorem_check,
    "Theorem 3.1: expected locality size N/k under random medoids",
)
