"""Accuracy experiments: Tables 1-4.

One runner covers both cases: generate the case's workload, run
PROCLUS with the matching ``(k, l)``, and report

* the dimension tables (paper Tables 1-2): input clusters with their
  dimension sets and sizes on top, output clusters below;
* the confusion matrix (paper Tables 3-4);
* summary quality numbers (dominance, dimension exact-match rate,
  ARI) that the benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.proclus import proclus
from ..core.result import ProclusResult
from ..data.dataset import Dataset
from ..data.synthetic import SyntheticDataGenerator
from ..metrics.confusion import ConfusionMatrix, confusion_matrix
from ..metrics.dimensions import DimensionMatchReport, match_dimension_sets
from ..metrics.external import adjusted_rand_index
from ..metrics.matching import match_clusters
from .configs import CaseConfig, SCALED_N, make_case_config
from .registry import register_experiment
from .tables import format_table

__all__ = ["AccuracyReport", "run_accuracy_case", "CASE1", "CASE2"]

CASE1 = 1
CASE2 = 2


@dataclass
class AccuracyReport:
    """Everything Tables 1-4 show, for one case at one scale."""

    case: CaseConfig
    dataset: Dataset
    result: ProclusResult
    confusion: ConfusionMatrix
    matching: Dict[int, int]
    dimension_report: DimensionMatchReport
    ari: float
    seconds: float = 0.0

    # -- headline quantities -------------------------------------------
    @property
    def mean_dominance(self) -> float:
        """Mean dominant-entry fraction over output clusters."""
        vals = [self.confusion.dominance(cid)
                for cid in self.confusion.output_ids]
        return float(np.mean(vals)) if vals else 0.0

    @property
    def misplaced_fraction(self) -> float:
        """Cluster-to-cluster mass off the dominant entries."""
        return self.confusion.misplaced_fraction()

    @property
    def exact_dimension_rate(self) -> float:
        """Fraction of matched clusters with exactly recovered dims."""
        return self.dimension_report.exact_match_rate

    # -- rendering ------------------------------------------------------
    def dimension_table(self) -> str:
        """Paper Tables 1-2: input clusters on top, output below."""
        letters = [chr(ord("A") + i) for i in range(self.dataset.n_clusters)]
        sizes = self.dataset.cluster_sizes()
        top_rows = [
            [letters[cid],
             ", ".join(str(j) for j in self.dataset.cluster_dimensions[cid]),
             sizes[cid]]
            for cid in self.dataset.cluster_ids
        ]
        top_rows.append(["Outliers", "-", self.dataset.n_outliers])
        top = format_table(
            ["Input", "Dimensions", "Points"], top_rows,
            title=f"Input clusters ({self.case.name})",
        )
        out_sizes = self.result.cluster_sizes()
        bottom_rows = [
            [str(cid + 1),
             ", ".join(str(j) for j in self.result.dimensions[cid]),
             out_sizes[cid]]
            for cid in range(self.result.k)
        ]
        bottom_rows.append(["Outliers", "-", self.result.n_outliers])
        bottom = format_table(
            ["Found", "Dimensions", "Points"], bottom_rows,
            title="Output clusters (PROCLUS)",
        )
        return top + "\n\n" + bottom

    def to_text(self) -> str:
        """The full report: dimension tables + confusion matrix + stats."""
        parts = [
            self.dimension_table(),
            "",
            f"Confusion matrix ({self.case.name}):",
            self.confusion.to_table(),
            "",
            f"mean dominance          = {self.mean_dominance:.3f}",
            f"misplaced fraction      = {self.misplaced_fraction:.4f}",
            f"exact dimension rate    = {self.exact_dimension_rate:.3f}",
            f"mean dimension Jaccard  = {self.dimension_report.mean_jaccard:.3f}",
            f"adjusted Rand index     = {self.ari:.3f}",
            f"PROCLUS runtime (s)     = {self.seconds:.2f}",
        ]
        return "\n".join(parts)


def run_accuracy_case(case: int = CASE1, *, n_points: int = SCALED_N,
                      seed: int = 1999, proclus_seed: Optional[int] = None,
                      max_bad_tries: int = 30,
                      restarts: int = 1) -> AccuracyReport:
    """Run one accuracy case end-to-end and build its report.

    Parameters
    ----------
    case:
        1 (paper Tables 1 & 3) or 2 (paper Tables 2 & 4).
    n_points:
        Workload size; the paper uses 100,000.
    seed / proclus_seed:
        Generator / algorithm seeds (algorithm defaults to ``seed + 1``).
    max_bad_tries:
        Hill-climbing patience (higher = better optima, slower).
    restarts:
        Independent PROCLUS runs, best iterative objective kept — the
        paper's "run the algorithm a few times" advice (section 4.3).
    """
    cfg = make_case_config(case, n_points=n_points, seed=seed)
    dataset = SyntheticDataGenerator(cfg.synthetic_config()).generate()
    result = proclus(
        dataset.points, cfg.n_clusters, cfg.l,
        max_bad_tries=max_bad_tries,
        restarts=restarts,
        seed=proclus_seed if proclus_seed is not None else seed + 1,
    )
    confusion = confusion_matrix(result.labels, dataset.labels)
    matching = match_clusters(confusion)
    dim_report = match_dimension_sets(
        result.dimensions, dataset.cluster_dimensions, matching,
    )
    ari = adjusted_rand_index(result.labels, dataset.labels)
    seconds = sum(result.phase_seconds.values())
    return AccuracyReport(
        case=cfg, dataset=dataset, result=result, confusion=confusion,
        matching=matching, dimension_report=dim_report, ari=ari,
        seconds=seconds,
    )


register_experiment(
    "table1", lambda **kw: run_accuracy_case(CASE1, **kw),
    "Table 1: PROCLUS recovered dimensions, Case 1 (equal cluster dims, l=7)",
)
register_experiment(
    "table2", lambda **kw: run_accuracy_case(CASE2, **kw),
    "Table 2: PROCLUS recovered dimensions, Case 2 (varying cluster dims, l=4)",
)
register_experiment(
    "table3", lambda **kw: run_accuracy_case(CASE1, **kw),
    "Table 3: PROCLUS confusion matrix, Case 1",
)
register_experiment(
    "table4", lambda **kw: run_accuracy_case(CASE2, **kw),
    "Table 4: PROCLUS confusion matrix, Case 2",
)
