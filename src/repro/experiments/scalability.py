"""Scalability experiments: Figures 7, 8, 9.

* **Figure 7** — runtime vs number of points N (d = 20, five
  5-dimensional clusters).  Both algorithms scale linearly; PROCLUS is
  roughly an order of magnitude faster.
* **Figure 8** — runtime vs average cluster dimensionality l = 4..8.
  CLIQUE's runtime grows exponentially in l (its bottom-up pass visits
  every dense subspace); PROCLUS is only marginally affected because
  segmental-distance work is ``O(N k l)`` while the dominating
  full-dimensional pass is ``O(N k d)``.
* **Figure 9** — runtime vs space dimensionality d = 20..50 (PROCLUS
  only in the paper): linear.

Each runner returns a :class:`ScalabilityReport` with the raw series, a
log-log slope estimate, and a text rendering of the "figure".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines.clique import Clique
from ..core.proclus import proclus
from ..data.synthetic import SyntheticDataGenerator
from ..perf.parallel import parallel_map
from .ascii_plot import ascii_chart
from .configs import make_scalability_config
from .registry import register_experiment
from .tables import format_series

__all__ = ["ScalabilityReport", "run_scalability_points",
           "run_scalability_cluster_dim", "run_scalability_space_dim"]


@dataclass
class ScalabilityReport:
    """One scaling study: x values and per-algorithm second series."""

    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    title: str = ""

    def slope(self, name: str) -> float:
        """Least-squares slope of log(seconds) vs log(x).

        ~1 indicates linear scaling, ~2 quadratic, and so on.  Useful
        for Figures 7 and 9; Figure 8's x-range is too narrow for a
        meaningful power law (the paper argues exponential growth for
        CLIQUE there — see :meth:`growth_ratios`).
        """
        x = np.log(np.asarray(self.x_values, dtype=np.float64))
        y = np.log(np.maximum(np.asarray(self.series[name]), 1e-9))
        slope, _ = np.polyfit(x, y, 1)
        return float(slope)

    def growth_ratios(self, name: str) -> List[float]:
        """Consecutive runtime ratios; increasing ratios = superlinear."""
        s = self.series[name]
        return [s[i + 1] / max(s[i], 1e-9) for i in range(len(s) - 1)]

    def speedup(self, fast: str, slow: str) -> List[float]:
        """Pointwise ratio ``slow / fast`` (Figure 7's ~10x)."""
        return [
            s / max(f, 1e-9)
            for f, s in zip(self.series[fast], self.series[slow])
        ]

    def to_text(self) -> str:
        """Data table plus an ASCII chart of the figure's series."""
        names = list(self.series)
        table = format_series(
            self.x_label, [f"{n} (s)" for n in names],
            self.x_values, [self.series[n] for n in names],
            title=self.title,
        )
        # log y-axis, like the paper's Figure 7, when spreads are wide
        positive = all(v > 0 for s in self.series.values() for v in s)
        lo = min(v for s in self.series.values() for v in s)
        hi = max(v for s in self.series.values() for v in s)
        chart = ascii_chart(
            self.x_values, {n: list(v) for n, v in self.series.items()},
            log_y=positive and hi / max(lo, 1e-12) > 30,
            x_label=self.x_label, y_label="sec",
        )
        return table + "\n\n" + chart


def _run_proclus_timed(points: np.ndarray, k: int, l: int, seed: int,
                       repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock for one PROCLUS fit.

    At bench scale a single fit takes tens of milliseconds, where
    scheduler jitter swamps the signal; the minimum over a few repeats
    is the standard noise-robust estimator.
    """
    best = np.inf
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        proclus(points, k, l, seed=seed, keep_history=False)
        best = min(best, time.perf_counter() - t0)
    return best


def _run_clique_timed(points: np.ndarray, tau: float,
                      max_dimensionality: Optional[int]) -> float:
    t0 = time.perf_counter()
    Clique(xi=10, tau=tau, max_dimensionality=max_dimensionality).fit(points)
    return time.perf_counter() - t0


def run_scalability_points(*, sizes: Sequence[int] = (1000, 2000, 3000, 4000, 5000),
                           include_clique: bool = True,
                           clique_tau_percent: float = 0.5,
                           cluster_dim: int = 5, n_dims: int = 20,
                           seed: int = 7,
                           clique_max_dim: Optional[int] = 6,
                           proclus_repeats: int = 1,
                           n_jobs: int = 1) -> ScalabilityReport:
    """Figure 7: runtime vs N.  Paper scale: 100,000..500,000 points.

    ``proclus_repeats`` > 1 takes the best-of-``repeats`` wall clock
    per size, suppressing hill-climbing iteration-count noise in the
    slope estimate.  ``n_jobs > 1`` runs the grid points concurrently
    (:func:`repro.perf.parallel.parallel_map`) — the clusterings are
    identical, but concurrent configs share the machine, so keep
    ``n_jobs=1`` when the timings themselves are the deliverable.
    """
    report = ScalabilityReport(
        x_label="N", x_values=[float(n) for n in sizes],
        title="Figure 7: scalability with number of points",
    )

    def measure(n):
        cfg = make_scalability_config(n, n_dims, cluster_dim, seed=seed)
        ds = SyntheticDataGenerator(cfg).generate()
        row = [_run_proclus_timed(ds.points, cfg.n_clusters, cluster_dim,
                                  seed, repeats=proclus_repeats)]
        if include_clique:
            row.append(_run_clique_timed(ds.points,
                                         clique_tau_percent / 100.0,
                                         clique_max_dim))
        return row

    rows = parallel_map(measure, sizes, n_jobs=n_jobs)
    report.series["PROCLUS"] = [r[0] for r in rows]
    if include_clique:
        report.series["CLIQUE"] = [r[1] for r in rows]
    return report


def run_scalability_cluster_dim(*, dims: Sequence[int] = (4, 5, 6, 7, 8),
                                n_points: int = 2000,
                                include_clique: bool = True,
                                seed: int = 7,
                                n_dims: int = 20,
                                proclus_repeats: int = 3,
                                low_tau_percent: float = 0.3,
                                n_jobs: int = 1) -> ScalabilityReport:
    """Figure 8: runtime vs average cluster dimensionality l.

    Following the paper, CLIQUE runs at tau = 0.5% for l <= 6 and a
    lower threshold for l >= 7 (higher-dimensional clusters are
    sparser).  The paper's low threshold is 0.1%; that value makes
    roughly half of all 3-dimensional cells dense *at any N* (``tau *
    xi^3 <= 1``), blowing the level-4 apriori join into hundreds of
    millions of candidates — their C binary powered through it, pure
    Python cannot, so ``low_tau_percent`` defaults to 0.3%.  The
    exponential trend the figure demonstrates is unaffected.  CLIQUE's
    bottom-up pass is capped one level above l, mirroring the paper's
    observation that low tau makes it report (l+1)-dimensional units.
    """
    report = ScalabilityReport(
        x_label="l", x_values=[float(l) for l in dims],
        title="Figure 8: scalability with average cluster dimensionality",
    )

    def measure(l):
        cfg = make_scalability_config(n_points, n_dims, l, seed=seed)
        ds = SyntheticDataGenerator(cfg).generate()
        row = [_run_proclus_timed(ds.points, cfg.n_clusters, l, seed,
                                  repeats=proclus_repeats)]
        if include_clique:
            tau_pct = 0.5 if l <= 6 else low_tau_percent
            row.append(_run_clique_timed(ds.points, tau_pct / 100.0, l + 1))
        return row

    rows = parallel_map(measure, dims, n_jobs=n_jobs)
    report.series["PROCLUS"] = [r[0] for r in rows]
    if include_clique:
        report.series["CLIQUE"] = [r[1] for r in rows]
    return report


def run_scalability_space_dim(*, dims: Sequence[int] = (20, 30, 40, 50),
                              n_points: int = 5000, cluster_dim: int = 5,
                              seed: int = 7,
                              n_jobs: int = 1) -> ScalabilityReport:
    """Figure 9: PROCLUS runtime vs space dimensionality d (linear)."""
    report = ScalabilityReport(
        x_label="d", x_values=[float(d) for d in dims],
        title="Figure 9: scalability with dimensionality of the space",
    )

    def measure(d):
        cfg = make_scalability_config(n_points, d, cluster_dim, seed=seed)
        ds = SyntheticDataGenerator(cfg).generate()
        return _run_proclus_timed(ds.points, cfg.n_clusters, cluster_dim,
                                  seed)

    report.series["PROCLUS"] = parallel_map(measure, dims, n_jobs=n_jobs)
    return report


register_experiment(
    "fig7", run_scalability_points,
    "Figure 7: PROCLUS vs CLIQUE runtime, scaling the number of points",
)
register_experiment(
    "fig8", run_scalability_cluster_dim,
    "Figure 8: runtime vs average cluster dimensionality (CLIQUE exponential)",
)
register_experiment(
    "fig9", run_scalability_space_dim,
    "Figure 9: PROCLUS runtime vs dimensionality of the space (linear)",
)
