"""Experiment registry: stable names shared by CLI and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..exceptions import ParameterError

__all__ = ["register_experiment", "get_experiment", "list_experiments"]

_REGISTRY: Dict[str, Tuple[Callable, str]] = {}


def register_experiment(name: str, runner: Callable, description: str) -> None:
    """Register ``runner`` under ``name`` (idempotent re-registration)."""
    _REGISTRY[name.lower()] = (runner, description)


def get_experiment(name: str) -> Callable:
    """Look up a registered experiment runner."""
    try:
        return _REGISTRY[name.lower()][0]
    except KeyError:
        raise ParameterError(
            f"unknown experiment {name!r}; available: {sorted(_REGISTRY)}"
        )


def list_experiments() -> List[Tuple[str, str]]:
    """Sorted (name, description) pairs of all registered experiments."""
    return [(name, desc) for name, (_, desc) in sorted(_REGISTRY.items())]
