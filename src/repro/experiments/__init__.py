"""Runnable reproductions of every table and figure in the paper.

Each experiment is a plain function returning a typed report object
with a ``to_text()`` rendering that mirrors the paper's layout, plus
machine-readable fields the benchmarks assert on.  The registry maps
stable experiment names (``"table1"``, ``"fig7"``, ...) to runners so
the CLI and the benchmark suite share one code path.

Paper-scale parameters (N = 100,000) are encoded in
:mod:`~repro.experiments.configs`; every runner takes ``n_points`` (and
friends) so the benches can run the identical code at reduced scale.
"""

from .accuracy import AccuracyReport, run_accuracy_case, CASE1, CASE2
from .ablations import (
    run_initialization_ablation,
    run_min_deviation_ablation,
    run_pool_size_ablation,
    run_locality_theorem_check,
)
from .clique_quality import CliqueQualityReport, run_clique_quality, run_table5_snapshot
from .configs import CaseConfig, PAPER_N, SCALED_N
from .curse import CurseReport, run_curse_of_dimensionality
from .motivation import MotivationReport, figure1_dataset, run_motivation
from .registry import get_experiment, list_experiments, register_experiment
from .scalability import (
    ScalabilityReport,
    run_scalability_points,
    run_scalability_cluster_dim,
    run_scalability_space_dim,
)
from .summary import ClaimResult, ReproductionSummary, run_reproduction
from .tables import format_table, format_series

__all__ = [
    "AccuracyReport",
    "run_accuracy_case",
    "CASE1",
    "CASE2",
    "CliqueQualityReport",
    "run_clique_quality",
    "run_table5_snapshot",
    "ScalabilityReport",
    "run_scalability_points",
    "run_scalability_cluster_dim",
    "run_scalability_space_dim",
    "run_initialization_ablation",
    "run_min_deviation_ablation",
    "run_pool_size_ablation",
    "run_locality_theorem_check",
    "CaseConfig",
    "PAPER_N",
    "SCALED_N",
    "CurseReport",
    "run_curse_of_dimensionality",
    "MotivationReport",
    "figure1_dataset",
    "run_motivation",
    "get_experiment",
    "list_experiments",
    "register_experiment",
    "ClaimResult",
    "ReproductionSummary",
    "run_reproduction",
    "format_table",
    "format_series",
]
