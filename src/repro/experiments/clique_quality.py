"""CLIQUE output quality: the section-4.2 study and Table 5.

The paper probes when CLIQUE's output can be read as a partition:

* a **tau sweep** on the Case-1 workload (xi = 10): at tau = 0.5% and
  0.8% the overlap is ~1 but less than half the cluster points are
  recovered; lowering tau to 0.2% / 0.1% recovers even less because the
  bottom-up pass over-shoots into higher-dimensional subspaces and
  splits clusters;
* the **Table-5 snapshot**: with tau = 0.1% and output restricted to
  the cluster dimensionality (7 in the paper), CLIQUE reports ~48
  clusters with average overlap 3.63 and 74.6% of cluster points —
  input clusters split across many output clusters.

Both runners work at any scale; the shipped benches use reduced N with
the same xi and percentage thresholds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.clique import Clique
from ..baselines.clique.result import CliqueResult
from ..data.dataset import Dataset
from ..data.synthetic import SyntheticDataGenerator
from ..metrics.confusion import confusion_from_memberships
from ..metrics.overlap import average_overlap, cluster_points_recovered
from .configs import make_case_config
from .registry import register_experiment
from .tables import format_table

__all__ = ["CliqueQualityReport", "Table5Snapshot", "run_clique_quality",
           "run_table5_snapshot"]


@dataclass
class CliqueQualityReport:
    """Tau-sweep results on one workload."""

    n_points: int
    rows: List[Dict[str, float]] = field(default_factory=list)

    def to_text(self) -> str:
        """ASCII rendering of the sweep."""
        table_rows = [
            [f"{r['tau_percent']:.2f}%", int(r["n_clusters"]),
             f"{r['overlap']:.2f}", f"{r['cluster_points_pct']:.1f}%",
             int(r["max_dim"]), f"{r['seconds']:.2f}"]
            for r in self.rows
        ]
        return format_table(
            ["tau", "clusters", "overlap", "cluster pts", "max dim", "sec"],
            table_rows,
            title=f"CLIQUE quality sweep (N={self.n_points}, xi=10)",
        )

    def row_for(self, tau_percent: float) -> Dict[str, float]:
        """The sweep row for a given tau (in percent)."""
        for r in self.rows:
            if abs(r["tau_percent"] - tau_percent) < 1e-9:
                return r
        raise KeyError(f"no row for tau={tau_percent}")


@dataclass
class Table5Snapshot:
    """The fixed-dimensionality CLIQUE run of Table 5."""

    n_points: int
    tau_percent: float
    target_dim: int
    n_clusters: int
    overlap: float
    cluster_points_pct: float
    snapshot_rows: List[Tuple[int, str, int]] = field(default_factory=list)
    seconds: float = 0.0

    def to_text(self) -> str:
        """Headline stats plus a Table-5-style snapshot of clusters."""
        head = (
            f"CLIQUE, clusters restricted to {self.target_dim} dimensions, "
            f"tau={self.tau_percent:g}% (N={self.n_points})\n"
            f"  output clusters = {self.n_clusters}\n"
            f"  average overlap = {self.overlap:.2f}\n"
            f"  cluster points  = {self.cluster_points_pct:.1f}%\n"
        )
        table = format_table(
            ["Output", "Dominant input", "Points"],
            [[out, dom, pts] for out, dom, pts in self.snapshot_rows],
            title="Snapshot: output clusters vs dominant input cluster",
        )
        return head + "\n" + table


def _case1_dataset(n_points: int, seed: int) -> Dataset:
    cfg = make_case_config(1, n_points=n_points, seed=seed)
    return SyntheticDataGenerator(cfg.synthetic_config()).generate()


def run_clique_quality(*, n_points: int = 3000,
                       tau_percents: Sequence[float] = (0.8, 0.5, 0.3),
                       max_dimensionality: int = 8,
                       seed: int = 1999,
                       dataset: Optional[Dataset] = None) -> CliqueQualityReport:
    """The tau sweep of section 4.2 on a Case-1-style workload.

    ``tau_percents`` follow the paper's convention (percent of N).
    ``max_dimensionality`` bounds the bottom-up pass; the paper observed
    CLIQUE reaching 8 dimensions at its lowest tau.

    The paper also sweeps tau = 0.2% and 0.1%.  Those settings are
    *scale-free* pathological for the bottom-up pass: ``tau * xi^3 <= 2``
    makes roughly half of all 3-dimensional cells dense regardless of N,
    so the level-4 apriori join enumerates hundreds of millions of
    candidates — tractable for the authors' C binary, not for pure
    Python.  The default sweep stops at 0.3% (already past the quality
    cliff: over-shoot dimensionality, falling cluster-point recovery);
    pass ``tau_percents=(0.5, 0.8, 0.2, 0.1)`` to reproduce the paper's
    exact grid if you can afford the runtime.
    """
    ds = dataset if dataset is not None else _case1_dataset(n_points, seed)
    report = CliqueQualityReport(n_points=ds.n_points)
    for tau_pct in tau_percents:
        t0 = time.perf_counter()
        clique = Clique(
            xi=10, tau=tau_pct / 100.0,
            max_dimensionality=max_dimensionality,
        ).fit(ds.points)
        res = clique.result
        top, reported_dim = _reported_clusters(res)
        memberships = [c.point_indices for c in top]
        report.rows.append({
            "tau_percent": float(tau_pct),
            "n_clusters": float(len(top)),
            "overlap": average_overlap(memberships),
            "cluster_points_pct": 100.0 * cluster_points_recovered(
                memberships, ds.labels),
            "max_dim": float(reported_dim),
            "seconds": time.perf_counter() - t0,
        })
    return report


def _reported_clusters(res: CliqueResult, min_coverage: float = 0.10):
    """CLIQUE's tool-level reported clusters: the highest dimensionality
    whose clusters cover a non-negligible share of the points.

    Lower-dimensional projections of a dense region are dense too, but
    the tool reports the deepest *meaningful* level; a handful of
    borderline cells one level higher (integer-threshold noise at small
    N) should not masquerade as the output dimensionality.  The paper's
    runs show exactly this reporting: 7-dimensional clusters at
    tau = 0.5%/0.8% and an over-shoot to 8 dimensions at 0.1%/0.2%,
    where the low threshold makes the extra level substantial.
    """
    for q in range(res.max_dimensionality, 0, -1):
        clusters = res.clusters_of_dimensionality(q)
        if not clusters:
            continue
        covered = np.unique(
            np.concatenate([c.point_indices for c in clusters])
        ).size
        if covered >= min_coverage * res.n_points:
            return clusters, q
    return res.clusters_of_dimensionality(res.max_dimensionality), res.max_dimensionality


def run_table5_snapshot(*, n_points: int = 3000, tau_percent: float = 0.3,
                        target_dim: int = 7, seed: int = 1999,
                        max_rows: int = 10,
                        dataset: Optional[Dataset] = None) -> Table5Snapshot:
    """The Table-5 run: CLIQUE restricted to ``target_dim``-dim clusters.

    The snapshot lists up to ``max_rows`` output clusters with the input
    cluster contributing most of their points, exhibiting the paper's
    observation that input clusters split into many output clusters.

    The paper uses tau = 0.1%; that threshold makes the bottom-up pass
    scale-free pathological for pure Python (see
    :func:`run_clique_quality`), so the default here is 0.3% — low
    enough that clusters split and overlap exceeds 1, which is the
    phenomenon Table 5 documents.
    """
    ds = dataset if dataset is not None else _case1_dataset(n_points, seed)
    t0 = time.perf_counter()
    clique = Clique(
        xi=10, tau=tau_percent / 100.0,
        target_dimensionality=target_dim,
    ).fit(ds.points)
    seconds = time.perf_counter() - t0
    res = clique.result
    memberships = [c.point_indices for c in res.clusters]
    confusion = confusion_from_memberships(memberships, ds.labels)

    letters = [chr(ord("A") + i) for i in range(ds.n_clusters)]
    rows: List[Tuple[int, str, int]] = []
    order = np.argsort([-c.n_points for c in res.clusters])
    for idx in order[:max_rows]:
        cluster = res.clusters[int(idx)]
        dominant = confusion.dominant_input(cluster.cluster_id)
        name = letters[dominant] if dominant is not None else "(outliers)"
        rows.append((cluster.cluster_id, name, cluster.n_points))

    return Table5Snapshot(
        n_points=ds.n_points,
        tau_percent=tau_percent,
        target_dim=target_dim,
        n_clusters=res.n_clusters,
        overlap=average_overlap(memberships),
        cluster_points_pct=100.0 * cluster_points_recovered(
            memberships, ds.labels),
        snapshot_rows=rows,
        seconds=seconds,
    )


register_experiment(
    "clique-quality", run_clique_quality,
    "Section 4.2: CLIQUE tau sweep (overlap, cluster-point recovery)",
)
register_experiment(
    "table5", run_table5_snapshot,
    "Table 5: CLIQUE restricted to the cluster dimensionality splits input clusters",
)
