"""Canonical parameter sets for the paper's experiments.

Every experiment of section 4 derives from a handful of workload
shapes; this module pins them down once:

* **Case 1** (Tables 1 & 3): N = 100,000, d = 20, k = 5, all five
  clusters in (different) 7-dimensional subspaces, 5% outliers, l = 7.
* **Case 2** (Tables 2 & 4): same but cluster dimensionalities
  2, 2, 3, 6, 7 (average l = 4).
* **Scalability** (Figures 7-9): 5 clusters of dimensionality 5 in a
  20-dimensional space, varying N / l / d.

``PAPER_N`` is the paper's database size; ``SCALED_N`` the default used
by the fast benches (identical code path, reduced scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..data.synthetic import SyntheticConfig

__all__ = ["CaseConfig", "CASE1_DIMS", "CASE2_DIMS", "PAPER_N", "SCALED_N",
           "make_case_config", "make_scalability_config"]

#: Database size used throughout the paper's section 4.
PAPER_N = 100_000
#: Default reduced size for CI-friendly runs of the same code path.
SCALED_N = 10_000

#: Case 1: all clusters 7-dimensional (l = 7).
CASE1_DIMS: Tuple[int, ...] = (7, 7, 7, 7, 7)
#: Case 2: dimensionalities 2, 2, 3, 6, 7 (l = 4).
CASE2_DIMS: Tuple[int, ...] = (7, 3, 2, 6, 2)


@dataclass
class CaseConfig:
    """One accuracy experiment's workload + algorithm parameters."""

    name: str
    cluster_dim_counts: Tuple[int, ...]
    l: int
    n_points: int = PAPER_N
    n_dims: int = 20
    n_clusters: int = 5
    outlier_fraction: float = 0.05
    seed: int = 1999

    def synthetic_config(self) -> SyntheticConfig:
        """The generator configuration for this case."""
        return SyntheticConfig(
            n_points=self.n_points,
            n_dims=self.n_dims,
            n_clusters=self.n_clusters,
            outlier_fraction=self.outlier_fraction,
            cluster_dim_counts=list(self.cluster_dim_counts),
            name=self.name,
            seed=self.seed,
        )


def make_case_config(case: int, *, n_points: int = SCALED_N,
                     seed: int = 1999) -> CaseConfig:
    """The paper's Case 1 or Case 2 at a chosen scale."""
    if case == 1:
        return CaseConfig(
            name="case1", cluster_dim_counts=CASE1_DIMS, l=7,
            n_points=n_points, seed=seed,
        )
    if case == 2:
        return CaseConfig(
            name="case2", cluster_dim_counts=CASE2_DIMS, l=4,
            n_points=n_points, seed=seed,
        )
    raise ValueError(f"case must be 1 or 2; got {case}")


def make_scalability_config(n_points: int, n_dims: int = 20,
                            cluster_dim: int = 5, *, n_clusters: int = 5,
                            seed: int = 7) -> SyntheticConfig:
    """The Figures 7-9 workload: 5 clusters of a fixed dimensionality."""
    return SyntheticConfig(
        n_points=n_points,
        n_dims=n_dims,
        n_clusters=n_clusters,
        cluster_dim_counts=[cluster_dim] * n_clusters,
        outlier_fraction=0.05,
        name=f"scal-N{n_points}-d{n_dims}-l{cluster_dim}",
        seed=seed,
    )
