"""Figure 1's motivation as a measurable experiment.

The paper's introduction argues with a picture: one cluster tight in
the x-y plane, another in the x-z plane.  Full-dimensional clustering
misses both (each cluster is spread out along one axis), and global
feature selection must discard y or z — each relevant to one cluster —
so one pattern is always lost.  This module turns the picture into
numbers: it builds exactly that configuration (plus noise dimensions)
and scores k-means, feature-selection + k-means, DBSCAN, and PROCLUS
against the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..baselines.dbscan import dbscan
from ..baselines.feature_selection import FeatureSelectionClustering
from ..baselines.kmeans import kmeans
from ..core.proclus import proclus
from ..metrics.external import adjusted_rand_index
from ..rng import SeedLike, ensure_rng
from .registry import register_experiment
from .tables import format_table

__all__ = ["MotivationReport", "figure1_dataset", "run_motivation"]


def figure1_dataset(n_per_cluster: int = 1000, n_noise_dims: int = 5,
                    seed: SeedLike = 3) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's Figure-1 configuration, plus uniform noise dims.

    Cluster 0 is tight in (x, y) and spread along z; cluster 1 tight in
    (x, z) and spread along y; both share dimension x with different
    centres.  Returns ``(points, labels)``.
    """
    rng = ensure_rng(seed)
    d = 3 + n_noise_dims

    a = rng.uniform(0, 100, size=(n_per_cluster, d))
    a[:, 0] = rng.normal(30.0, 1.5, n_per_cluster)
    a[:, 1] = rng.normal(70.0, 1.5, n_per_cluster)

    b = rng.uniform(0, 100, size=(n_per_cluster, d))
    b[:, 0] = rng.normal(60.0, 1.5, n_per_cluster)
    b[:, 2] = rng.normal(20.0, 1.5, n_per_cluster)

    X = np.vstack([a, b])
    y = np.repeat([0, 1], n_per_cluster)
    perm = rng.permutation(X.shape[0])
    return X[perm], y[perm]


@dataclass
class MotivationReport:
    """ARI per method on the Figure-1 workload."""

    scores: Dict[str, float] = field(default_factory=dict)
    proclus_dimensions: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    selected_dims: Tuple[int, ...] = ()

    def to_text(self) -> str:
        """Scoreboard plus the dimension evidence."""
        rows = [[name, f"{score:.3f}"]
                for name, score in sorted(self.scores.items(),
                                          key=lambda kv: -kv[1])]
        table = format_table(
            ["method", "ARI"], rows,
            title="Figure 1 motivation: projected clusters in (x,y) and (x,z)",
        )
        extra = [
            "",
            f"feature selection kept dimensions {list(self.selected_dims)} "
            "(one pattern necessarily lost)",
            f"PROCLUS per-cluster dimensions: "
            f"{ {c: list(d) for c, d in self.proclus_dimensions.items()} }",
        ]
        return table + "\n" + "\n".join(extra)


def run_motivation(*, n_points: int = 2000, n_noise_dims: int = 5,
                   seed: int = 3) -> MotivationReport:
    """Score all four methods on the Figure-1 workload.

    ``n_points`` is the total (split evenly between the two clusters).
    """
    X, y = figure1_dataset(n_per_cluster=max(2, n_points // 2),
                           n_noise_dims=n_noise_dims, seed=seed)
    report = MotivationReport()

    km = kmeans(X, 2, seed=seed)
    report.scores["k-means (full space)"] = adjusted_rand_index(
        km.labels, y, include_outliers=True)

    fs = FeatureSelectionClustering(2, 2, seed=seed).fit(X)
    report.selected_dims = tuple(int(j) for j in fs.selected_dims_)
    report.scores["feature selection + k-means"] = adjusted_rand_index(
        fs.labels_, y, include_outliers=True)

    db = dbscan(X, eps=40.0, min_pts=5)
    report.scores["DBSCAN (full space)"] = adjusted_rand_index(
        db.labels, y, include_outliers=True)

    pc = proclus(X, 2, 2, seed=seed, handle_outliers=False,
                 keep_history=False)
    report.proclus_dimensions = dict(pc.dimensions)
    report.scores["PROCLUS"] = adjusted_rand_index(
        pc.labels, y, include_outliers=True)

    return report


register_experiment(
    "fig1-motivation", run_motivation,
    "Figure 1: full-dimensional and feature-selection methods fail on "
    "projected clusters; PROCLUS recovers both patterns",
)
