"""Terminal line charts for the scalability 'figures'.

The paper's Figures 7-9 are runtime curves; this module renders them as
ASCII so `proclus experiment fig7` shows an actual figure, not just a
table.  Supports linear or logarithmic y-axis (Figure 7 in the paper is
log-scale) and multiple series with distinct markers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..exceptions import ParameterError

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def ascii_chart(x_values: Sequence[float],
                series: Dict[str, Sequence[float]], *,
                width: int = 60, height: int = 16,
                log_y: bool = False, x_label: str = "x",
                y_label: str = "y", title: Optional[str] = None) -> str:
    """Render one or more (x, y) series as an ASCII line chart.

    Points are plotted with a per-series marker on a ``width x height``
    canvas; collisions show the later series' marker.  A legend maps
    markers to series names.
    """
    if not x_values or not series:
        raise ParameterError("ascii_chart needs x values and >= 1 series")
    if len(series) > len(_MARKERS):
        raise ParameterError(f"at most {len(_MARKERS)} series supported")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ParameterError(
                f"series {name!r} has {len(ys)} values for "
                f"{len(x_values)} x positions"
            )

    all_y = [y for ys in series.values() for y in ys]
    if log_y:
        if min(all_y) <= 0:
            raise ParameterError("log_y requires strictly positive values")
        transform = math.log10
    else:
        transform = float

    y_lo = min(transform(y) for y in all_y)
    y_hi = max(transform(y) for y in all_y)
    x_lo, x_hi = min(x_values), max(x_values)
    y_span = (y_hi - y_lo) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), _MARKERS):
        for x, y in zip(x_values, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((transform(y) - y_lo) / y_span * (height - 1))
            canvas[height - 1 - row][col] = marker

    top_tick = _format_tick(10 ** y_hi if log_y else y_hi)
    bottom_tick = _format_tick(10 ** y_lo if log_y else y_lo)
    gutter = max(len(top_tick), len(bottom_tick), len(y_label)) + 1

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label.rjust(gutter)}{' (log scale)' if log_y else ''}")
    for r, row in enumerate(canvas):
        if r == 0:
            prefix = top_tick.rjust(gutter)
        elif r == height - 1:
            prefix = bottom_tick.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    left = _format_tick(x_lo)
    right = _format_tick(x_hi)
    axis = left + x_label.center(width - len(left) - len(right)) + right
    lines.append(" " * (gutter + 1) + axis)
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)
