"""Tiny ASCII table / series formatting used by every report."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], *,
                 title: Optional[str] = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = []
    if title:
        lines.append(title)
    lines.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_label: str, y_labels: Sequence[str],
                  x_values: Sequence, series: Sequence[Sequence[float]], *,
                  title: Optional[str] = None) -> str:
    """Render aligned x/y series (a textual 'figure')."""
    headers = [x_label, *y_labels]
    rows = [
        [x, *[s[i] for s in series]]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
