"""One-call reproduction summary: every paper artifact, one report.

:func:`run_reproduction` executes the registered experiments at a
chosen scale tier and aggregates a pass/fail verdict per paper claim —
the library-level equivalent of ``scripts/run_paper_scale.py``, usable
programmatically and in CI:

* ``tier="smoke"`` — minutes; reduced N everywhere; checks the
  qualitative claims only;
* ``tier="paper"`` — tens of minutes; accuracy cases at N = 100,000.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from .ablations import run_locality_theorem_check
from .accuracy import run_accuracy_case
from .curse import run_curse_of_dimensionality
from .motivation import run_motivation
from .scalability import run_scalability_space_dim
from .tables import format_table

__all__ = ["ClaimResult", "ReproductionSummary", "run_reproduction"]


@dataclass
class ClaimResult:
    """One paper claim: held or not, with its headline number."""

    artifact: str
    claim: str
    held: bool
    evidence: str
    seconds: float


@dataclass
class ReproductionSummary:
    """Aggregated verdicts over the checked claims."""

    tier: str
    claims: List[ClaimResult] = field(default_factory=list)

    @property
    def all_held(self) -> bool:
        """True when every checked claim reproduced."""
        return all(c.held for c in self.claims)

    @property
    def n_held(self) -> int:
        """Number of claims that reproduced."""
        return sum(1 for c in self.claims if c.held)

    def to_text(self) -> str:
        """Verdict table."""
        rows = [
            [c.artifact, "PASS" if c.held else "FAIL", c.evidence,
             f"{c.seconds:.1f}s"]
            for c in self.claims
        ]
        head = format_table(
            ["artifact", "verdict", "evidence", "time"], rows,
            title=f"Reproduction summary ({self.tier} tier): "
                  f"{self.n_held}/{len(self.claims)} claims held",
        )
        return head


def _check(summary: ReproductionSummary, artifact: str, claim: str,
           runner: Callable[[], tuple]) -> None:
    t0 = time.perf_counter()
    held, evidence = runner()
    summary.claims.append(ClaimResult(
        artifact=artifact, claim=claim, held=bool(held),
        evidence=evidence, seconds=time.perf_counter() - t0,
    ))


def run_reproduction(tier: str = "smoke", *, seed: int = 70) -> ReproductionSummary:
    """Run the claim checks for the chosen tier and return the summary.

    The smoke tier covers the claims whose shape survives small N
    (Tables 1-4 structure, Figure 1, Figure 9 linearity, Theorem 3.1,
    the curse of dimensionality).  The CLIQUE studies and Figures 7-8
    need minutes of CLIQUE runtime and live in the benchmark suite and
    ``scripts/run_paper_scale.py`` instead.
    """
    if tier not in ("smoke", "paper"):
        raise ValueError(f"tier must be 'smoke' or 'paper'; got {tier!r}")
    n_accuracy = 100_000 if tier == "paper" else 4000
    restarts = 3
    summary = ReproductionSummary(tier=tier)

    def case1():
        rep = run_accuracy_case(1, n_points=n_accuracy, seed=seed,
                                max_bad_tries=40, restarts=restarts)
        held = (rep.exact_dimension_rate >= (1.0 if tier == "paper" else 0.6)
                and rep.mean_dominance > 0.8)
        return held, (f"exact dims {rep.exact_dimension_rate:.0%}, "
                      f"ARI {rep.ari:.2f}")

    def case2():
        rep = run_accuracy_case(2, n_points=n_accuracy, seed=seed,
                                max_bad_tries=40, restarts=restarts)
        held = (rep.dimension_report.mean_jaccard >
                (0.95 if tier == "paper" else 0.6))
        return held, (f"dim Jaccard {rep.dimension_report.mean_jaccard:.2f}, "
                      f"ARI {rep.ari:.2f}")

    def fig1():
        rep = run_motivation(n_points=2000, seed=3)
        others = max(v for k, v in rep.scores.items() if k != "PROCLUS")
        held = rep.scores["PROCLUS"] > max(0.8, others)
        return held, f"PROCLUS {rep.scores['PROCLUS']:.2f} vs best other {others:.2f}"

    def fig9():
        rep = run_scalability_space_dim(
            dims=(10, 20, 40),
            n_points=20_000 if tier == "paper" else 3000, seed=7,
        )
        slope = rep.slope("PROCLUS")
        return slope < 1.6, f"log-log slope {slope:.2f}"

    def theorem():
        rep = run_locality_theorem_check(
            n_points=10_000 if tier == "paper" else 3000, seed=42,
        )
        return rep.relative_error < 0.25, (
            f"observed {rep.observed_mean:.0f} vs N/k {rep.expected:.0f}"
        )

    def curse():
        rep = run_curse_of_dimensionality(dims=(2, 10, 30),
                                          n_points=1500, seed=11)
        held = rep.contrast_decays() and rep.separation_grows()
        return held, (f"contrast {rep.relative_contrast[0]:.1f} -> "
                      f"{rep.relative_contrast[-1]:.1f}")

    _check(summary, "Tables 1+3", "Case-1 dimensions + confusion", case1)
    _check(summary, "Tables 2+4", "Case-2 dimensions + confusion", case2)
    _check(summary, "Figure 1", "full-dim methods fail, PROCLUS works", fig1)
    _check(summary, "Figure 9", "PROCLUS linear in d", fig9)
    _check(summary, "Theorem 3.1", "locality size ~ N/k", theorem)
    _check(summary, "Section 1", "curse of dimensionality", curse)
    return summary
