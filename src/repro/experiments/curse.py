"""The curse of dimensionality, measured (paper section 1, refs [1, 22]).

The paper's opening claim: "Most clustering algorithms do not work
efficiently in higher dimensional spaces because of the inherent
sparsity of the data ... it is likely that for any given pair of
points there exist at least a few dimensions on which the points are
far apart."  This experiment quantifies both halves:

* **distance concentration** — the relative contrast
  ``(max NN-dist − min NN-dist) / min NN-dist`` of uniform data decays
  toward 0 as ``d`` grows (Beyer et al. / ref [22]'s cost-model
  setting), which is what defeats full-dimensional similarity search;
* **pairwise separation** — the probability that a random pair of
  points from the *same projected cluster* is far apart (≥ a quarter of
  the data range) in at least one dimension rises toward 1 with ``d``,
  which is why full-dimensional clustering tears projected clusters
  apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..data.synthetic import SyntheticConfig, SyntheticDataGenerator
from ..rng import ensure_rng
from .registry import register_experiment
from .tables import format_table

__all__ = ["CurseReport", "run_curse_of_dimensionality"]


@dataclass
class CurseReport:
    """Distance-concentration and separation measurements per d."""

    dims: List[int] = field(default_factory=list)
    relative_contrast: List[float] = field(default_factory=list)
    far_pair_probability: List[float] = field(default_factory=list)

    def to_text(self) -> str:
        """Table of both curves."""
        rows = [
            [d, f"{c:.3f}", f"{p:.3f}"]
            for d, c, p in zip(self.dims, self.relative_contrast,
                               self.far_pair_probability)
        ]
        return format_table(
            ["d", "relative contrast", "P(far in some dim)"], rows,
            title=("Curse of dimensionality: contrast of uniform data "
                   "decays; same-cluster pairs separate"),
        )

    def contrast_decays(self) -> bool:
        """True when the contrast at the largest d is below the smallest d's."""
        return self.relative_contrast[-1] < self.relative_contrast[0]

    def separation_grows(self) -> bool:
        """True when the far-pair probability increases with d."""
        return self.far_pair_probability[-1] > self.far_pair_probability[0]


def _relative_contrast(X: np.ndarray, n_queries: int,
                       rng: np.random.Generator) -> float:
    """Mean over query points of (max dist − min dist) / min dist."""
    n = X.shape[0]
    queries = rng.choice(n, size=min(n_queries, n), replace=False)
    contrasts = []
    for q in queries:
        diffs = X - X[q]
        dist = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        dist[q] = np.inf
        dmin = dist.min()
        dmax = dist[np.isfinite(dist)].max()
        if dmin > 0:
            contrasts.append((dmax - dmin) / dmin)
    return float(np.mean(contrasts)) if contrasts else 0.0


def _far_pair_probability(cluster_points: np.ndarray, n_pairs: int,
                          threshold: float,
                          rng: np.random.Generator) -> float:
    """P(two same-cluster points differ by >= threshold in some dim)."""
    n = cluster_points.shape[0]
    if n < 2:
        return 0.0
    far = 0
    for _ in range(n_pairs):
        i, j = rng.choice(n, size=2, replace=False)
        if np.abs(cluster_points[i] - cluster_points[j]).max() >= threshold:
            far += 1
    return far / n_pairs


def run_curse_of_dimensionality(*, dims: Sequence[int] = (2, 5, 10, 20, 50),
                                n_points: int = 2000,
                                n_queries: int = 50, n_pairs: int = 400,
                                cluster_dim: int = 4,
                                seed: int = 11) -> CurseReport:
    """Measure both curse effects across space dimensionalities.

    The far-pair probability uses points of one projected cluster
    (tight in ``cluster_dim`` dimensions, uniform elsewhere) and a
    separation threshold of a quarter of the data range — "far apart on
    at least a few dimensions" made concrete.
    """
    rng = ensure_rng(seed)
    report = CurseReport()
    for d in dims:
        uniform = rng.uniform(0, 100, size=(n_points, d))
        contrast = _relative_contrast(uniform, n_queries, rng)

        cfg = SyntheticConfig(
            n_points=n_points, n_dims=d, n_clusters=1,
            cluster_dim_counts=[min(cluster_dim, max(2, d - 1))],
            outlier_fraction=0.0, seed=int(rng.integers(2**31 - 1)),
        )
        ds = SyntheticDataGenerator(cfg).generate()
        far_prob = _far_pair_probability(
            ds.cluster_points(0), n_pairs, threshold=25.0, rng=rng,
        )

        report.dims.append(int(d))
        report.relative_contrast.append(contrast)
        report.far_pair_probability.append(far_prob)
    return report


register_experiment(
    "curse", run_curse_of_dimensionality,
    "Section 1 motivation: distance concentration and same-cluster "
    "separation as dimensionality grows",
)
