"""Incremental distance caching for the hill-climbing hot path.

Each CLARANS vertex visit needs four expensive products, all of which
are column-separable by medoid:

* the ``(N, k)`` full-dimensional distance matrix behind the localities
  (one column per medoid row);
* the locality member sets (one per medoid, determined by the medoid's
  distance column and its radius ``delta_i``);
* the per-medoid dimension statistics ``X_{i,.}`` (determined by the
  locality members);
* the ``(N, k)`` segmental assignment matrix (one column per
  ``(medoid row, dimension set)`` pair).

A vertex swap replaces only the *bad* medoids (typically 1–2 of ``k``),
so :class:`IterativeCache` keeps each product keyed by the quantities
that fully determine it and recomputes only what a swap invalidated.
Misses are computed by the exact same kernels as the uncached path, so
results are **bit-identical** — the cache is a pure wall-clock
optimisation.

Memory is bounded: every store is an LRU evicting from the cold end
once the total held bytes exceed the configured budget (default:
:data:`repro.robustness.guards.DEFAULT_MEMORY_BUDGET_BYTES`), using the
same budget notion the distance kernels honour for their temporaries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..distance.base import Metric, get_metric
from ..distance.matrix import cross_distances, per_dimension_average_distance
from ..obs import get_tracer
from ..robustness.guards import DEFAULT_MEMORY_BUDGET_BYTES
from .kernels import segmental_columns

__all__ = ["CacheStats", "IterativeCache"]

MetricLike = Union[str, Metric]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache store."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total get() calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class _LruStore:
    """Byte-accounted LRU mapping key -> ndarray.

    Keys are tuples whose **first element is the medoid row index**, so
    :meth:`discard_rows` can drop everything a swap invalidated.
    """

    def __init__(self, budget_bytes: int, stats: CacheStats) -> None:
        self._data: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._budget = int(budget_bytes)
        self.nbytes = 0
        self.stats = stats

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: tuple) -> Optional[np.ndarray]:
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: tuple, value: np.ndarray) -> None:
        old = self._data.pop(key, None)
        if old is not None:
            self.nbytes -= old.nbytes
        self._data[key] = value
        self.nbytes += value.nbytes
        while self.nbytes > self._budget and len(self._data) > 1:
            _, evicted = self._data.popitem(last=False)
            self.nbytes -= evicted.nbytes
            self.stats.evictions += 1

    def discard_rows(self, rows: Union[int, Sequence[int], np.ndarray]) -> None:
        doomed = set(int(r) for r in np.atleast_1d(rows))
        for key in [k for k in self._data if k[0] in doomed]:
            self.nbytes -= self._data.pop(key).nbytes

    def clear(self) -> None:
        self._data.clear()
        self.nbytes = 0


class IterativeCache:
    """Per-medoid product cache for ``run_iterative_phase`` (and refinement).

    The cache is bound to one data matrix: the first call against a new
    ``X`` object resets every store (large-database mode fits a
    subsample and then refines over the full data — the two must never
    share columns).

    Stores and their keys:

    ``distance``
        ``(row, metric)`` -> full-dimensional distance column
        ``d(X, X[row])`` of shape ``(N,)``.
    ``segmental``
        ``(row, dims)`` -> Manhattan segmental column of shape ``(N,)``.
    ``locality``
        ``(row, delta, min_size, metric)`` -> locality member indices.
    ``stats``
        ``(row, delta, min_size, metric)`` -> per-dimension average
        distance row of shape ``(d,)``.

    ``delta`` participates in the key because the locality of an
    unswapped medoid still changes when a swap moves its nearest
    neighbour; two visits agreeing on both the medoid row and its
    radius provably share the same members (and therefore statistics).
    """

    def __init__(self, memory_budget_bytes: Optional[int] = None) -> None:
        budget = (DEFAULT_MEMORY_BUDGET_BYTES if memory_budget_bytes is None
                  else int(memory_budget_bytes))
        self.memory_budget_bytes = budget
        self.stats: Dict[str, CacheStats] = {
            name: CacheStats()
            for name in ("distance", "segmental", "locality", "stats")
        }
        self._distance = _LruStore(budget, self.stats["distance"])
        self._segmental = _LruStore(budget, self.stats["segmental"])
        self._locality = _LruStore(budget, self.stats["locality"])
        self._stats = _LruStore(budget, self.stats["stats"])
        self._stores = (self._distance, self._segmental,
                        self._locality, self._stats)
        self._X: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def bind(self, X: np.ndarray) -> None:
        """Attach to ``X``; a different data matrix clears every store."""
        if X is not self._X:
            for store in self._stores:
                store.clear()
            self._X = X

    def discard_rows(self, rows: Union[int, Sequence[int], np.ndarray]) -> None:
        """Drop every cached product of the given medoid rows.

        Called after a non-improving vertex: its swapped-in medoids are
        excluded from future replacement draws, so their columns are
        dead weight.
        """
        rows = np.atleast_1d(rows)
        if rows.size == 0:
            return
        for store in self._stores:
            store.discard_rows(rows)

    @staticmethod
    def _metric_key(metric: MetricLike) -> int:
        m = get_metric(metric)
        return id(m)

    # ------------------------------------------------------------------
    def distance_columns(self, X: np.ndarray, medoid_indices: np.ndarray,
                         metric: MetricLike) -> np.ndarray:
        """``(N, k)`` full-dimensional distances to each medoid row.

        Bit-identical to ``cross_distances(X, X[medoid_indices])``:
        misses go through that very kernel, one batch for all missing
        columns.
        """
        self.bind(X)
        medoid_indices = np.asarray(medoid_indices, dtype=np.intp)
        mkey = self._metric_key(metric)
        # columns are held (and the batch assembled) in X's working
        # dtype; byte accounting via .nbytes means a float32 run fits
        # about twice the columns in the same budget
        out = np.empty((X.shape[0], medoid_indices.size), dtype=X.dtype)
        missing = []
        for j, row in enumerate(medoid_indices):
            col = self._distance.get((int(row), mkey))
            if col is None:
                missing.append(j)
            else:
                out[:, j] = col
        if missing:
            fresh = cross_distances(X, X[medoid_indices[missing]], metric)
            for slot, j in enumerate(missing):
                col = np.ascontiguousarray(fresh[:, slot])
                out[:, j] = col
                self._distance.put(
                    (int(medoid_indices[j]), mkey), col
                )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("cache.distance_computed", len(missing))
            tracer.count("cache.distance_served",
                         medoid_indices.size - len(missing))
        return out

    # ------------------------------------------------------------------
    def segmental_matrix(self, X: np.ndarray, medoid_indices: np.ndarray,
                         dim_sets: Sequence[Sequence[int]]) -> np.ndarray:
        """``(N, k)`` segmental assignment matrix with column reuse.

        A column is reused when its medoid kept both its row *and* its
        dimension set since it was computed; misses run through the
        vectorised kernel in one sub-batch (segment reductions are
        independent, so sub-batching preserves bits).
        """
        self.bind(X)
        medoid_indices = np.asarray(medoid_indices, dtype=np.intp)
        keys = [
            (int(row), tuple(int(d) for d in dims))
            for row, dims in zip(medoid_indices, dim_sets)
        ]
        out = np.empty((X.shape[0], medoid_indices.size), dtype=X.dtype)
        missing = []
        for j, key in enumerate(keys):
            col = self._segmental.get(key)
            if col is None:
                missing.append(j)
            else:
                out[:, j] = col
        if missing:
            fresh = segmental_columns(
                X, X[medoid_indices[missing]],
                [dim_sets[j] for j in missing],
            )
            for slot, j in enumerate(missing):
                col = np.ascontiguousarray(fresh[:, slot])
                out[:, j] = col
                self._segmental.put(keys[j], col)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("cache.segmental_computed", len(missing))
            tracer.count("cache.segmental_served",
                         medoid_indices.size - len(missing))
        return out

    # ------------------------------------------------------------------
    def locality_members(self, row: int, delta: float, min_size: int,
                         metric: MetricLike) -> Optional[np.ndarray]:
        """Cached locality member indices, or ``None`` on a miss."""
        return self._locality.get(
            (int(row), float(delta), int(min_size), self._metric_key(metric))
        )

    def store_locality_members(self, row: int, delta: float, min_size: int,
                               metric: MetricLike,
                               members: np.ndarray) -> None:
        """Record a locality member set under its determining key."""
        self._locality.put(
            (int(row), float(delta), int(min_size), self._metric_key(metric)),
            np.asarray(members, dtype=np.intp),
        )

    def dimension_stats(self, X: np.ndarray, medoid_indices: np.ndarray,
                        localities: Sequence[np.ndarray],
                        deltas: np.ndarray, min_size: int,
                        metric: MetricLike) -> np.ndarray:
        """The ``(k, d)`` matrix ``X_{i,j}``, one cached row per medoid.

        Misses call the same
        :func:`~repro.distance.matrix.per_dimension_average_distance`
        the uncached :func:`~repro.core.dimensions.dimension_statistics`
        uses, so rows are bit-identical.
        """
        self.bind(X)
        medoid_indices = np.asarray(medoid_indices, dtype=np.intp)
        mkey = self._metric_key(metric)
        k = medoid_indices.size
        # statistics rows are float64 for any working dtype: they feed
        # the Z-score ranking (see per_dimension_average_distance's
        # accumulation policy), and at (k, d) they are tiny
        stats = np.empty((k, X.shape[1]), dtype=np.float64)
        for i in range(k):
            row = int(medoid_indices[i])
            key = (row, float(deltas[i]), int(min_size), mkey)
            cached = self._stats.get(key)
            if cached is None:
                members = np.asarray(localities[i], dtype=np.intp)
                cached = per_dimension_average_distance(X[members], X[row])
                self._stats.put(key, cached)
            stats[i] = cached
        return stats

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all stores."""
        return sum(store.nbytes for store in self._stores)

    def stats_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-store counters plus footprint, for results/diagnostics."""
        out: Dict[str, Dict[str, float]] = {
            name: s.as_dict() for name, s in self.stats.items()
        }
        out["memory"] = {
            "bytes": self.nbytes,
            "budget_bytes": self.memory_budget_bytes,
            "entries": sum(len(store) for store in self._stores),
        }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rates = ", ".join(
            f"{name}={s.hit_rate:.0%}" for name, s in self.stats.items()
        )
        return f"IterativeCache({rates}, {self.nbytes >> 10} KiB)"
