"""Deterministic parallel execution layer.

PROCLUS is embarrassingly parallel at three grain sizes, and this
module provides one dispatcher for each without changing a single bit
of any result:

* **Restarts** — :func:`run_parallel_restarts` fans the ``restarts > 1``
  loop of :func:`repro.core.proclus._fit` out over a process pool.  The
  data matrix travels through a zero-copy shared-memory plane
  (:class:`SharedMatrix`): the parent publishes the sanitized ``X``
  once via :mod:`multiprocessing.shared_memory` and every worker
  attaches a read-only view instead of unpickling an ``(N, d)`` array
  per task.  Child seeds are spawned in the parent — the same
  :func:`repro.rng.spawn` streams the serial loop uses — and the winner
  is reduced order-independently by the key ``(iterative_objective,
  restart_index)``, which provably equals the serial loop's
  first-best-wins choice regardless of completion order.
* **Row chunks** — :func:`parallel_chunks` runs the chunk loops of the
  distance kernels (:func:`repro.distance.matrix.pairwise_distances`,
  :func:`repro.distance.segmental.segmental_distances_to_point`) on a
  thread pool.  Each chunk writes a disjoint output slice, numpy
  releases the GIL inside the arithmetic, and the per-chunk values are
  identical to the serial loop's, so the assembled array is too.
* **Experiment grids** — :func:`parallel_map` evaluates independent
  experiment configurations concurrently (ordered results, thread
  based: the runners close over local datasets and report objects,
  which a process pool could not pickle).

Deadline cooperation: a :class:`~repro.robustness.guards.Deadline`
cannot cross a process boundary (its epoch is a per-process
``perf_counter``), so the parent forwards the *remaining seconds* at
fan-out time and each worker starts a fresh deadline from that value —
workers self-terminate best-so-far exactly like an in-process fit.
Once the parent's budget expires, not-yet-started restarts are
cancelled and the reduction proceeds over every run that did complete.

``n_jobs`` semantics everywhere: ``1`` (the default) takes the exact
serial code path, ``>= 2`` uses that many workers, ``-1`` uses all
cores (``os.cpu_count()``); worker counts are additionally capped by
the number of tasks.
"""

from __future__ import annotations

import math
import os
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Sequence,
                    Tuple)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - deferred heavy import
    from multiprocessing.shared_memory import SharedMemory

from ..exceptions import ParameterError
from ..obs import maybe_trace, monotonic_s
from ..robustness.guards import Deadline
from ..validation import check_n_jobs

__all__ = [
    "resolve_n_jobs",
    "SharedMatrix",
    "parallel_chunks",
    "parallel_map",
    "run_parallel_restarts",
    "RestartFanoutOutcome",
]


def resolve_n_jobs(n_jobs: int, n_tasks: Optional[int] = None) -> int:
    """Turn the user-facing ``n_jobs`` knob into a concrete worker count.

    ``-1`` means all cores; any other value must be ``>= 1``.  The
    result is capped at ``n_tasks`` when given — more workers than
    independent tasks only cost startup time.
    """
    n_jobs = check_n_jobs(n_jobs)
    workers = os.cpu_count() or 1 if n_jobs == -1 else n_jobs
    if n_tasks is not None:
        workers = min(workers, max(1, int(n_tasks)))
    return max(1, workers)


# ----------------------------------------------------------------------
# Shared-memory data plane
# ----------------------------------------------------------------------

#: Per-process cache of attached segments: name -> (SharedMemory, view).
#: Workers serve many restarts from one pool, so each process attaches
#: a given matrix once and reuses the view for every later task.
_ATTACHED: Dict[str, Tuple[object, np.ndarray]] = {}


class SharedMatrix:
    """A matrix published once, attached read-only by workers.

    The parent calls :meth:`publish`, ships the small :attr:`descriptor`
    dict to each task, and :meth:`unlink`\\ s the segment when the
    fan-out is done.  Workers call :meth:`attach` with the descriptor
    and get a read-only ndarray view backed by the shared pages —
    no per-task pickling of the data matrix.
    """

    def __init__(self, shm: "SharedMemory", shape: Tuple[int, ...],
                 dtype: str) -> None:
        self._shm = shm
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self._unlinked = False
        # Leak guard: /dev/shm segments outlive their creator, so a
        # parent that dies between publish() and unlink() would strand
        # the pages until reboot.  The finalizer fires on garbage
        # collection AND at interpreter exit (atexit semantics), and is
        # disarmed by an explicit unlink() so the segment is settled
        # exactly once.
        self._finalizer = weakref.finalize(
            self, _release_segment, shm)

    @classmethod
    def publish(cls, X: np.ndarray) -> "SharedMatrix":
        """Copy ``X`` into a fresh shared-memory segment.

        The segment holds ``X`` in its own (sanitized working) dtype —
        the descriptor carries the dtype string and workers attach with
        it, so a float32 fan-out ships half the shared-memory bytes of
        a float64 one.
        """
        from multiprocessing import shared_memory

        X = np.ascontiguousarray(X)
        shm = shared_memory.SharedMemory(create=True, size=max(1, X.nbytes))
        view = np.ndarray(X.shape, dtype=X.dtype, buffer=shm.buf)
        view[...] = X
        # Freeze the parent-side view: every worker sees these pages, so
        # a stray in-place write after publish would corrupt the fan-out
        # (RPR008 enforces this contract statically).
        view.flags.writeable = False
        return cls(shm, X.shape, X.dtype.str)

    @property
    def descriptor(self) -> Dict[str, object]:
        """Picklable handle a worker needs to attach: name, shape, dtype."""
        return {"name": self._shm.name, "shape": self.shape,
                "dtype": self.dtype}

    @staticmethod
    def attach(descriptor: Dict[str, object]) -> np.ndarray:
        """Worker side: a read-only view of a published matrix.

        Attachments are cached per process: one ``mmap`` per matrix,
        not per task.  Pool workers inherit the parent's resource
        tracker (its fd travels with both fork and spawn start
        methods), so the attach-side registration is an idempotent
        set-insert there and the parent's single :meth:`unlink` settles
        the segment's lifetime.
        """
        name = str(descriptor["name"])
        cached = _ATTACHED.get(name)
        if cached is not None:
            return cached[1]
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        view = np.ndarray(tuple(descriptor["shape"]),
                          dtype=np.dtype(str(descriptor["dtype"])),
                          buffer=shm.buf)
        view.flags.writeable = False
        _ATTACHED[name] = (shm, view)
        return view

    def unlink(self) -> None:
        """Release the segment (parent side, after the fan-out).

        Idempotent: a second call (or the finalizer firing after an
        explicit call) is a no-op, so supervisor retry paths can unlink
        defensively without double-free errors.
        """
        if self._unlinked:
            return
        self._unlinked = True
        self._finalizer.detach()
        _release_segment(self._shm)


def _release_segment(shm: "SharedMemory") -> None:
    """Close and unlink one segment, tolerating prior reclamation."""
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already reclaimed
        pass


# ----------------------------------------------------------------------
# Chunked-kernel dispatcher (threads, disjoint output slices)
# ----------------------------------------------------------------------

def parallel_chunks(write_block: Callable[[int, int], None], n_rows: int, *,
                    chunk: Optional[int] = None, n_jobs: int = 1) -> None:
    """Run ``write_block(start, stop)`` over row ranges covering ``n_rows``.

    ``write_block`` must write only into its own ``[start, stop)`` slice
    of the output — the contract the memory-budgeted kernels already
    satisfy — so blocks can run on a thread pool without locking and the
    assembled result is bit-identical to the serial loop (each block
    computes the same values no matter who runs it, and every output
    cell is written exactly once).

    ``chunk=None`` with ``n_jobs=1`` makes a single call (the kernels'
    unchunked fast path).  With ``n_jobs != 1`` the range is split into
    at most ``chunk`` rows per block (when a memory budget demands it)
    and at least one block per worker.
    """
    workers = resolve_n_jobs(n_jobs, n_tasks=None)
    n_rows = int(n_rows)
    if n_rows <= 0:
        return
    if workers <= 1:
        if chunk is None:
            write_block(0, n_rows)
        else:
            for start in range(0, n_rows, chunk):
                write_block(start, min(start + chunk, n_rows))
        return
    per_worker = max(1, math.ceil(n_rows / workers))
    piece = per_worker if chunk is None else min(int(chunk), per_worker)
    starts = list(range(0, n_rows, piece))
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=min(workers, len(starts))) as pool:
        list(pool.map(
            lambda s: write_block(s, min(s + piece, n_rows)), starts,
        ))


# ----------------------------------------------------------------------
# Ordered map over independent configurations (experiment grids)
# ----------------------------------------------------------------------

def parallel_map(fn: Callable, items: Sequence, *, n_jobs: int = 1) -> List:
    """``[fn(x) for x in items]`` with results in input order.

    ``n_jobs=1`` is literally the list comprehension (exact serial
    path); otherwise items run on a thread pool.  Threads rather than
    processes because the experiment runners close over locally built
    datasets and report objects — unpicklable, but perfectly shareable
    within a process, and the heavy lifting inside (numpy kernels)
    releases the GIL.  Exceptions propagate to the caller exactly as in
    the serial loop.
    """
    items = list(items)
    workers = resolve_n_jobs(n_jobs, n_tasks=len(items))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


# ----------------------------------------------------------------------
# Restart fan-out (processes + shared-memory plane)
# ----------------------------------------------------------------------

@dataclass
class RestartFanoutOutcome:
    """What :func:`run_parallel_restarts` hands back to ``_fit``.

    ``best`` is the winning child's :class:`ProclusResult`;
    ``winner_notes`` the notes *that child alone* produced (losing
    restarts' notes are dropped, mirroring the serial loop's per-child
    note isolation).  ``completed``/``cancelled`` count restarts that
    ran to completion vs. ones the expired deadline cancelled before
    they started.  ``restart_seconds`` holds per-restart worker wall
    times indexed by restart (``None`` for cancelled ones).
    """

    best: object
    best_index: int
    winner_notes: List[str]
    completed: int
    cancelled: int
    restart_seconds: List[Optional[float]]
    n_workers: int


def _restart_worker(
    descriptor: Dict[str, object], index: int, seed: np.random.Generator,
    remaining_s: Optional[float], fit_kwargs: Dict,
    profile: bool = False,
) -> Tuple[int, object, List[str], float]:
    """One restart, executed in a pool worker.

    Imports are deferred: this module must stay importable from the
    distance layer without dragging in the core package (which imports
    the distance layer right back).

    With ``profile=True`` the worker runs its fit under a local tracer
    and ships the spans home as ``result.profile`` — the payload tuple
    shape stays fixed, so the supervisor's payload validation and the
    checkpoint format are unaffected.
    """
    from ..core.proclus import _fit

    X = SharedMatrix.attach(descriptor)
    deadline = Deadline.start(remaining_s) if remaining_s is not None else None
    params = dict(fit_kwargs)
    k = params.pop("k")
    l = params.pop("l")
    notes: List[str] = []
    t0 = monotonic_s()
    with maybe_trace(profile) as tracer:
        with tracer.span("restart", index=index):
            result = _fit(X, k, l, restarts=1, seed=seed, deadline=deadline,
                          notes=notes, n_jobs=1, **params)
        if tracer.enabled:
            result.profile = tracer.profile()
    return index, result, notes, monotonic_s() - t0


def run_parallel_restarts(X: np.ndarray, children: Sequence, *,
                          n_jobs: int,
                          deadline: Optional[Deadline],
                          fit_kwargs: Dict,
                          profile: bool = False) -> RestartFanoutOutcome:
    """Fan independent restarts out over a process pool.

    Parameters
    ----------
    X:
        The (already sanitized) data matrix; published once to shared
        memory, attached read-only by every worker.
    children:
        Per-restart generators spawned by the caller — the identical
        streams the serial loop would consume, so each restart computes
        the identical result in either mode.
    n_jobs:
        Worker-count knob (``-1`` = all cores; capped at
        ``len(children)``).
    deadline:
        Optional wall-clock budget.  Workers receive the remaining
        seconds at fan-out time and self-terminate best-so-far; once the
        parent observes expiry, not-yet-started restarts are cancelled.
    fit_kwargs:
        Keyword arguments for :func:`repro.core.proclus._fit` minus
        ``X``/``seed``/``deadline``/``notes``/``restarts``/``n_jobs``
        (must include ``k`` and ``l``).

    The winner is the completed restart minimising
    ``(iterative_objective, restart_index)`` — exactly the serial
    first-best-wins rule, independent of completion order.
    """
    restarts = len(children)
    workers = resolve_n_jobs(n_jobs, n_tasks=restarts)
    remaining = None
    if deadline is not None and not deadline.unlimited:
        remaining = deadline.remaining()

    plane = SharedMatrix.publish(X)
    results: Dict[int, object] = {}
    child_notes: Dict[int, List[str]] = {}
    seconds: List[Optional[float]] = [None] * restarts
    cancelled = 0
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(_restart_worker, plane.descriptor, i, child,
                            remaining, fit_kwargs, profile)
                for i, child in enumerate(children)
            }
            while pending:
                # Bounded timeout so deadline expiry is observed promptly
                # even when every worker is busy: an untimed wait would
                # postpone cancelling pending restarts until some future
                # happens to finish.
                done, pending = wait(pending, timeout=0.05,
                                     return_when=FIRST_COMPLETED)
                for fut in done:
                    if fut.cancelled():
                        continue
                    index, result, notes, secs = fut.result()
                    results[index] = result
                    child_notes[index] = notes
                    seconds[index] = secs
                if deadline is not None and deadline.expired():
                    for fut in pending:
                        if fut.cancel():
                            cancelled += 1
                    pending = {f for f in pending if not f.cancelled()}
    finally:
        plane.unlink()

    if not results:  # pragma: no cover - at least one future always runs
        raise ParameterError("no restart completed")
    best_index = min(
        results, key=lambda i: (results[i].iterative_objective, i),
    )
    return RestartFanoutOutcome(
        best=results[best_index],
        best_index=best_index,
        winner_notes=child_notes[best_index],
        completed=len(results),
        cancelled=cancelled,
        restart_seconds=seconds,
        n_workers=workers,
    )
