"""Performance layer: hot-path caches and batched kernels.

The iterative phase (paper §2.2) re-evaluates a full vertex — medoid
distances, localities, dimension statistics, segmental assignment —
on every hill-climbing step, even though a step changes only the bad
medoids (typically 1–2 of ``k``).  This package holds the machinery
that exploits that incrementality without changing a single bit of the
output:

* :mod:`repro.perf.kernels` — a vectorised multi-medoid Manhattan
  segmental kernel (single gather + ``np.add.reduceat`` over a
  concatenated dims layout) replacing per-medoid Python loops;
* :mod:`repro.perf.cache` — :class:`IterativeCache`, a byte-bounded
  LRU cache of per-medoid distance columns, segmental columns, and
  locality statistics, keyed by medoid row index (and dimension set)
  so only the columns of swapped medoids are recomputed.

Everything here is exact: cached and uncached paths produce
bit-identical results (enforced by the tier-1 property suite).
"""

from .cache import CacheStats, IterativeCache
from .kernels import build_dims_layout, segmental_columns

__all__ = [
    "IterativeCache",
    "CacheStats",
    "segmental_columns",
    "build_dims_layout",
]
