"""Performance layer: hot-path caches and batched kernels.

The iterative phase (paper §2.2) re-evaluates a full vertex — medoid
distances, localities, dimension statistics, segmental assignment —
on every hill-climbing step, even though a step changes only the bad
medoids (typically 1–2 of ``k``).  This package holds the machinery
that exploits that incrementality without changing a single bit of the
output:

* :mod:`repro.perf.kernels` — a vectorised multi-medoid Manhattan
  segmental kernel (single gather + ``np.add.reduceat`` over a
  concatenated dims layout) replacing per-medoid Python loops;
* :mod:`repro.perf.cache` — :class:`IterativeCache`, a byte-bounded
  LRU cache of per-medoid distance columns, segmental columns, and
  locality statistics, keyed by medoid row index (and dimension set)
  so only the columns of swapped medoids are recomputed;
* :mod:`repro.perf.parallel` — the deterministic parallel execution
  layer: a shared-memory process-pool fan-out for independent restarts,
  a thread dispatcher for the chunked distance kernels, and an ordered
  :func:`~repro.perf.parallel.parallel_map` for experiment grids, all
  behind an ``n_jobs`` knob whose default (``1``) is the exact serial
  code path.

Everything here is exact: cached and uncached paths produce
bit-identical results (enforced by the tier-1 property suite), and so
do serial and parallel ones.
"""

from __future__ import annotations

from .cache import CacheStats, IterativeCache
from .kernels import build_dims_layout, segmental_columns
from .parallel import (
    SharedMatrix,
    parallel_chunks,
    parallel_map,
    resolve_n_jobs,
    run_parallel_restarts,
)

__all__ = [
    "IterativeCache",
    "CacheStats",
    "segmental_columns",
    "build_dims_layout",
    "SharedMatrix",
    "parallel_chunks",
    "parallel_map",
    "resolve_n_jobs",
    "run_parallel_restarts",
]
