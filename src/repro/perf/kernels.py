"""Batched segmental-distance kernels.

The assignment step needs the ``(N, k)`` matrix of Manhattan segmental
distances where column ``i`` is measured in medoid ``i``'s own dimension
set ``D_i``.  The historical implementation looped over medoids, paying
``k`` full passes over ``X`` plus ``k`` Python-level dispatches per
vertex.  The kernel here concatenates all dimension sets into one flat
layout, gathers ``X[:, flat_dims]`` **once**, and reduces each medoid's
segment with ``np.add.reduceat`` — one pass, three temporaries, no
Python loop over medoids.

The segments of the concatenated layout are reduced independently, so
computing a subset of medoids (as the cache does on partial misses)
yields bit-identical columns to computing all of them at once.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..dtypes import as_working
from ..exceptions import ParameterError
from ..obs import get_tracer
from ..robustness.guards import resolve_row_chunk

__all__ = ["build_dims_layout", "segmental_columns"]


def build_dims_layout(
    dim_sets: Sequence[Sequence[int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated dims layout ``(flat_dims, starts, counts)``.

    ``flat_dims`` is every medoid's dimension set back to back;
    ``starts[i]`` is where medoid ``i``'s segment begins (the reduceat
    boundaries) and ``counts[i] = |D_i|``.
    """
    counts = np.array([len(d) for d in dim_sets], dtype=np.intp)
    if counts.size == 0:
        raise ParameterError("need at least one dimension set")
    if (counts == 0).any():
        empty = int(np.flatnonzero(counts == 0)[0])
        raise ParameterError(
            f"Manhattan segmental distance needs a non-empty dimension "
            f"set; dimension set {empty} is empty"
        )
    flat = np.concatenate(
        [np.asarray(tuple(d), dtype=np.intp) for d in dim_sets]
    )
    starts = np.zeros(counts.size, dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])
    return flat, starts, counts


def segmental_columns(X: np.ndarray, medoids: np.ndarray,
                      dim_sets: Sequence[Sequence[int]], *,
                      memory_budget_bytes: Optional[int] = None,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
    """``(n, k)`` segmental distances, all medoids in one vectorised pass.

    Column ``i`` is the Manhattan segmental distance from every row of
    ``X`` to ``medoids[i]`` relative to ``dim_sets[i]``.  When the
    ``(n, sum|D_i|)`` gather would exceed ``memory_budget_bytes`` (see
    :mod:`repro.robustness.guards`), rows are processed in chunks —
    identical values, bounded peak memory.

    The kernel computes natively in ``X``'s working dtype (float32 in,
    float32 out — the gather and ``np.add.reduceat`` move half the
    bytes).  Accumulation policy: each reduceat segment spans only
    ``|D_i| <= d`` entries, a short reduction with identical rounding
    exposure in every column, so no float64 accumulator is needed —
    the downstream argmin compares like against like.

    A caller-provided ``out`` must have shape ``(n, k)`` and ``X``'s
    working dtype; mismatches raise
    :class:`~repro.exceptions.ParameterError` up front instead of a
    cryptic broadcast/casting error from the in-place ``out /= counts``.
    """
    X = as_working(X)
    medoids = np.atleast_2d(np.asarray(medoids, dtype=X.dtype))
    flat, starts, counts = build_dims_layout(dim_sets)
    k = counts.size
    if medoids.shape[0] != k:
        raise ParameterError(
            f"need one dimension set per medoid; got {k} for "
            f"k={medoids.shape[0]}"
        )
    # medoid coordinate under each concatenated (owner, dim) slot
    p_flat = medoids[np.repeat(np.arange(k), counts), flat]
    n = X.shape[0]
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("kernel.segmental_rows", n * k)
        # bytes the kernel streams: the (n, sum|D_i|) gather + diff and
        # the (n, k) output, in the working dtype
        tracer.count("kernel.segmental_bytes",
                     n * (flat.size + k) * X.dtype.itemsize)
    if out is None:
        out = np.empty((n, k), dtype=X.dtype)
    else:
        if out.shape != (n, k):
            raise ParameterError(
                f"out has shape {out.shape}; expected ({n}, {k})"
            )
        if out.dtype != X.dtype:
            raise ParameterError(
                f"out has dtype {out.dtype.name}; expected the working "
                f"dtype {X.dtype.name}"
            )
    chunk = resolve_row_chunk(n, flat.size, memory_budget_bytes,
                              itemsize=X.dtype.itemsize)
    step = max(1, n if chunk is None else chunk)
    for start in range(0, max(n, 1), step):
        block = X[start:start + step]
        diffs = np.abs(block[:, flat] - p_flat)
        np.add.reduceat(diffs, starts, axis=1, out=out[start:start + step])
    out /= counts
    return out
