#!/usr/bin/env python
"""End-to-end smoke test of the serving stack, as CI runs it.

Exercises the full production path through real processes and real
sockets — the parts in-process unit tests cannot cover:

1. ``proclus generate`` + ``proclus cluster --save-model`` produce a
   fingerprinted model file;
2. ``proclus serve`` is launched as a subprocess and polled on
   ``/readyz`` until it accepts traffic;
3. a :class:`repro.serve.PredictClient` round-trips the full training
   set and the labels must be **bit-identical** to a local
   ``load_result(...).predict(...)`` — serving must not perturb the
   numerics;
4. the server gets a real ``SIGTERM`` mid-life and must drain and exit
   with code 0.

Exit code 0 on success; any assertion or subprocess failure is fatal.
Run from the repository root::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np


def _run_cli(*argv: str) -> None:
    cmd = [sys.executable, "-m", "repro", *argv]
    print("+", " ".join(argv))
    subprocess.run(cmd, check=True, env=_env())


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.getcwd(), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def main() -> int:
    from repro.core.serialization import load_result
    from repro.data.io import load_csv
    from repro.serve import PredictClient

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        data = os.path.join(tmp, "data.csv")
        model = os.path.join(tmp, "model.npz")
        _run_cli("generate", data, "--n-points", "2000", "--n-dims", "14",
                 "--n-clusters", "4", "--seed", "23")
        _run_cli("cluster", data, "-k", "4", "-l", "5", "--seed", "23",
                 "--save-model", model)

        result = load_result(model)
        points = load_csv(data).points
        local_labels = result.predict(points)
        assert np.array_equal(local_labels, result.labels), \
            "predict(X_train) must reproduce the fitted labels bit-identically"

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", model, "--port", "0"],
            env=_env(), stdout=subprocess.PIPE, text=True)
        try:
            banner = (proc.stdout.readline() or "").strip()
            print(banner)
            assert banner.startswith("listening on http://"), banner
            port = int(banner.rsplit(":", 1)[1].rstrip("/"))
            client = PredictClient(port=port, seed=0)

            deadline = time.monotonic() + 15.0
            while not client.ready():
                assert time.monotonic() < deadline, "server never became ready"
                time.sleep(0.05)

            served = np.asarray(
                client.predict(points, deadline_s=30.0)["labels"])
            assert np.array_equal(served, local_labels), \
                "served labels must be bit-identical to local predict"
            print(f"served {served.size} labels bit-identical to local "
                  f"predict ({int((served == -1).sum())} outliers)")

            stats = client.stats()
            assert stats["breaker"]["state"] == "closed", stats["breaker"]
            assert stats["counters"].get("predictions", 0) >= 1, stats

            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=15)
            assert code == 0, f"SIGTERM drain must exit 0, got {code}"
            print("SIGTERM drain: exit 0")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
