"""Produce the paper-vs-measured record for EXPERIMENTS.md.

Runs every experiment at the largest scale that is practical in pure
Python (accuracy cases at the paper's full N = 100,000; scalability
sweeps and CLIQUE studies at documented reduced scales) and prints a
structured report.  Expect ~10-20 minutes.

Run:  python scripts/run_paper_scale.py | tee paper_scale_results.txt
"""

import time

from repro.experiments import (
    run_accuracy_case,
    run_clique_quality,
    run_initialization_ablation,
    run_locality_theorem_check,
    run_min_deviation_ablation,
    run_pool_size_ablation,
    run_scalability_cluster_dim,
    run_scalability_points,
    run_scalability_space_dim,
    run_table5_snapshot,
)

SEED = 70  # balanced cluster sizes in both cases (see benchmarks/conftest.py)


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    t_start = time.time()

    banner("Tables 1 & 3 — Case 1 accuracy at paper scale (N = 100,000)")
    rep1 = run_accuracy_case(1, n_points=100_000, seed=SEED,
                             max_bad_tries=40, restarts=3)
    print(rep1.to_text())

    banner("Tables 2 & 4 — Case 2 accuracy at paper scale (N = 100,000)")
    rep2 = run_accuracy_case(2, n_points=100_000, seed=SEED,
                             max_bad_tries=40, restarts=3)
    print(rep2.to_text())

    banner("Section 4.2 — CLIQUE quality sweep (N = 3,000; tau in percent)")
    quality = run_clique_quality(n_points=3000, seed=SEED)
    print(quality.to_text())

    banner("Table 5 — CLIQUE restricted to 7-dim clusters (N = 3,000)")
    snap = run_table5_snapshot(n_points=3000, seed=SEED)
    print(snap.to_text())

    banner("Figure 7 — runtime vs N (PROCLUS + CLIQUE)")
    fig7 = run_scalability_points(
        sizes=(2000, 4000, 8000, 16000), include_clique=True,
        clique_max_dim=6, seed=7, proclus_repeats=3,
    )
    print(fig7.to_text())
    print(f"PROCLUS log-log slope: {fig7.slope('PROCLUS'):.2f}")
    print(f"CLIQUE  log-log slope: {fig7.slope('CLIQUE'):.2f}")
    print("speedup (CLIQUE/PROCLUS): "
          + ", ".join(f"{s:.1f}x" for s in fig7.speedup("PROCLUS", "CLIQUE")))

    banner("Figure 8 — runtime vs cluster dimensionality l (N = 3,000)")
    fig8 = run_scalability_cluster_dim(
        dims=(4, 5, 6, 7), n_points=3000, include_clique=True, seed=7,
        proclus_repeats=3,
    )
    print(fig8.to_text())
    print(f"growth l=4 -> 7: PROCLUS "
          f"{fig8.series['PROCLUS'][-1] / fig8.series['PROCLUS'][0]:.2f}x, "
          f"CLIQUE {fig8.series['CLIQUE'][-1] / fig8.series['CLIQUE'][0]:.2f}x")

    banner("Figure 9 — runtime vs space dimensionality d (N = 20,000)")
    fig9 = run_scalability_space_dim(dims=(20, 30, 40, 50), n_points=20_000,
                                     seed=7)
    print(fig9.to_text())
    print(f"PROCLUS log-log slope: {fig9.slope('PROCLUS'):.2f}")

    banner("Theorem 3.1 — expected locality size (N = 10,000, k = 5)")
    print(run_locality_theorem_check(n_points=10_000, k=5, n_trials=60,
                                     seed=42).to_text())

    banner("Ablation — initialization strategy (N = 5,000)")
    print(run_initialization_ablation(n_points=5000, n_seeds=3,
                                      seed=SEED).to_text())

    banner("Ablation — minDeviation (N = 5,000)")
    print(run_min_deviation_ablation(n_points=5000, seed=SEED).to_text())

    banner("Ablation — sample/pool multipliers A, B (N = 5,000)")
    print(run_pool_size_ablation(n_points=5000, seed=SEED).to_text())

    print(f"\ntotal wall clock: {time.time() - t_start:.0f}s")


if __name__ == "__main__":
    main()
