"""Table 3: Case-1 confusion matrix — one dominant entry per row.

Paper claim: "In both cases PROCLUS discovers output clusters in which
the majority of points comes from one input cluster ... it recognizes
the natural clustering of the points", with a near-diagonal confusion
matrix and outliers partially absorbed into clusters (which the paper
notes "is not necessarily an error").
"""

from conftest import BALANCED_SEED, run_once

from repro.experiments.accuracy import run_accuracy_case


def test_table3_confusion_structure(benchmark):
    report = run_once(
        benchmark, run_accuracy_case, 1,
        n_points=4000, seed=BALANCED_SEED, max_bad_tries=30,
    )

    # each output cluster dominated by a single input cluster
    assert report.mean_dominance > 0.8
    # cluster-to-cluster confusion is marginal
    assert report.misplaced_fraction < 0.1
    # the partition agrees with ground truth
    assert report.ari > 0.7
    # the rendered table has the paper's layout
    text = report.confusion.to_table()
    assert text.splitlines()[0].startswith("Input")
    assert "Outliers" in text
