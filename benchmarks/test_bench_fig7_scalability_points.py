"""Figure 7: runtime vs number of points — both linear, PROCLUS faster.

Paper claim: "PROCLUS scales linearly with the number of input points,
while outperforming CLIQUE by a factor of approximately 10."

Bench-scale check: PROCLUS's log-log slope vs N stays near 1 and
PROCLUS beats CLIQUE at every size.  (The exact speedup factor is
implementation- and scale-dependent; the paper's factor 10 is for their
C CLIQUE at N = 100k..500k.)
"""

from conftest import run_once

from repro.experiments.scalability import run_scalability_points


def test_fig7_runtime_vs_points(benchmark):
    report = run_once(
        benchmark, run_scalability_points,
        sizes=(500, 1000, 2000, 4000), include_clique=True,
        clique_tau_percent=0.5, clique_max_dim=4, seed=7,
    )

    proclus_secs = report.series["PROCLUS"]
    clique_secs = report.series["CLIQUE"]

    # PROCLUS wins at every size
    assert all(p < c for p, c in zip(proclus_secs, clique_secs))
    # near-linear scaling for PROCLUS (generous CI tolerance)
    assert report.slope("PROCLUS") < 1.6
    # CLIQUE is at least a few times slower on average
    speedups = report.speedup("PROCLUS", "CLIQUE")
    assert sum(speedups) / len(speedups) > 2.0
