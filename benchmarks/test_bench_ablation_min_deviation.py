"""Ablation: the bad-medoid threshold minDeviation (paper: 0.1).

The paper fixes minDeviation = 0.1 "in most experiments".  The bench
sweeps it and checks the paper's default is a sound choice: quality at
0.1 is close to the best value in the sweep.
"""

from conftest import BALANCED_SEED, run_once

from repro.experiments.ablations import run_min_deviation_ablation


def test_min_deviation_ablation(benchmark):
    report = run_once(
        benchmark, run_min_deviation_ablation,
        n_points=3000, values=(0.01, 0.1, 0.5), seed=BALANCED_SEED,
    )

    rows = {r["variant"]: r for r in report.rows}
    best_ari = max(r["ari"] for r in report.rows)
    assert rows["0.1"]["ari"] >= best_ari - 0.15
    # all settings produce valid clusterings
    assert all(r["ari"] > 0.3 for r in report.rows)
