"""Extension bench: CLARA-style subsampled fitting at larger N.

The paper's per-iteration cost is O(N·k·d); hill climbing on a uniform
subsample with a full-data refinement pass (`fit_sample_size`) trades a
bounded quality delta for a large wall-clock cut.  The bench checks
both sides of the trade.
"""

from conftest import run_once

from repro.core.proclus import proclus
from repro.data import generate
from repro.metrics import adjusted_rand_index


def _compare(n=12_000, sample=2000):
    ds = generate(n, 16, 4, cluster_dim_counts=[5] * 4,
                  outlier_fraction=0.03, seed=70)
    full = proclus(ds.points, 4, 5, seed=71, max_bad_tries=15,
                   keep_history=False)
    sampled = proclus(ds.points, 4, 5, seed=71, max_bad_tries=15,
                      fit_sample_size=sample, keep_history=False)
    return {
        "full_fit_seconds": full.phase_seconds["iterative"],
        "sampled_fit_seconds": sampled.phase_seconds["sample_fit"],
        "full_ari": adjusted_rand_index(full.labels, ds.labels),
        "sampled_ari": adjusted_rand_index(sampled.labels, ds.labels),
    }


def test_large_mode_tradeoff(benchmark):
    stats = run_once(benchmark, _compare)

    # the subsampled hill climb is meaningfully faster...
    assert stats["sampled_fit_seconds"] < stats["full_fit_seconds"]
    # ...while quality stays comparable
    assert stats["sampled_ari"] > stats["full_ari"] - 0.2
    assert stats["sampled_ari"] > 0.6
