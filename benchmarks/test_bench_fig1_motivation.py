"""Figure 1 motivation: PROCLUS succeeds where the alternatives fail.

The paper's introductory argument, quantified: on two clusters living
in (x, y) and (x, z) respectively, full-dimensional k-means and DBSCAN
find nothing, global feature selection loses one pattern, and PROCLUS
recovers both clusters *and* their dimension sets.
"""

from conftest import run_once

from repro.experiments.motivation import run_motivation


def test_fig1_motivation(benchmark):
    report = run_once(benchmark, run_motivation, n_points=2000, seed=3)

    scores = report.scores
    assert scores["PROCLUS"] > 0.9
    assert scores["PROCLUS"] > scores["feature selection + k-means"] + 0.3
    assert scores["PROCLUS"] > scores["k-means (full space)"] + 0.5
    assert scores["PROCLUS"] > scores["DBSCAN (full space)"] + 0.5
    # PROCLUS's recovered dimensions are the planted subspaces
    dims = set(map(tuple, report.proclus_dimensions.values()))
    assert dims == {(0, 1), (0, 2)}
