"""Section-1 motivation bench: the curse of dimensionality, measured.

Paper: "in high dimensional applications it is likely that for any
given pair of points there exist at least a few dimensions on which the
points are far apart", and nearest-neighbour contrast collapses ([22]).
Both effects must reproduce — they are the reason projected clustering
exists.
"""

from conftest import run_once

from repro.experiments.curse import run_curse_of_dimensionality


def test_curse_of_dimensionality(benchmark):
    report = run_once(
        benchmark, run_curse_of_dimensionality,
        dims=(2, 10, 30), n_points=1500, seed=11,
    )

    # nearest-neighbour contrast of uniform data collapses with d
    assert report.contrast_decays()
    assert report.relative_contrast[0] > 10 * report.relative_contrast[-1]
    # same-projected-cluster pairs become far apart in some dimension
    assert report.separation_grows()
    assert report.far_pair_probability[-1] > 0.95
