"""Ablation: the two-step initialization (paper section 2.1).

Paper argument: pure greedy over-selects outliers; pure random sampling
gives no separation guarantee; greedy *on a sample* gets both benefits.
The bench verifies the paper's choice is at least as good as the
alternatives on a Case-1-style workload (in ARI, averaged over seeds).
"""

from conftest import BALANCED_SEED, run_once

from repro.experiments.ablations import run_initialization_ablation


def test_initialization_ablation(benchmark):
    report = run_once(
        benchmark, run_initialization_ablation,
        n_points=3000, n_seeds=3, seed=BALANCED_SEED,
    )

    rows = {r["variant"]: r for r in report.rows}
    paper = rows["greedy_on_sample (paper)"]
    # the paper's strategy is competitive with both alternatives
    assert paper["ari"] >= rows["random_pool"]["ari"] - 0.10
    assert paper["ari"] >= rows["greedy_on_full"]["ari"] - 0.10
    # and produces a usable clustering outright
    assert paper["ari"] > 0.5
    # report renders
    assert "initialization" in report.to_text()
