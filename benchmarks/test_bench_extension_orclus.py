"""Extension bench: oriented subspaces (ORCLUS) vs axis-parallel (PROCLUS).

The paper's future-work direction, realised: on workloads whose
projected structure is rotated out of the coordinate axes, PROCLUS's
axis-parallel model fails by construction while ORCLUS's per-cluster
eigen-analysis recovers the clusters.  On the paper's own axis-parallel
workloads PROCLUS remains the method of choice (it also names the
dimensions, which ORCLUS's arbitrary bases cannot).
"""

from conftest import run_once

from repro import proclus
from repro.data import generate, generate_rotated
from repro.extensions import orclus
from repro.metrics import adjusted_rand_index


def _compare_on_rotated():
    ds = generate_rotated(2000, 12, 3, cluster_dim_counts=[4, 4, 4], seed=5)
    o = orclus(ds.points, 3, 4, seed=5)
    p = proclus(ds.points, 3, 4, seed=5, max_bad_tries=20,
                keep_history=False)
    return {
        "orclus_ari": adjusted_rand_index(o.labels, ds.labels),
        "proclus_ari": adjusted_rand_index(p.labels, ds.labels),
    }


def test_orclus_vs_proclus_rotated(benchmark):
    scores = run_once(benchmark, _compare_on_rotated)
    assert scores["orclus_ari"] > 0.6
    assert scores["proclus_ari"] < 0.4
    assert scores["orclus_ari"] > scores["proclus_ari"] + 0.3


def _axis_parallel_fit():
    ds = generate(1500, 12, 3, cluster_dim_counts=[4, 4, 4],
                  outlier_fraction=0.0, seed=7)
    result = proclus(ds.points, 3, 4, seed=7, max_bad_tries=20,
                     restarts=3, keep_history=False)
    return ds, result


def test_proclus_still_wins_dimension_interpretability(benchmark):
    """On axis-parallel data both cluster well, but only PROCLUS names
    the dimensions — the paper's interpretability argument."""
    ds, p = run_once(benchmark, _axis_parallel_fit)
    assert adjusted_rand_index(p.labels, ds.labels) > 0.8
    # the recovered dimension sets are actual coordinate subsets
    for dims in p.dimensions.values():
        assert all(isinstance(j, int) for j in dims)
