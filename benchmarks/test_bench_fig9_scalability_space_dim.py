"""Figure 9: PROCLUS runtime vs space dimensionality d — linear.

Paper claim: "As expected, PROCLUS scales linearly with the
dimensionality of the entire space" (d = 20..50 in the paper).
"""

from conftest import run_once

from repro.experiments.scalability import run_scalability_space_dim


def test_fig9_runtime_vs_space_dim(benchmark):
    report = run_once(
        benchmark, run_scalability_space_dim,
        dims=(10, 20, 40), n_points=2000, cluster_dim=5, seed=7,
    )

    secs = report.series["PROCLUS"]
    # monotone increase with d
    assert secs[0] < secs[-1]
    # near-linear power law (slope ~1; generous CI tolerance)
    assert report.slope("PROCLUS") < 1.6
    # quadrupling d must not cost more than ~8x (linear would be ~4x)
    assert secs[-1] / secs[0] < 8.0
