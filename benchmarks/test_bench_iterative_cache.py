"""Incremental-cache speedup on the Figure-7 scalability workload.

The hill climbing revisits a vertex that differs from the best one in
only the swapped (bad) medoids — typically 1-2 of ``k``.  The
:mod:`repro.perf` cache therefore recomputes only the invalidated
columns, cutting the per-iteration distance work from ``O(N*k*d)`` to
``O(N*|bad|*d)``.  This bench runs the iterative phase on the paper's
Figure-7 configuration (20-dim space, 5 clusters of dimensionality 5,
5% outliers) with the cache on and off, asserts the two runs are
**bit-identical**, and requires the cache to win by at least 2x at the
largest size.

Timings land in ``BENCH_iterative_cache.json`` at the repo root (see
``docs/performance.md`` for how to read it).
"""

import json
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.core import run_iterative_phase
from repro.core.initialization import initialize_medoid_pool
from repro.data.synthetic import SyntheticDataGenerator
from repro.experiments.configs import make_scalability_config
from repro.rng import ensure_rng, spawn

K, L = 5, 5
N_DIMS = 20
SEED = 7
SIZES = (2000, 4000, 8000, 16000)
REPEATS = 3

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_iterative_cache.json"


def _workload(n_points):
    cfg = make_scalability_config(n_points, N_DIMS, K, seed=SEED)
    X = SyntheticDataGenerator(cfg).generate().points
    rng_init, _ = spawn(ensure_rng(SEED), 2)
    pool = initialize_medoid_pool(X, 30 * K, 5 * K, seed=rng_init)
    return X, pool


def _run(X, pool, cache):
    return run_iterative_phase(X, pool, K, L, seed=SEED,
                               cache=cache, keep_history=False)


def _fingerprint(out):
    return (out.medoid_indices.tolist(), out.dim_sets, out.labels.tolist(),
            out.objective, out.n_iterations, out.terminated_by)


def test_cache_smoke_bit_identical():
    """CI gate: cached and uncached phases agree to the last bit."""
    X, pool = _workload(1500)
    cached = _run(X, pool, cache=True)
    uncached = _run(X, pool, cache=False)
    assert _fingerprint(cached) == _fingerprint(uncached)
    assert cached.cache_stats is not None
    assert cached.cache_stats["distance"]["hits"] > 0


def test_cache_speedup_fig7(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            X, pool = _workload(n)
            _run(X, pool, cache=False)  # warm numpy/allocator
            uncached = min(_timed(X, pool, False) for _ in range(REPEATS))
            cached = min(_timed(X, pool, True) for _ in range(REPEATS))
            out_cached = _run(X, pool, cache=True)
            out_uncached = _run(X, pool, cache=False)
            assert _fingerprint(out_cached) == _fingerprint(out_uncached)
            rows.append({
                "n_points": n,
                "uncached_seconds": uncached,
                "cached_seconds": cached,
                "speedup": uncached / cached,
                "cache_stats": out_cached.cache_stats,
            })
        return rows

    def _timed(X, pool, cache):
        t0 = time.perf_counter()
        _run(X, pool, cache=cache)
        return time.perf_counter() - t0

    rows = run_once(benchmark, sweep)

    report = {
        "workload": {
            "figure": 7,
            "n_dims": N_DIMS,
            "n_clusters": K,
            "cluster_dimensionality": 5,
            "outlier_fraction": 0.05,
            "k": K,
            "l": L,
            "seed": SEED,
            "timing": f"best of {REPEATS} runs of run_iterative_phase",
        },
        "sizes": list(SIZES),
        "results": rows,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    speedups = [r["speedup"] for r in rows]
    # the cacheable O(N*k*d) work grows with N while per-vertex Python
    # overhead does not, so the win must be largest at the biggest size
    assert speedups[-1] >= 2.0
    assert all(s > 1.0 for s in speedups)
    # the distance store should be doing real work, not thrashing
    largest = rows[-1]["cache_stats"]["distance"]
    assert largest["hit_rate"] > 0.3
    assert largest["evictions"] == 0
