"""Restart fan-out speedup on the Figure-7 scalability workload.

Restarts are embarrassingly parallel: each child runs the full
init/iterative/refinement pipeline on its own spawned seed stream, so
``n_jobs`` workers fanning out over a shared-memory copy of ``X``
should approach an ``n_jobs``-fold speedup — *without changing a single
bit of the answer*.  This bench runs ``restarts=4`` on the paper's
Figure-7 configuration serially and with ``n_jobs=4``, asserts the two
winners are bit-identical, and requires the fan-out to win by at least
1.5x **when the machine has the cores to show it** (four restarts on
fewer than four cores are partly serialized by the OS; the JSON then
records the core count that capped the run instead of failing).

Timings land in ``BENCH_parallel_restarts.json`` at the repo root (see
``docs/performance.md`` for how to read it).
"""

import json
import os
import time
from pathlib import Path

from conftest import run_once

from repro.core.proclus import proclus
from repro.data.synthetic import SyntheticDataGenerator
from repro.experiments.configs import make_scalability_config

K, L = 5, 5
N_DIMS = 20
SEED = 7
N_POINTS = 6000
RESTARTS = 4
N_JOBS = 4
REPEATS = 3

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel_restarts.json"

FIT = dict(seed=SEED, restarts=RESTARTS, keep_history=False)


def _workload(n_points=N_POINTS):
    cfg = make_scalability_config(n_points, N_DIMS, K, seed=SEED)
    return SyntheticDataGenerator(cfg).generate().points


def _fingerprint(result):
    return (result.labels.tolist(), result.medoid_indices.tolist(),
            result.dimensions, result.objective,
            result.iterative_objective, result.terminated_by)


def test_parallel_smoke_bit_identical():
    """CI gate: serial and fanned-out restarts agree to the last bit."""
    X = _workload(1500)
    serial = proclus(X, K, L, **FIT)
    fanned = proclus(X, K, L, n_jobs=2, **FIT)
    assert _fingerprint(serial) == _fingerprint(fanned)
    assert fanned.parallelism["n_workers"] == 2
    assert fanned.parallelism["restarts_completed"] == RESTARTS


def test_parallel_restart_speedup_fig7(benchmark):
    cores = os.cpu_count() or 1

    def sweep():
        X = _workload()
        proclus(X, K, L, **FIT)  # warm numpy/allocator
        serial_s = min(_timed(X, 1) for _ in range(REPEATS))
        fanned_s = min(_timed(X, N_JOBS) for _ in range(REPEATS))
        serial = proclus(X, K, L, **FIT)
        fanned = proclus(X, K, L, n_jobs=N_JOBS, **FIT)
        assert _fingerprint(serial) == _fingerprint(fanned)
        return {
            "n_points": N_POINTS,
            "restarts": RESTARTS,
            "n_jobs": N_JOBS,
            "cpu_cores": cores,
            "serial_seconds": serial_s,
            "parallel_seconds": fanned_s,
            "speedup": serial_s / fanned_s,
            "parallelism": fanned.parallelism,
        }

    def _timed(X, n_jobs):
        t0 = time.perf_counter()
        proclus(X, K, L, n_jobs=n_jobs, **FIT)
        return time.perf_counter() - t0

    row = run_once(benchmark, sweep)

    report = {
        "workload": {
            "figure": 7,
            "n_dims": N_DIMS,
            "n_clusters": K,
            "cluster_dimensionality": 5,
            "outlier_fraction": 0.05,
            "k": K,
            "l": L,
            "seed": SEED,
            "timing": f"best of {REPEATS} full proclus() runs",
        },
        "result": row,
    }
    if cores >= N_JOBS:
        report["note"] = (
            f"{cores} cores available for n_jobs={N_JOBS}; "
            "the >= 1.5x speedup gate applies."
        )
        OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        assert row["speedup"] >= 1.5
    else:
        # fewer cores than workers: the OS time-slices the restart
        # processes, so wall-clock gains are capped near 1x no matter
        # what the execution layer does.  Record the cap instead of
        # failing — the bit-identity assertion above still ran.
        report["note"] = (
            f"runner has {cores} CPU core(s); n_jobs={N_JOBS} restarts "
            "are time-sliced, capping the achievable speedup near 1x. "
            "The >= 1.5x gate applies only on >= 4 cores; this run "
            "records timings and verifies bit-identity only."
        )
        OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        # fan-out overhead (process spawn + shared-memory publish) must
        # still be bounded even when it cannot win
        assert row["speedup"] > 0.5
