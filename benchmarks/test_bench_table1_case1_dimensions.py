"""Table 1: PROCLUS recovers each cluster's dimension set (Case 1).

Paper claim: "there is a perfect correspondence between the sets of
dimensions of the output clusters and their corresponding input
clusters" on the Case-1 file (all clusters 7-dimensional, l = 7).

At bench scale (N = 4,000 instead of 100,000) we require a high — not
necessarily perfect — exact-match rate and near-perfect Jaccard
similarity; the paper-scale run in EXPERIMENTS.md reproduces the exact
correspondence.
"""

from conftest import BALANCED_SEED, run_once

from repro.core.proclus import proclus
from repro.metrics import confusion_matrix, match_clusters, match_dimension_sets


def _fit(points):
    return proclus(points, 5, 7, seed=BALANCED_SEED + 1, max_bad_tries=30)


def test_table1_dimension_recovery(benchmark, case1_dataset):
    result = run_once(benchmark, _fit, case1_dataset.points)

    cm = confusion_matrix(result.labels, case1_dataset.labels)
    matching = match_clusters(cm)
    report = match_dimension_sets(
        result.dimensions, case1_dataset.cluster_dimensions, matching,
    )

    # every output cluster carries exactly 7 dimensions (l = 7)
    assert all(len(d) == 7 for d in result.dimensions.values())
    # dimension sets match their input clusters almost everywhere
    assert report.n_matched >= 4
    assert report.mean_jaccard > 0.85
    assert report.exact_match_rate >= 0.6
