"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
identical code path at reduced scale (see DESIGN.md section 3 and
EXPERIMENTS.md for paper-scale runs).  Workloads are generated once per
session and reused; the benchmarked callable is the algorithm run, and
each bench *asserts the paper's qualitative claim* on the result so a
regression in either speed or shape fails loudly.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic import SyntheticDataGenerator
from repro.experiments.configs import make_case_config, make_scalability_config

#: A generator seed giving paper-like balanced cluster sizes in both cases.
BALANCED_SEED = 70


@pytest.fixture(scope="session")
def case1_dataset():
    """Case-1 workload (all clusters 7-dim, l=7) at bench scale."""
    cfg = make_case_config(1, n_points=4000, seed=BALANCED_SEED)
    return SyntheticDataGenerator(cfg.synthetic_config()).generate()


@pytest.fixture(scope="session")
def case2_dataset():
    """Case-2 workload (cluster dims 7,3,2,6,2; l=4) at bench scale."""
    cfg = make_case_config(2, n_points=4000, seed=BALANCED_SEED)
    return SyntheticDataGenerator(cfg.synthetic_config()).generate()


@pytest.fixture(scope="session")
def scalability_dataset():
    """Figure 7-9 style workload: 5 clusters of dimensionality 5."""
    cfg = make_scalability_config(3000, 20, 5, seed=7)
    return SyntheticDataGenerator(cfg).generate()


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (experiment-scale runs)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
