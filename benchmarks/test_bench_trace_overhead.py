"""Overhead of the observability layer on the Figure-7 workload.

Two claims are gated here:

1. **No-op cost is negligible.**  With tracing off (the default), every
   instrumented call site pays one ``get_tracer()`` lookup and an
   ``enabled`` check against the null-tracer singleton.  The full
   PROCLUS run with instrumentation present must stay within 2% of
   itself run-to-run noise-wise — measured as traced-off vs. traced-off
   there is nothing to compare, so the gate compares the *tracing
   enabled* run against the default run and requires <2% overhead even
   with every span, event, and counter live.
2. **Tracing must not perturb results.**  The traced and untraced runs
   are asserted bit-identical before any timing is recorded.

Timings land in ``BENCH_trace_overhead.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.core.proclus import proclus
from repro.data.synthetic import SyntheticDataGenerator
from repro.experiments.configs import make_scalability_config

K, L = 5, 5
N_DIMS = 20
SEED = 7
N_POINTS = 16000
REPEATS = 7
MAX_OVERHEAD = 0.02

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_trace_overhead.json"


def _workload():
    cfg = make_scalability_config(N_POINTS, N_DIMS, K, seed=SEED)
    return SyntheticDataGenerator(cfg).generate().points


def _run(X, profile):
    return proclus(X, K, L, seed=SEED, keep_history=False, profile=profile)


def _fingerprint(result):
    return (result.labels.tolist(), result.medoid_indices.tolist(),
            result.dimensions, result.objective, result.iterative_objective,
            result.terminated_by)


def test_trace_smoke_bit_identical():
    """CI gate: tracing on and off produce the same clustering."""
    cfg = make_scalability_config(1500, N_DIMS, K, seed=SEED)
    X = SyntheticDataGenerator(cfg).generate().points
    plain = _run(X, profile=False)
    traced = _run(X, profile=True)
    assert _fingerprint(plain) == _fingerprint(traced)
    assert plain.profile is None
    assert traced.profile["counters"]["kernel.segmental_rows"] > 0


def test_trace_overhead_fig7(benchmark):
    def measure():
        X = _workload()
        plain = _run(X, profile=False)
        traced = _run(X, profile=True)
        assert _fingerprint(plain) == _fingerprint(traced)
        # interleave off/on pairs: machine-load drift during the sweep
        # hits both sides of each pair equally, and the median ratio is
        # robust to the odd slow outlier run
        pairs = [(_timed(X, False), _timed(X, True)) for _ in range(REPEATS)]
        return pairs, traced.profile

    def _timed(X, profile):
        t0 = time.perf_counter()
        _run(X, profile)
        return time.perf_counter() - t0

    pairs, profile = run_once(benchmark, measure)
    off = min(p[0] for p in pairs)
    on = min(p[1] for p in pairs)
    overhead = float(np.median([on_i / off_i - 1.0 for off_i, on_i in pairs]))

    report = {
        "workload": {
            "figure": 7,
            "n_points": N_POINTS,
            "n_dims": N_DIMS,
            "n_clusters": K,
            "cluster_dimensionality": 5,
            "outlier_fraction": 0.05,
            "k": K,
            "l": L,
            "seed": SEED,
            "timing": f"median over {REPEATS} interleaved off/on pairs "
                      "of full proclus() runs",
        },
        "tracing_off_seconds": off,
        "tracing_on_seconds": on,
        "pairs_seconds": [list(p) for p in pairs],
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "trace_volume": {
            "n_spans": profile["n_spans"],
            "n_events": profile["n_events"],
            "counters": profile["counters"],
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds the {MAX_OVERHEAD:.0%} gate"
    )
