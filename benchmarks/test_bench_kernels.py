"""Micro-benchmarks of the numeric kernels dominating PROCLUS runtime.

These are true pytest-benchmark micro-benches (many rounds) for the
hot paths: segmental-distance assignment (O(N k l) per iteration),
full-dimensional locality distances (O(N k d)), greedy selection, and
dimension allocation.  Useful for catching kernel-level performance
regressions independent of the end-to-end experiments.
"""

import numpy as np

from repro.core.assignment import assign_points
from repro.core.dimensions import allocate_dimensions, compute_localities, zscores
from repro.core.greedy import greedy_select
from repro.distance.matrix import cross_distances

N, D, K, L = 20_000, 20, 5, 7
RNG = np.random.default_rng(0)
X = RNG.uniform(0, 100, size=(N, D))
MEDOIDS = X[RNG.choice(N, K, replace=False)]
MEDOID_IDX = np.arange(0, N, N // K)[:K]
DIM_SETS = [tuple(sorted(RNG.choice(D, L, replace=False).tolist()))
            for _ in range(K)]


def test_kernel_assignment(benchmark):
    labels = benchmark(assign_points, X, MEDOIDS, DIM_SETS)
    assert labels.shape == (N,)


def test_kernel_full_dim_distances(benchmark):
    dist = benchmark(cross_distances, X, MEDOIDS, "euclidean")
    assert dist.shape == (N, K)


def test_kernel_localities(benchmark):
    localities, deltas = benchmark(compute_localities, X, MEDOID_IDX)
    assert len(localities) == K
    assert deltas.shape == (K,)


def test_kernel_greedy_select(benchmark):
    sample = X[:1500]
    idx = benchmark(greedy_select, sample, 25, seed=1)
    assert idx.shape == (25,)


def test_kernel_dimension_allocation(benchmark):
    stats = RNG.uniform(1, 30, size=(K, D))
    z = zscores(stats)
    sets = benchmark(allocate_dimensions, z, K * L, min_per_row=2)
    assert sum(len(s) for s in sets) == K * L
