"""Table 2: dimension recovery with *varying* cluster dimensionality.

Paper claim (Case 2): clusters generated in 2, 2, 3, 6 and
7-dimensional subspaces (l = 4) are recovered with the correct
dimension sets — including correctly sized sets despite the common
budget k*l.
"""

from conftest import BALANCED_SEED, run_once

from repro.core.proclus import proclus
from repro.metrics import confusion_matrix, match_clusters, match_dimension_sets


def _fit(points):
    return proclus(points, 5, 4, seed=BALANCED_SEED + 1, max_bad_tries=30)


def test_table2_varying_dimensionality(benchmark, case2_dataset):
    result = run_once(benchmark, _fit, case2_dataset.points)

    # the budget k*l = 20 is split unevenly, at least 2 per cluster
    sizes = sorted(len(d) for d in result.dimensions.values())
    assert sum(sizes) == 20
    assert sizes[0] >= 2
    assert sizes[-1] > sizes[0], "dimension counts should vary across clusters"

    cm = confusion_matrix(result.labels, case2_dataset.labels)
    matching = match_clusters(cm)
    report = match_dimension_sets(
        result.dimensions, case2_dataset.cluster_dimensions, matching,
    )
    assert report.n_matched >= 4
    assert report.mean_jaccard > 0.6
