"""Figure 8: runtime vs average cluster dimensionality l.

Paper claim: CLIQUE's running time grows exponentially in the cluster
dimensionality (consistent with [1]); PROCLUS's "is only slightly
influenced by l" because the segmental-distance work O(N k l) is
dominated by the full-dimensional O(N k d) term.

Bench-scale check (l = 3..6): the *absolute* runtime CLIQUE adds over
the sweep dwarfs what PROCLUS adds — the divergence the paper's Figure
8 plots — and PROCLUS stays fast in absolute terms throughout.
"""

from conftest import run_once

from repro.experiments.scalability import run_scalability_cluster_dim


def test_fig8_runtime_vs_cluster_dim(benchmark):
    report = run_once(
        benchmark, run_scalability_cluster_dim,
        dims=(3, 4, 5, 6), n_points=1200, include_clique=True, seed=7,
        proclus_repeats=3,
    )

    proclus_secs = report.series["PROCLUS"]
    clique_secs = report.series["CLIQUE"]

    # the runtime CLIQUE adds over the sweep dwarfs PROCLUS's
    clique_added = clique_secs[-1] - clique_secs[0]
    proclus_added = proclus_secs[-1] - proclus_secs[0]
    assert clique_added > 10 * max(proclus_added, 0.0)
    # PROCLUS remains fast in absolute terms at every l
    assert max(proclus_secs) < 2.0
    # CLIQUE is the slower algorithm at every l
    assert all(c > p for c, p in zip(clique_secs, proclus_secs))
