"""Robustness bench: the initialization pool pierces every cluster.

Paper sections 2.1 and 3: the random-sample + greedy pipeline should,
with high probability, produce a candidate pool containing a
representative of every natural cluster while picking few outliers.
This bench measures the piercing rate over many seeds on the Case-1
workload and requires it to be (near-)perfect.
"""

from conftest import run_once

from repro.core import initialize_medoid_pool, piercing_report


def _piercing_rate(dataset, n_seeds: int = 20) -> dict:
    pierced = 0
    outlier_picks = 0
    for s in range(n_seeds):
        pool = initialize_medoid_pool(
            dataset.points, 30 * 5, 5 * 5, seed=1000 + s,
        )
        report = piercing_report(pool, dataset.labels)
        pierced += report.is_piercing
        outlier_picks += report.n_outlier_points
    return {
        "piercing_rate": pierced / n_seeds,
        "mean_outlier_picks": outlier_picks / n_seeds,
    }


def test_initialization_piercing_rate(benchmark, case1_dataset):
    stats = run_once(benchmark, _piercing_rate, case1_dataset)

    # every (or almost every) run produces a piercing pool...
    assert stats["piercing_rate"] >= 0.95
    # ...and outliers do not dominate the 25-point pool
    assert stats["mean_outlier_picks"] < 10
