"""Float32 bandwidth win on the Figure-7 scalability workload.

The segmental and distance kernels are memory-bandwidth bound: per
vertex they stream the ``(N, sum|D_i|)`` gather, the ``(N, k)`` output,
and the full-dimensional distance columns.  Running the compute path in
float32 halves every one of those byte counts while the arithmetic per
element stays the same, so the iterative phase should speed up by well
over the 1.3x this bench gates on at the largest size.

The bench runs ``run_iterative_phase`` on the paper's Figure-7
configuration (20-dim space, 5 clusters of dimensionality 5, 5%
outliers) in both precisions, cache off (the kernel-bound
configuration: every vertex recomputes its columns) and cache on, and
asserts:

* the float32/float64 **uncached** speedup at ``N = 16000`` is at
  least **1.3x** (the tentpole acceptance gate);
* each precision is bit-deterministic (two runs agree exactly);
* both precisions produce the same clustering on this well-separated
  workload (identical label partitions).

Timings land in ``BENCH_dtype_kernels.json`` at the repo root (see
``docs/performance.md``, "Precision").
"""

import json
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.core import run_iterative_phase
from repro.core.initialization import initialize_medoid_pool
from repro.data.synthetic import SyntheticDataGenerator
from repro.experiments.configs import make_scalability_config
from repro.rng import ensure_rng, spawn

K, L = 5, 5
N_DIMS = 20
SEED = 7
SIZES = (2000, 4000, 8000, 16000)
REPEATS = 3
GATE_SPEEDUP = 1.3

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_dtype_kernels.json"


def _workload(n_points, dtype):
    cfg = make_scalability_config(n_points, N_DIMS, K, seed=SEED)
    X = SyntheticDataGenerator(cfg).generate().points.astype(dtype)
    rng_init, _ = spawn(ensure_rng(SEED), 2)
    pool = initialize_medoid_pool(X, 30 * K, 5 * K, seed=rng_init)
    return X, pool


def _run(X, pool, cache):
    return run_iterative_phase(X, pool, K, L, seed=SEED,
                               cache=cache, keep_history=False)


def _fingerprint(out):
    return (out.medoid_indices.tolist(), out.dim_sets, out.labels.tolist(),
            out.objective, out.n_iterations, out.terminated_by)


def _timed(X, pool, cache):
    t0 = time.perf_counter()
    _run(X, pool, cache)
    return time.perf_counter() - t0


def test_dtype_smoke_deterministic_and_native():
    """CI gate: float32 stays float32 end-to-end and is deterministic."""
    X, pool = _workload(1500, np.float32)
    assert X.dtype == np.float32
    a = _run(X, pool, cache=True)
    b = _run(X, pool, cache=False)
    assert _fingerprint(a) == _fingerprint(b)
    # same partition as the float64 reference on this separated workload
    X64, pool64 = _workload(1500, np.float64)
    ref = _run(X64, pool64, cache=True)
    assert np.array_equal(np.asarray(pool), np.asarray(pool64))
    assert np.array_equal(a.labels, ref.labels)


def test_dtype_speedup_fig7(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            row = {"n_points": n}
            for dtype, tag in ((np.float64, "float64"),
                               (np.float32, "float32")):
                X, pool = _workload(n, dtype)
                _run(X, pool, cache=False)  # warm numpy/allocator
                out_a = _run(X, pool, cache=False)
                out_b = _run(X, pool, cache=False)
                assert _fingerprint(out_a) == _fingerprint(out_b)
                row[f"{tag}_uncached_seconds"] = min(
                    _timed(X, pool, False) for _ in range(REPEATS))
                row[f"{tag}_cached_seconds"] = min(
                    _timed(X, pool, True) for _ in range(REPEATS))
                row[f"{tag}_iterations"] = out_a.n_iterations
            row["uncached_speedup"] = (row["float64_uncached_seconds"]
                                       / row["float32_uncached_seconds"])
            row["cached_speedup"] = (row["float64_cached_seconds"]
                                     / row["float32_cached_seconds"])
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)

    report = {
        "workload": {
            "figure": 7,
            "n_dims": N_DIMS,
            "n_clusters": K,
            "cluster_dimensionality": 5,
            "outlier_fraction": 0.05,
            "k": K,
            "l": L,
            "seed": SEED,
            "timing": f"best of {REPEATS} runs of run_iterative_phase",
            "gate": f"uncached float32 speedup >= {GATE_SPEEDUP}x at "
                    f"N={SIZES[-1]}",
        },
        "sizes": list(SIZES),
        "results": rows,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # the kernels stream half the bytes; at the largest (most
    # bandwidth-bound) size the win must clear the acceptance gate
    assert rows[-1]["uncached_speedup"] >= GATE_SPEEDUP
    assert all(r["uncached_speedup"] > 1.0 for r in rows)
    # the cached path moves fewer bytes to begin with but must not
    # regress either
    assert rows[-1]["cached_speedup"] > 1.0
