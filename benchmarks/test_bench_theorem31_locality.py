"""Theorem 3.1: expected locality size is N/k under random medoids.

The paper's robustness argument for FindDimensions rests on localities
being large enough (expected N/k points; section 3).  This bench runs
the empirical check and verifies the estimate lands near the theorem's
value.
"""

from conftest import run_once

from repro.experiments.ablations import run_locality_theorem_check


def test_theorem31_expected_locality_size(benchmark):
    report = run_once(
        benchmark, run_locality_theorem_check,
        n_points=3000, k=5, n_trials=60, seed=42,
    )

    assert report.expected == 600.0
    # order-statistics expectation: generous tolerance for sampling noise
    assert report.relative_error < 0.25
    # every trial produced positive localities
    assert all(s > 0 for s in report.observed_per_trial)
