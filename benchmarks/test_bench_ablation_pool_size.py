"""Ablation: initialization multipliers A (sample) and B (pool).

The paper leaves A and B unspecified ("constant", "small constant").
The bench sweeps both and checks the library defaults (A = 30, B = 5)
sit in the quality plateau: enlarging the sample/pool further does not
buy meaningful ARI.
"""

from conftest import BALANCED_SEED, run_once

from repro.experiments.ablations import run_pool_size_ablation


def test_pool_size_ablation(benchmark):
    report = run_once(
        benchmark, run_pool_size_ablation,
        n_points=3000, a_values=(15, 30, 60), b_values=(2, 5),
        seed=BALANCED_SEED,
    )

    rows = {r["variant"]: r for r in report.rows}
    assert "A=30,B=5" in rows
    best_ari = max(r["ari"] for r in report.rows)
    # the default configuration is within reach of the sweep's best
    assert rows["A=30,B=5"]["ari"] >= best_ari - 0.2
    # every configuration yields a finite objective
    assert all(r["objective"] > 0 for r in report.rows)
