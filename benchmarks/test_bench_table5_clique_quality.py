"""Table 5 + section 4.2: CLIQUE's output is far from a partition.

Paper claims reproduced here at bench scale:

* restricted to the generated cluster dimensionality, CLIQUE reports
  far more clusters than exist (48 for k = 5 in the paper), with
  average overlap well above 1 (3.63 in the paper);
* input clusters split across several output clusters;
* a large share of true cluster points is nevertheless covered
  (74.6% in the paper).

The paper's tau = 0.1% threshold is scale-free pathological for a pure
Python bottom-up pass (see repro.experiments.clique_quality); the bench
uses 0.5% on a smaller workload, which exhibits the same phenomena.
"""

from conftest import BALANCED_SEED, run_once

from repro.experiments.clique_quality import run_table5_snapshot


def test_table5_clique_splits_clusters(benchmark):
    snapshot = run_once(
        benchmark, run_table5_snapshot,
        n_points=1500, tau_percent=0.5, target_dim=7, seed=BALANCED_SEED,
    )

    # many more output clusters than the 5 input clusters
    assert snapshot.n_clusters > 5
    # the output is not a partition
    assert snapshot.overlap > 1.0
    # yet a substantial share of cluster points is covered
    assert snapshot.cluster_points_pct > 20.0
    # several output clusters trace back to the same input cluster
    dominants = [dom for _, dom, _ in snapshot.snapshot_rows]
    assert len(dominants) > len(set(dominants))
