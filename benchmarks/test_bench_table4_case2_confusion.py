"""Table 4: Case-2 confusion matrix (different cluster dimensionalities).

Paper claim: the correspondence between input and output clusters stays
clear even when clusters live in subspaces of different dimensionality;
a small number of misplaced points "does not influence the
correspondence between input and output clusters".
"""

from conftest import BALANCED_SEED, run_once

from repro.experiments.accuracy import run_accuracy_case


def test_table4_confusion_structure(benchmark):
    report = run_once(
        benchmark, run_accuracy_case, 2,
        n_points=4000, seed=BALANCED_SEED, max_bad_tries=30,
    )

    assert report.mean_dominance > 0.7
    # the paper's Table 4 itself shows some thousands of misplaced
    # points out of ~95k; allow the same order of slack
    assert report.misplaced_fraction < 0.15
    assert report.ari > 0.6
