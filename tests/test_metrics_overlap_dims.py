"""Unit tests for overlap/coverage metrics and dimension recovery."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.metrics import (
    average_overlap,
    cluster_points_recovered,
    coverage_fraction,
    dimension_jaccard,
    dimension_precision_recall,
    match_dimension_sets,
)


class TestOverlap:
    def test_partition_has_overlap_one(self):
        memberships = [np.array([0, 1]), np.array([2, 3])]
        assert average_overlap(memberships) == 1.0

    def test_double_reporting(self):
        memberships = [np.array([0, 1]), np.array([0, 1])]
        assert average_overlap(memberships) == 2.0

    def test_paper_style_value(self):
        # 4 points, each in ~3 clusters -> overlap ~3
        memberships = [np.array([0, 1, 2, 3])] * 3
        assert average_overlap(memberships) == 3.0

    def test_empty(self):
        assert average_overlap([]) == 0.0
        assert average_overlap([np.array([], dtype=int)]) == 0.0


class TestCoverage:
    def test_fraction(self):
        memberships = [np.array([0, 1]), np.array([1, 2])]
        assert coverage_fraction(memberships, 10) == pytest.approx(0.3)

    def test_invalid_n(self):
        with pytest.raises(DataError):
            coverage_fraction([], 0)

    def test_cluster_points_recovered_excludes_outliers(self):
        true = np.array([0, 0, 1, -1])
        memberships = [np.array([0, 3])]  # covers 1 cluster point + 1 outlier
        assert cluster_points_recovered(memberships, true) == pytest.approx(1 / 3)

    def test_all_recovered(self):
        true = np.array([0, 1])
        assert cluster_points_recovered([np.array([0, 1])], true) == 1.0

    def test_no_cluster_points(self):
        true = np.array([-1, -1])
        assert cluster_points_recovered([np.array([0])], true) == 0.0


class TestDimensionMetrics:
    def test_precision_recall(self):
        p, r = dimension_precision_recall([0, 1, 2], [1, 2, 3, 4])
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 4)

    def test_empty_sets(self):
        assert dimension_precision_recall([], [1]) == (0.0, 0.0)

    def test_jaccard(self):
        assert dimension_jaccard([0, 1], [1, 2]) == pytest.approx(1 / 3)
        assert dimension_jaccard([], []) == 1.0
        assert dimension_jaccard([0], [0]) == 1.0

    def test_match_report(self):
        found = {0: (1, 2), 1: (3, 4, 5)}
        true = {10: (1, 2), 11: (3, 4)}
        matching = {0: 10, 1: 11}
        report = match_dimension_sets(found, true, matching)
        assert report.n_matched == 2
        assert report.n_exact == 1
        assert report.exact_match_rate == 0.5
        assert report.per_cluster[1]["recall"] == 1.0
        assert report.per_cluster[1]["precision"] == pytest.approx(2 / 3)

    def test_empty_matching(self):
        report = match_dimension_sets({}, {}, {})
        assert report.exact_match_rate == 0.0
        assert report.mean_jaccard == 0.0

    def test_unordered_input_normalised(self):
        report = match_dimension_sets({0: (2, 1)}, {5: (1, 2)}, {0: 5})
        assert report.n_exact == 1
