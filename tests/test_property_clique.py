"""Property-based tests for CLIQUE invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.clique import Grid, find_dense_units
from repro.baselines.clique.apriori import density_threshold


@st.composite
def cell_matrices(draw):
    """Random small integer cell matrices (as if produced by a grid)."""
    n = draw(st.integers(min_value=10, max_value=120))
    d = draw(st.integers(min_value=1, max_value=4))
    xi = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = np.random.default_rng(seed)
    # mix of clustered and uniform cells so some units are dense
    cells = rng.integers(0, xi, size=(n, d))
    cells[: n // 2] = rng.integers(0, max(1, xi // 2), size=(n // 2, d))
    return cells, xi


class TestDenseUnitInvariants:
    @given(cell_matrices(), st.sampled_from([0.05, 0.1, 0.3]))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_tau(self, cm, tau):
        """Raising the threshold can only remove dense units."""
        cells, xi = cm
        low = find_dense_units(cells, xi, tau)
        high = find_dense_units(cells, xi, min(0.9, tau * 3))
        assert set(high) <= set(low)

    @given(cell_matrices(), st.sampled_from([0.05, 0.15]))
    @settings(max_examples=30, deadline=None)
    def test_faces_of_dense_units_dense(self, cm, tau):
        cells, xi = cm
        dense = find_dense_units(cells, xi, tau)
        for u in dense:
            for face in u.faces():
                assert face in dense

    @given(cell_matrices(), st.sampled_from([0.05, 0.15]))
    @settings(max_examples=30, deadline=None)
    def test_counts_correct(self, cm, tau):
        """Each unit's recorded support equals a direct recount."""
        cells, xi = cm
        dense = find_dense_units(cells, xi, tau)
        for u, count in list(dense.items())[:20]:
            mask = np.ones(cells.shape[0], dtype=bool)
            for dim, interval in zip(u.dims, u.intervals):
                mask &= cells[:, dim] == interval
            assert int(mask.sum()) == count

    @given(cell_matrices(), st.sampled_from([0.05, 0.15]))
    @settings(max_examples=30, deadline=None)
    def test_threshold_respected(self, cm, tau):
        cells, xi = cm
        dense = find_dense_units(cells, xi, tau)
        threshold = density_threshold(cells.shape[0], tau)
        assert all(c >= threshold for c in dense.values())


class TestGridProperties:
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_cells_in_range_for_any_data(self, xi, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(0, 100, size=(50, 3))
        cells = Grid(xi).fit_transform(X)
        assert cells.min() >= 0
        assert cells.max() < xi

    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_cell_counts_partition_points(self, xi, seed):
        """Every point lands in exactly one cell per dimension, so the
        per-dimension histograms each sum to N."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(-5, 5, size=(80, 2))
        cells = Grid(xi).fit_transform(X)
        for j in range(2):
            assert np.bincount(cells[:, j], minlength=xi).sum() == 80
