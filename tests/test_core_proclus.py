"""Unit tests for the public PROCLUS API (estimator + function)."""

import numpy as np
import pytest

from repro import Proclus, proclus
from repro.data import generate
from repro.exceptions import NotFittedError, ParameterError
from repro.metrics import adjusted_rand_index


@pytest.fixture(scope="module")
def easy_dataset():
    return generate(1500, 12, 3, cluster_dim_counts=[5, 5, 5],
                    outlier_fraction=0.03, seed=17)


@pytest.fixture(scope="module")
def fitted(easy_dataset):
    return proclus(easy_dataset.points, 3, 5, seed=17)


class TestFunctionalApi:
    def test_result_shapes(self, easy_dataset, fitted):
        assert fitted.labels.shape == (1500,)
        assert fitted.medoids.shape == (3, 12)
        assert fitted.medoid_indices.shape == (3,)
        assert set(fitted.dimensions) == {0, 1, 2}

    def test_labels_range(self, fitted):
        assert set(np.unique(fitted.labels)) <= {-1, 0, 1, 2}

    def test_dimension_budget(self, fitted):
        assert sum(len(d) for d in fitted.dimensions.values()) == 15
        assert all(len(d) >= 2 for d in fitted.dimensions.values())

    def test_medoids_are_data_points(self, easy_dataset, fitted):
        assert np.array_equal(
            fitted.medoids, easy_dataset.points[fitted.medoid_indices]
        )

    def test_quality_on_easy_data(self, easy_dataset, fitted):
        ari = adjusted_rand_index(fitted.labels, easy_dataset.labels)
        assert ari > 0.8

    def test_phase_timings_recorded(self, fitted):
        assert set(fitted.phase_seconds) == {
            "initialization", "iterative", "refinement"
        }
        assert all(v >= 0 for v in fitted.phase_seconds.values())

    def test_deterministic_given_seed(self, easy_dataset):
        a = proclus(easy_dataset.points, 3, 5, seed=3)
        b = proclus(easy_dataset.points, 3, 5, seed=3)
        assert np.array_equal(a.labels, b.labels)
        assert a.dimensions == b.dimensions

    def test_accepts_dataset_objects(self, easy_dataset):
        result = proclus(easy_dataset, 3, 5, seed=3, max_bad_tries=5)
        assert result.labels.shape == (1500,)

    def test_handle_outliers_false(self, easy_dataset):
        result = proclus(easy_dataset.points, 3, 5, seed=3,
                         handle_outliers=False, max_bad_tries=5)
        assert result.n_outliers == 0

    def test_invalid_l_rejected(self, easy_dataset):
        with pytest.raises(ParameterError):
            proclus(easy_dataset.points, 3, 1, seed=1)

    def test_non_integral_kl_rejected(self, easy_dataset):
        with pytest.raises(ParameterError, match="integral"):
            proclus(easy_dataset.points, 3, 2.5, seed=1)


class TestEstimator:
    def test_fit_returns_self(self, easy_dataset):
        est = Proclus(k=3, l=5, seed=1, max_bad_tries=5)
        assert est.fit(easy_dataset.points) is est

    def test_attributes_after_fit(self, easy_dataset):
        est = Proclus(k=3, l=5, seed=1, max_bad_tries=5).fit(easy_dataset.points)
        assert est.labels_.shape == (1500,)
        assert est.medoids_.shape == (3, 12)
        assert isinstance(est.objective_, float)
        assert set(est.dimensions_) == {0, 1, 2}

    def test_not_fitted_raises(self):
        est = Proclus(k=3, l=5)
        with pytest.raises(NotFittedError):
            _ = est.labels_

    def test_fit_predict(self, easy_dataset):
        labels = Proclus(k=3, l=5, seed=1,
                         max_bad_tries=5).fit_predict(easy_dataset.points)
        assert labels.shape == (1500,)

    def test_predict_new_points(self, easy_dataset):
        est = Proclus(k=3, l=5, seed=1, max_bad_tries=5).fit(easy_dataset.points)
        new_labels = est.predict(easy_dataset.points[:10])
        assert new_labels.shape == (10,)
        assert set(new_labels.tolist()) <= {0, 1, 2}

    def test_predict_consistent_with_assignment(self, easy_dataset):
        """predict() on training points matches non-outlier fit labels."""
        est = Proclus(k=3, l=5, seed=1, max_bad_tries=5).fit(easy_dataset.points)
        predicted = est.predict(easy_dataset.points)
        mask = est.labels_ >= 0
        assert np.array_equal(predicted[mask], est.labels_[mask])


class TestObjectiveQuality:
    def test_objective_better_than_random_assignment(self, easy_dataset, fitted):
        from repro.core import evaluate_clusters
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 3, size=1500)
        dim_sets = [fitted.dimensions[i] for i in range(3)]
        random_obj = evaluate_clusters(easy_dataset.points, random_labels, dim_sets)
        assert fitted.objective < random_obj
