"""The inference core: ``predict_points`` / ``ProclusResult.predict``.

The load-bearing contract is **fit/predict bit-identity**: running the
training matrix back through ``predict`` must reproduce
``result.labels`` exactly — across working dtypes, cache on/off,
serial/parallel fits, chunk sizes, and a save/load round-trip — because
the predict path *is* the refinement phase's assignment rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predict import (DEFAULT_PREDICT_CHUNK, PredictReport,
                                normalize_dimension_sets, predict_points)
from repro.core.proclus import proclus
from repro.core.refinement import spheres_of_influence
from repro.core.serialization import load_result, save_result
from repro.exceptions import (BudgetExceededError, DataError, ParameterError)
from repro.obs import Tracer, use_tracer, validate_trace_lines
from repro.robustness.guards import Deadline


@pytest.fixture(scope="module")
def fitted(tiny_projected_dataset_module):
    ds = tiny_projected_dataset_module
    result = proclus(ds.points, 3, 4.0, seed=99)
    return ds, result


@pytest.fixture(scope="module")
def tiny_projected_dataset_module():
    from repro.data import generate
    return generate(600, 10, 3, cluster_dim_counts=[3, 3, 4],
                    outlier_fraction=0.05, seed=202)


# ---------------------------------------------------------------------------
# fit/predict bit-identity
# ---------------------------------------------------------------------------

class TestTrainingSetBitIdentity:
    def test_float64(self, fitted):
        ds, result = fitted
        assert np.array_equal(result.predict(ds.points), result.labels)

    def test_float32(self, tiny_projected_dataset_module):
        ds = tiny_projected_dataset_module
        result = proclus(ds.points, 3, 4.0, seed=99, dtype="float32")
        assert result.medoids.dtype == np.float32
        assert np.array_equal(result.predict(ds.points), result.labels)

    def test_cache_off(self, tiny_projected_dataset_module):
        ds = tiny_projected_dataset_module
        result = proclus(ds.points, 3, 4.0, seed=99, cache=False)
        assert np.array_equal(result.predict(ds.points), result.labels)

    def test_parallel_fit(self, tiny_projected_dataset_module):
        ds = tiny_projected_dataset_module
        result = proclus(ds.points, 3, 4.0, seed=99, restarts=2, n_jobs=2)
        assert np.array_equal(result.predict(ds.points), result.labels)

    def test_save_load_round_trip(self, fitted, tmp_path):
        ds, result = fitted
        path = save_result(result, tmp_path / "model.npz")
        loaded = load_result(path)
        assert np.array_equal(loaded.predict(ds.points), result.labels)

    def test_no_outlier_fit_predicts_without_rule(
            self, tiny_projected_dataset_module):
        ds = tiny_projected_dataset_module
        result = proclus(ds.points, 3, 4.0, seed=99, handle_outliers=False)
        labels = result.predict(ds.points, handle_outliers=False)
        assert np.array_equal(labels, result.labels)
        assert not (labels == -1).any()


class TestChunkInvariance:
    def test_chunk_size_never_changes_bits(self, fitted):
        ds, result = fitted
        reference = result.predict(ds.points)
        for chunk in (1, 7, 37, 599, 600, DEFAULT_PREDICT_CHUNK):
            assert np.array_equal(
                result.predict(ds.points, chunk_size=chunk), reference)

    def test_memory_budget_never_changes_bits(self, fitted):
        ds, result = fitted
        reference = result.predict(ds.points)
        assert np.array_equal(
            result.predict(ds.points, memory_budget_bytes=1 << 14), reference)

    def test_traced_equals_untraced(self, fitted):
        ds, result = fitted
        untraced = result.predict(ds.points)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = result.predict(ds.points)
        assert np.array_equal(traced, untraced)
        records = list(tracer.iter_records())
        assert any(r.get("name") == "predict" for r in records)
        counters = next(r["values"] for r in records
                        if r.get("type") == "counters")
        assert {"predict.points", "predict.outliers"} <= set(counters)
        assert counters["predict.points"] == ds.n_points


# ---------------------------------------------------------------------------
# sphere-of-influence semantics
# ---------------------------------------------------------------------------

class TestSphereOfInfluence:
    def _model(self):
        # two medoids 10 apart on dim 0; both clusters project onto {0}
        medoids = np.array([[0.0, 0.0], [10.0, 0.0]])
        return medoids, [(0,), (0,)]

    def test_point_inside_sphere_is_assigned(self):
        medoids, dims = self._model()
        report = predict_points(np.array([[1.0, 50.0]]), medoids, dims)
        assert report.labels.tolist() == [0]

    def test_point_outside_every_sphere_is_outlier(self):
        medoids, dims = self._model()
        # 25 from medoid 0 and 15 from medoid 1 on dim 0: both exceed
        # the sphere radius of 10 -> outlier, strict `>` rule
        report = predict_points(np.array([[25.0, 0.0]]), medoids, dims)
        assert report.labels.tolist() == [-1]
        assert report.n_outliers == 1

    def test_point_exactly_on_sphere_is_kept(self):
        medoids, dims = self._model()
        # distance to medoid 1 is exactly 10 == sphere: strict > keeps it
        report = predict_points(np.array([[20.0, 0.0]]), medoids, dims)
        assert report.labels.tolist() == [1]

    def test_single_medoid_rejects_nothing(self):
        report = predict_points(np.array([[1e6, 1e6]]),
                                np.zeros((1, 2)), [(0, 1)])
        assert report.labels.tolist() == [0]
        assert np.isinf(report.spheres).all()

    def test_handle_outliers_false_always_assigns(self):
        medoids, dims = self._model()
        report = predict_points(np.array([[1e6, 0.0]]), medoids, dims,
                                handle_outliers=False)
        assert report.labels.tolist() == [1]

    def test_precomputed_spheres_match_recomputed(self, fitted):
        ds, result = fitted
        dims = normalize_dimension_sets(result.dimensions,
                                        result.k, ds.points.shape[1])
        spheres = spheres_of_influence(result.medoids, dims)
        a = predict_points(ds.points, result.medoids, result.dimensions)
        b = predict_points(ds.points, result.medoids, result.dimensions,
                           spheres=spheres)
        assert np.array_equal(a.labels, b.labels)

    def test_segmental_distance_is_per_cluster_subspace(self):
        # medoid 0 looks at dim 0 only, medoid 1 at dim 1 only: a point
        # near the origin on dim 0 but far on dim 1 must pick cluster 0
        medoids = np.array([[0.0, 0.0], [0.0, 0.0]])
        report = predict_points(np.array([[0.5, 9.0]]), medoids,
                                [(0,), (1,)], handle_outliers=False)
        assert report.labels.tolist() == [0]


# ---------------------------------------------------------------------------
# validation and policies
# ---------------------------------------------------------------------------

class TestValidation:
    def test_wrong_dimensionality_rejected(self, fitted):
        _, result = fitted
        with pytest.raises(ParameterError, match="expects d=10"):
            result.predict(np.zeros((3, 4)))

    def test_non_numeric_rejected(self, fitted):
        _, result = fitted
        with pytest.raises(ParameterError):
            result.predict([["a", "b"]])

    def test_empty_batch_rejected(self, fitted):
        _, result = fitted
        with pytest.raises(ParameterError, match="empty"):
            result.predict(np.zeros((0, 10)))

    def test_3d_batch_rejected(self, fitted):
        _, result = fitted
        with pytest.raises(ParameterError, match="2-dimensional"):
            result.predict(np.zeros((2, 3, 10)))

    def test_oversized_batch_rejected(self, fitted):
        ds, result = fitted
        with pytest.raises(ParameterError, match="at most 10"):
            result.predict_report(ds.points, max_points=10)

    def test_single_point_accepted_as_row(self, fitted):
        ds, result = fitted
        labels = result.predict(ds.points[0])
        assert labels.shape == (1,)
        assert labels[0] == result.labels[0]

    def test_nan_raises_by_default(self, fitted):
        ds, result = fitted
        bad = ds.points[:5].copy()
        bad[2, 3] = np.nan
        with pytest.raises(ParameterError, match="NaN"):
            result.predict(bad)

    def test_nan_policy_drop_labels_row_outlier(self, fitted):
        ds, result = fitted
        bad = ds.points[:5].copy()
        bad[2, 3] = np.nan
        report = result.predict_report(bad, on_bad_values="drop")
        assert report.labels.shape == (5,)
        assert report.labels[2] == -1
        keep = [0, 1, 3, 4]
        assert np.array_equal(report.labels[keep], result.labels[:5][keep])
        assert report.warnings

    def test_all_rows_dropped_is_all_outliers_not_error(self, fitted):
        _, result = fitted
        batch = np.full((3, 10), np.nan)
        report = result.predict_report(batch, on_bad_values="drop")
        assert report.labels.tolist() == [-1, -1, -1]
        assert report.n_outliers == 3

    def test_nan_policy_impute_assigns_every_row(self, fitted):
        ds, result = fitted
        bad = ds.points[:20].copy()
        bad[2, 3] = np.inf
        report = result.predict_report(bad, on_bad_values="impute_median")
        assert report.labels.shape == (20,)
        assert report.sanitization is not None

    def test_missing_cluster_id_rejected(self):
        with pytest.raises(ParameterError, match="missing cluster id"):
            normalize_dimension_sets({0: [0]}, 2, 3)

    def test_empty_dimension_set_rejected(self):
        with pytest.raises(ParameterError, match="empty dimension set"):
            normalize_dimension_sets([[0], []], 2, 3)

    def test_out_of_range_dimension_rejected(self):
        with pytest.raises(ParameterError, match="outside"):
            normalize_dimension_sets([[0], [7]], 2, 3)

    def test_bad_medoids_rejected(self):
        with pytest.raises(DataError):
            predict_points(np.zeros((2, 2)),
                           np.array([[np.nan, 0.0]]), [(0,)])

    def test_wrong_sphere_shape_rejected(self, fitted):
        ds, result = fitted
        with pytest.raises(ParameterError, match="spheres"):
            result.predict_report(ds.points[:3], spheres=np.zeros(7))


class TestDeadline:
    def test_expired_deadline_discards_batch(self, fitted):
        ds, result = fitted
        deadline = Deadline.start(0.0)
        with pytest.raises(BudgetExceededError):
            result.predict(ds.points, deadline=deadline, chunk_size=10)

    def test_unlimited_deadline_is_fine(self, fitted):
        ds, result = fitted
        labels = result.predict(ds.points, deadline=Deadline.start(None))
        assert np.array_equal(labels, result.labels)


class TestReportShape:
    def test_to_dict_is_json_wire_shape(self, fitted):
        ds, result = fitted
        payload = result.predict_report(ds.points[:4]).to_dict()
        assert set(payload) == {"labels", "n_points", "n_outliers",
                                "warnings"}
        assert payload["n_points"] == 4
        assert all(isinstance(v, int) for v in payload["labels"])

    def test_return_distances(self, fitted):
        ds, result = fitted
        report = result.predict_report(ds.points[:8], return_distances=True)
        assert report.distances is not None
        assert report.distances.shape == (8, result.k)
        assert isinstance(report, PredictReport)

    def test_labels_are_int64(self, fitted):
        ds, result = fitted
        assert result.predict(ds.points[:4]).dtype == np.int64

    def test_trace_records_validate(self, fitted, tmp_path):
        ds, result = fitted
        tracer = Tracer()
        with use_tracer(tracer):
            result.predict(ds.points[:16])
        path = tracer.write_jsonl(tmp_path / "predict.jsonl")
        with open(path, encoding="utf-8") as fh:
            validate_trace_lines(fh)
