"""Tests for the interprocedural dataflow core (repro.analysis.dataflow).

Exercises each layer in isolation — symbol table resolution across
imports and re-exports, per-function direct effect facts, and the
transitive purity fixpoint — plus the property the whole design leans
on: the fixpoint is the unique least solution, so traversal order
(worklist seeding *and* file discovery order) cannot change it.
"""

from pathlib import Path

import numpy as np

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import (
    Project,
    SymbolTable,
    build_facts,
    compute_summaries,
)
from repro.analysis.dataflow.effects import is_constant_name
from repro.analysis.dataflow.fixpoint import (
    Summary,
    describe_impurity,
    global_read_allowed,
)
from repro.analysis.dataflow.symbols import display_module, module_name_for
from repro.analysis.engine import build_context

# ----------------------------------------------------------------------
# a small synthetic project used across the tests
# ----------------------------------------------------------------------

KERNELS_SRC = """\
import numpy as np

_state = {"hits": 0}
TOL = 1e-12

def leaf_mutator(a):
    a[0] = 0.0
    return a

def leaf_reader(x):
    _state["hits"] += 1
    return x

def middle(b, y):
    return leaf_mutator(b) + leaf_reader(y)

def top(c, z):
    return middle(c, z)

def pure(v):
    w = v + TOL
    return w * 2.0

def numpy_writer(dst, src):
    np.copyto(dst, src)

def method_mutator(items):
    items.sort()
    return items

def alias_mutator(m):
    view = m.T
    view += 1.0
    return m

def annotated(x: "_state") -> "_state":
    return x
"""

FACADE_SRC = """\
from .kernels import top, pure

def facade_top(q, r):
    return top(q, r)
"""


def make_contexts():
    return [
        build_context(Path("proj/kernels.py"), KERNELS_SRC),
        build_context(Path("proj/facade.py"), FACADE_SRC),
        build_context(Path("proj/__init__.py"),
                      "from .facade import facade_top\n"),
    ]


def make_facts():
    return build_facts(SymbolTable(make_contexts()))


def summaries_by_suffix(summaries):
    return {qual.split("::")[-1]: s for qual, s in summaries.items()}


# ----------------------------------------------------------------------
# symbol table
# ----------------------------------------------------------------------

def test_module_names_are_full_path_dotted():
    assert module_name_for(("proj", "kernels.py")) == "proj.kernels"
    assert module_name_for(("proj", "__init__.py")) == "proj"
    assert display_module("src.repro.perf.cache") == "repro.perf.cache"


def test_resolve_function_through_relative_import():
    symtab = SymbolTable(make_contexts())
    info = symtab.resolve_function("proj.kernels.top")
    assert info is not None and info.name == "top"
    # the facade imported `top`; resolution follows the import binding
    assert symtab.resolve_function("proj.facade.top") is info


def test_resolve_function_follows_reexport_chains():
    symtab = SymbolTable(make_contexts())
    # proj/__init__ re-exports facade_top from proj.facade
    info = symtab.resolve_function("proj.facade_top")
    assert info is not None
    assert info.module == "proj.facade"


# ----------------------------------------------------------------------
# direct effect facts
# ----------------------------------------------------------------------

def test_direct_facts_see_each_mutation_flavour():
    facts = {q.split("::")[-1]: f for q, f in make_facts().items()}
    assert facts["leaf_mutator"].mutated_params() == frozenset({"a"})
    assert facts["numpy_writer"].mutated_params() == frozenset({"dst"})
    assert facts["method_mutator"].mutated_params() == frozenset({"items"})
    # the write lands on a view alias but is charged to the parameter
    assert facts["alias_mutator"].mutated_params() == frozenset({"m"})
    assert facts["pure"].mutated_params() == frozenset()


def test_global_reads_skip_constants_and_annotations():
    facts = {q.split("::")[-1]: f for q, f in make_facts().items()}
    reads = {name for _, name in facts["leaf_reader"].global_reads}
    assert reads == {"_state"}
    # ALL_CAPS constants are exempt by convention
    assert facts["pure"].global_reads == frozenset()
    # names appearing only in annotations are not state reads
    assert facts["annotated"].global_reads == frozenset()
    assert is_constant_name("TOL") and not is_constant_name("_state")


# ----------------------------------------------------------------------
# transitive fixpoint
# ----------------------------------------------------------------------

def test_fixpoint_propagates_mutation_and_reads_up_the_call_graph():
    summaries = summaries_by_suffix(compute_summaries(make_facts()))
    assert summaries["middle"].mutated == frozenset({"b"})
    assert {n for _, n in summaries["middle"].global_reads} == {"_state"}
    # two levels up, through a cross-module call
    assert summaries["top"].mutated == frozenset({"c"})
    assert summaries["facade_top"].mutated == frozenset({"q"})
    assert {n for _, n in summaries["facade_top"].global_reads} == {"_state"}
    assert summaries["pure"].mutated == frozenset()
    assert summaries["pure"].global_reads == frozenset()


def test_declared_out_params_are_sanctioned_but_still_propagate():
    src = ("def segmental_columns(X, dims, out):\n"
           "    out[...] = X\n"
           "    return out\n"
           "def caller(X, dims, buf):\n"
           "    return segmental_columns(X, dims, out=buf)\n")
    facts = build_facts(SymbolTable([build_context(Path("m.py"), src)]))
    summaries = summaries_by_suffix(compute_summaries(facts))
    seg = summaries["segmental_columns"]
    # the declared out write does not convict the kernel itself...
    assert seg.out_writes == frozenset({"out"})
    assert seg.impure_params == frozenset()
    # ...but a caller binding its own buffer into it is a mutator
    assert summaries["caller"].mutated == frozenset({"buf"})


def test_describe_impurity_and_allowlist_matching():
    impure = Summary(mutated=frozenset({"a"}),
                     global_reads=frozenset({("src.repro.obs.tracer",
                                             "_current_tracer")}))
    allow = frozenset({"repro.obs.tracer._current_tracer"})
    assert global_read_allowed("src.repro.obs.tracer", "_current_tracer",
                               allow)
    assert not global_read_allowed("src.repro.perf.cache", "_current_tracer",
                                   frozenset({"other.module.name"}))
    # bare-name entries match in any module
    assert global_read_allowed("anything", "_current_tracer",
                               frozenset({"_current_tracer"}))
    assert describe_impurity(impure, allow) == "mutates parameter(s) a"
    assert describe_impurity(Summary(), allow) == ""


# ----------------------------------------------------------------------
# order independence (the property RPR007/008 soundness rests on)
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_fixpoint_is_independent_of_worklist_order(seed):
    facts = make_facts()
    baseline = compute_summaries(facts)
    order = sorted(facts)
    np.random.default_rng(seed).shuffle(order)
    assert compute_summaries(facts, order=order) == baseline


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_summaries_are_independent_of_file_discovery_order(seed):
    contexts = make_contexts()
    baseline = compute_summaries(build_facts(SymbolTable(contexts)))
    perm = np.random.default_rng(seed).permutation(len(contexts))
    shuffled = [contexts[i] for i in perm]
    assert compute_summaries(build_facts(SymbolTable(shuffled))) == baseline


def test_project_is_lazy_and_caches_layers():
    project = Project(make_contexts())
    assert project._symtab is None and project._summaries is None
    first = project.summaries
    assert project.summaries is first  # cached, not recomputed
    qual = next(q for q in first if q.endswith("::top"))
    assert project.summary_for(qual) is first[qual]
    assert project.function(qual).name == "top"
