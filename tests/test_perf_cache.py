"""Tests for the incremental distance cache (:mod:`repro.perf`).

The contract under test is the one the whole layer is built on: cached
and uncached runs are **bit-identical** — the cache may only change the
wall clock, never a single float.
"""

import numpy as np
import pytest

from repro.core import cache_report, proclus, run_iterative_phase
from repro.distance import cross_distances, segmental_distances_to_point
from repro.exceptions import ParameterError
from repro.perf import (
    CacheStats,
    IterativeCache,
    build_dims_layout,
    segmental_columns,
)
from repro.robustness import Deadline


class TestDimsLayout:
    def test_layout_concatenates_in_order(self):
        flat, starts, counts = build_dims_layout([(0, 2), (1,), (3, 4, 5)])
        assert flat.tolist() == [0, 2, 1, 3, 4, 5]
        assert starts.tolist() == [0, 2, 3]
        assert counts.tolist() == [2, 1, 3]

    def test_empty_dim_set_rejected(self):
        with pytest.raises(ParameterError, match="dimension set 1 is empty"):
            build_dims_layout([(0,), ()])

    def test_no_dim_sets_rejected(self):
        with pytest.raises(ParameterError, match="at least one"):
            build_dims_layout([])


class TestSegmentalColumns:
    @pytest.fixture
    def workload(self, rng):
        X = rng.normal(size=(60, 8))
        medoids = X[[3, 17, 42]]
        dim_sets = [(0, 1, 2), (4, 6), (1, 3, 5, 7)]
        return X, medoids, dim_sets

    def test_matches_per_medoid_loop(self, workload):
        X, medoids, dim_sets = workload
        out = segmental_columns(X, medoids, dim_sets)
        for i, dims in enumerate(dim_sets):
            expected = segmental_distances_to_point(X, medoids[i], dims)
            assert np.allclose(out[:, i], expected)

    def test_medoid_count_mismatch_rejected(self, workload):
        X, medoids, dim_sets = workload
        with pytest.raises(ParameterError, match="one dimension set per"):
            segmental_columns(X, medoids, dim_sets[:2])

    def test_subset_bit_identical_to_full_batch(self, workload):
        # the cache computes only the missing columns; segment reductions
        # are independent, so a sub-batch must reproduce the full batch's
        # bits exactly
        X, medoids, dim_sets = workload
        full = segmental_columns(X, medoids, dim_sets)
        sub = segmental_columns(X, medoids[[0, 2]],
                                [dim_sets[0], dim_sets[2]])
        assert np.array_equal(sub[:, 0], full[:, 0])
        assert np.array_equal(sub[:, 1], full[:, 2])

    def test_row_chunking_bit_identical(self, workload):
        X, medoids, dim_sets = workload
        full = segmental_columns(X, medoids, dim_sets)
        chunked = segmental_columns(X, medoids, dim_sets,
                                    memory_budget_bytes=1024)
        assert np.array_equal(full, chunked)


class TestCacheStats:
    def test_zero_lookups(self):
        s = CacheStats()
        assert s.hit_rate == 0.0
        assert s.lookups == 0

    def test_as_dict_round_numbers(self):
        s = CacheStats(hits=3, misses=1, evictions=2)
        d = s.as_dict()
        assert d["hits"] == 3 and d["misses"] == 1 and d["evictions"] == 2
        assert d["hit_rate"] == 0.75


class TestIterativeCache:
    @pytest.fixture
    def X(self, rng):
        return rng.normal(size=(120, 6))

    def test_distance_columns_match_kernel(self, X):
        cache = IterativeCache()
        rows = np.array([5, 40, 99])
        expected = cross_distances(X, X[rows], "euclidean")
        first = cache.distance_columns(X, rows, "euclidean")
        again = cache.distance_columns(X, rows, "euclidean")
        assert np.array_equal(first, expected)
        assert np.array_equal(again, expected)
        assert cache.stats["distance"].hits == 3
        assert cache.stats["distance"].misses == 3

    def test_partial_miss_recomputes_only_new_rows(self, X):
        cache = IterativeCache()
        cache.distance_columns(X, np.array([5, 40]), "euclidean")
        out = cache.distance_columns(X, np.array([5, 40, 99]), "euclidean")
        assert cache.stats["distance"].misses == 3  # 2 cold + 1 new
        assert np.array_equal(out, cross_distances(X, X[[5, 40, 99]],
                                                   "euclidean"))

    def test_metrics_do_not_collide(self, X):
        cache = IterativeCache()
        rows = np.array([0, 1])
        e = cache.distance_columns(X, rows, "euclidean")
        m = cache.distance_columns(X, rows, "manhattan")
        assert np.array_equal(e, cross_distances(X, X[rows], "euclidean"))
        assert np.array_equal(m, cross_distances(X, X[rows], "manhattan"))

    def test_segmental_keyed_by_row_and_dims(self, X):
        cache = IterativeCache()
        rows = np.array([3, 60])
        a = cache.segmental_matrix(X, rows, [(0, 1), (2, 3)])
        # same rows, different dim set for medoid 1 -> one hit, one miss
        b = cache.segmental_matrix(X, rows, [(0, 1), (2, 4)])
        assert np.array_equal(a[:, 0], b[:, 0])
        assert cache.stats["segmental"].hits == 1
        assert cache.stats["segmental"].misses == 3
        assert np.array_equal(
            b, segmental_columns(X, X[rows], [(0, 1), (2, 4)])
        )

    def test_bind_new_matrix_clears_stores(self, X, rng):
        cache = IterativeCache()
        cache.distance_columns(X, np.array([0, 1]), "euclidean")
        assert cache.nbytes > 0
        Y = rng.normal(size=(50, 6))
        out = cache.distance_columns(Y, np.array([0, 1]), "euclidean")
        assert np.array_equal(out, cross_distances(Y, Y[[0, 1]], "euclidean"))
        assert cache.stats["distance"].misses == 4  # no stale reuse

    def test_discard_rows_invalidates(self, X):
        cache = IterativeCache()
        cache.distance_columns(X, np.array([7, 8]), "euclidean")
        cache.discard_rows([7])
        cache.distance_columns(X, np.array([7, 8]), "euclidean")
        assert cache.stats["distance"].hits == 1  # only row 8 survived
        assert cache.stats["distance"].misses == 3

    def test_tiny_budget_evicts_but_stays_correct(self, X):
        # budget fits roughly one (N,) float64 column -> constant churn
        cache = IterativeCache(memory_budget_bytes=X.shape[0] * 8 + 1)
        rows = np.array([0, 10, 20, 30])
        for _ in range(3):
            out = cache.distance_columns(X, rows, "euclidean")
            assert np.array_equal(
                out, cross_distances(X, X[rows], "euclidean")
            )
        assert cache.stats["distance"].evictions > 0
        assert cache.nbytes <= X.shape[0] * 8 * 2  # never far past budget

    def test_stats_dict_shape(self, X):
        cache = IterativeCache()
        cache.distance_columns(X, np.array([0]), "euclidean")
        d = cache.stats_dict()
        assert set(d) == {"distance", "segmental", "locality", "stats",
                          "memory"}
        assert d["memory"]["bytes"] == cache.nbytes
        assert d["memory"]["entries"] == 1


class TestCacheReport:
    def test_none_for_uncached(self):
        assert cache_report(None) is None

    def test_aggregates_stores(self):
        cache = IterativeCache()
        X = np.arange(40.0).reshape(10, 4)
        cache.distance_columns(X, np.array([0, 1]), "euclidean")
        cache.distance_columns(X, np.array([0, 1]), "euclidean")
        report = cache_report(cache.stats_dict())
        assert report.hits == 2 and report.misses == 2
        assert report.hit_rate == 0.5
        assert not report.thrashing
        assert "distance" in report.per_store
        assert "hit rate" in report.to_text()

    def test_thrashing_flag(self):
        report = cache_report({
            "distance": {"hits": 1, "misses": 9, "evictions": 8,
                         "hit_rate": 0.1},
            "memory": {"bytes": 100, "budget_bytes": 128, "entries": 1},
        })
        assert report.thrashing
        assert "THRASHING" in report.to_text()


# ----------------------------------------------------------------------
# S4: the bit-identity property, the layer's core contract.

def _phase_fingerprint(out):
    return (
        out.medoid_indices.tolist(),
        out.dim_sets,
        out.labels.tolist(),
        out.objective,
        out.n_iterations,
        out.n_improvements,
        out.terminated_by,
        [(r.iteration, r.objective, r.improved, r.medoid_indices,
          r.bad_positions, r.locality_sizes) for r in out.history],
    )


class TestCachedUncachedIdentity:
    """Property: for any seed/metric/deadline, cache on == cache off."""

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
    @pytest.mark.parametrize("with_deadline", [False, True],
                             ids=["no-deadline", "deadline"])
    def test_run_iterative_phase_identical(self, tiny_projected_dataset,
                                           metric, with_deadline):
        X = tiny_projected_dataset.points
        pool = np.arange(0, X.shape[0], 12)  # 50 candidates
        for seed in range(5):
            # a *finite* deadline cannot be compared bitwise (the two
            # runs tick wall clocks at different speeds); an unlimited
            # Deadline still exercises the expiry checks every iteration
            kwargs = dict(metric=metric, seed=seed)
            if with_deadline:
                uncached = run_iterative_phase(
                    X, pool, k=3, l=4, cache=False,
                    deadline=Deadline.start(None), **kwargs)
                cached = run_iterative_phase(
                    X, pool, k=3, l=4, cache=True,
                    deadline=Deadline.start(None), **kwargs)
            else:
                uncached = run_iterative_phase(X, pool, k=3, l=4,
                                               cache=False, **kwargs)
                cached = run_iterative_phase(X, pool, k=3, l=4,
                                             cache=True, **kwargs)
            assert _phase_fingerprint(cached) == _phase_fingerprint(uncached)
            assert uncached.cache_stats is None
            assert cached.cache_stats is not None

    def test_shared_cache_instance_identical(self, tiny_projected_dataset):
        # reusing one instance keeps warm columns across runs on the
        # same X (the refinement-phase sharing pattern); results must
        # still match a cold uncached run exactly
        X = tiny_projected_dataset.points
        pool = np.arange(0, X.shape[0], 12)
        shared = IterativeCache()
        baseline = run_iterative_phase(X, pool, k=3, l=4, seed=11,
                                       cache=False)
        for _ in range(2):
            out = run_iterative_phase(X, pool, k=3, l=4, seed=11,
                                      cache=shared)
            assert _phase_fingerprint(out) == _phase_fingerprint(baseline)

    def test_tiny_budget_identical(self, tiny_projected_dataset):
        # heavy eviction changes hit rates, never values
        X = tiny_projected_dataset.points
        pool = np.arange(0, X.shape[0], 12)
        baseline = run_iterative_phase(X, pool, k=3, l=4, seed=3,
                                       cache=False)
        starved = run_iterative_phase(
            X, pool, k=3, l=4, seed=3,
            cache=IterativeCache(memory_budget_bytes=4096))
        assert _phase_fingerprint(starved) == _phase_fingerprint(baseline)

    @pytest.mark.parametrize("kwargs", [
        {},
        {"fit_sample_size": 300},
        {"restarts": 2},
        {"metric": "manhattan"},
    ], ids=["plain", "large-db", "restarts", "manhattan"])
    def test_proclus_end_to_end_identical(self, tiny_projected_dataset,
                                          kwargs):
        X = tiny_projected_dataset.points
        on = proclus(X, k=3, l=4, seed=29, cache=True, **kwargs)
        off = proclus(X, k=3, l=4, seed=29, cache=False, **kwargs)
        assert np.array_equal(on.labels, off.labels)
        assert np.array_equal(on.medoid_indices, off.medoid_indices)
        assert on.dimensions == off.dimensions
        assert on.objective == off.objective
        assert on.iterative_objective == off.iterative_objective
        assert on.objective_history == off.objective_history
        assert on.terminated_by == off.terminated_by
        assert on.cache_stats is not None and off.cache_stats is None
