"""Unit tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_reproducible(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9, 10)
        b = ensure_rng(2).integers(0, 10**9, 10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("42")


class TestSpawn:
    def test_count(self):
        children = spawn(ensure_rng(0), 4)
        assert len(children) == 4

    def test_children_independent(self):
        a, b = spawn(ensure_rng(0), 2)
        assert not np.array_equal(a.integers(0, 10**9, 20),
                                  b.integers(0, 10**9, 20))

    def test_deterministic_given_seed(self):
        c1 = spawn(ensure_rng(7), 2)
        c2 = spawn(ensure_rng(7), 2)
        assert np.array_equal(c1[0].integers(0, 10**9, 5),
                              c2[0].integers(0, 10**9, 5))

    def test_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)
