"""Tests for the deterministic parallel execution layer (repro.perf.parallel).

The load-bearing property is *bit-identity*: for any ``n_jobs``, every
dispatcher — restart fan-out, chunked kernels, experiment grids — must
return exactly what the serial code path returns.  Parallelism here
buys wall-clock time only, never a different answer.
"""

import numpy as np
import pytest

from repro import Proclus, proclus
from repro.core import parallel_report
from repro.core.serialization import load_result, save_result
from repro.data import generate
from repro.distance.matrix import pairwise_distances
from repro.distance.segmental import segmental_distances_to_point
from repro.exceptions import ParameterError
from repro.perf.parallel import (
    SharedMatrix,
    parallel_chunks,
    parallel_map,
    resolve_n_jobs,
)

FAST = dict(max_bad_tries=4, keep_history=False)


@pytest.fixture(scope="module")
def workload():
    return generate(600, 10, 3, cluster_dim_counts=[3, 3, 4],
                    outlier_fraction=0.05, seed=31)


def _fingerprint(result):
    return (result.labels.tolist(), result.medoid_indices.tolist(),
            result.dimensions, result.objective,
            result.iterative_objective, result.terminated_by)


class TestResolveNJobs:
    def test_serial(self):
        assert resolve_n_jobs(1) == 1

    def test_explicit_count(self):
        assert resolve_n_jobs(3) == 3

    def test_all_cores(self):
        assert resolve_n_jobs(-1) >= 1

    def test_capped_by_tasks(self):
        assert resolve_n_jobs(8, n_tasks=3) == 3
        assert resolve_n_jobs(2, n_tasks=5) == 2

    @pytest.mark.parametrize("bad", [0, -2, 1.5, "2", True, None])
    def test_invalid(self, bad):
        with pytest.raises(ParameterError, match="n_jobs"):
            resolve_n_jobs(bad)


class TestSharedMatrix:
    def test_publish_attach_roundtrip(self, rng):
        X = rng.normal(size=(40, 6))
        plane = SharedMatrix.publish(X)
        try:
            view = SharedMatrix.attach(plane.descriptor)
            assert np.array_equal(view, X)
            assert not view.flags.writeable
        finally:
            # drop the in-process attachment before unlinking the segment
            from repro.perf.parallel import _ATTACHED
            shm, _ = _ATTACHED.pop(str(plane.descriptor["name"]))
            shm.close()
            plane.unlink()

    def test_descriptor_is_plain_data(self, rng):
        plane = SharedMatrix.publish(rng.normal(size=(3, 3)))
        try:
            desc = plane.descriptor
            assert set(desc) == {"name", "shape", "dtype"}
            assert desc["shape"] == (3, 3)
        finally:
            plane.unlink()


class TestParallelChunks:
    @pytest.mark.parametrize("n_jobs", [1, 2, 3])
    @pytest.mark.parametrize("chunk", [None, 7, 100])
    def test_covers_every_row_once(self, n_jobs, chunk):
        n = 53
        hits = np.zeros(n, dtype=np.int64)

        def block(start, stop):
            hits[start:stop] += 1

        parallel_chunks(block, n, chunk=chunk, n_jobs=n_jobs)
        assert (hits == 1).all()

    def test_empty_range(self):
        parallel_chunks(lambda s, e: pytest.fail("should not run"), 0,
                        n_jobs=2)


class TestParallelMap:
    def test_serial_is_list_comprehension(self):
        assert parallel_map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_threaded_preserves_order(self):
        items = list(range(20))
        assert parallel_map(lambda x: x + 1, items, n_jobs=4) == \
            [x + 1 for x in items]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError(f"boom {x}")

        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(boom, [1, 2, 3], n_jobs=2)


class TestKernelDispatch:
    @pytest.mark.parametrize("n_jobs", [2, 3, -1])
    @pytest.mark.parametrize("budget", [None, 4096])
    def test_pairwise_identical(self, rng, n_jobs, budget):
        X = rng.normal(size=(120, 8))
        serial = pairwise_distances(X, memory_budget_bytes=budget)
        parallel = pairwise_distances(X, memory_budget_bytes=budget,
                                      n_jobs=n_jobs)
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("n_jobs", [2, 4])
    @pytest.mark.parametrize("budget", [None, 1024])
    def test_segmental_identical(self, rng, n_jobs, budget):
        X = rng.normal(size=(500, 9))
        dims = (0, 4, 7)
        serial = segmental_distances_to_point(X, X[3], dims,
                                              memory_budget_bytes=budget)
        parallel = segmental_distances_to_point(
            X, X[3], dims, memory_budget_bytes=budget, n_jobs=n_jobs,
        )
        assert np.array_equal(serial, parallel)


class TestRestartBitIdentity:
    """proclus(n_jobs=2) == proclus(n_jobs=1), bit for bit."""

    @pytest.mark.parametrize("seed", [0, 7, 99])
    def test_across_seeds(self, workload, seed):
        serial = proclus(workload.points, 3, 3, seed=seed, restarts=3, **FAST)
        parallel = proclus(workload.points, 3, 3, seed=seed, restarts=3,
                           n_jobs=2, **FAST)
        assert _fingerprint(serial) == _fingerprint(parallel)

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
    def test_across_metrics(self, workload, metric):
        serial = proclus(workload.points, 3, 3, seed=5, restarts=3,
                         metric=metric, **FAST)
        parallel = proclus(workload.points, 3, 3, seed=5, restarts=3,
                           metric=metric, n_jobs=2, **FAST)
        assert _fingerprint(serial) == _fingerprint(parallel)

    @pytest.mark.parametrize("cache", [True, False])
    def test_across_cache_settings(self, workload, cache):
        serial = proclus(workload.points, 3, 3, seed=11, restarts=3,
                         cache=cache, **FAST)
        parallel = proclus(workload.points, 3, 3, seed=11, restarts=3,
                           cache=cache, n_jobs=2, **FAST)
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_generous_deadline(self, workload):
        """A budget that never expires must not perturb anything."""
        serial = proclus(workload.points, 3, 3, seed=13, restarts=3,
                         time_budget_s=120.0, **FAST)
        parallel = proclus(workload.points, 3, 3, seed=13, restarts=3,
                           time_budget_s=120.0, n_jobs=2, **FAST)
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_large_database_mode(self, workload):
        serial = proclus(workload.points, 3, 3, seed=17, restarts=3,
                         fit_sample_size=300, **FAST)
        parallel = proclus(workload.points, 3, 3, seed=17, restarts=3,
                           fit_sample_size=300, n_jobs=2, **FAST)
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_all_cores_identical(self, workload):
        serial = proclus(workload.points, 3, 3, seed=23, restarts=4, **FAST)
        parallel = proclus(workload.points, 3, 3, seed=23, restarts=4,
                           n_jobs=-1, **FAST)
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_estimator_forwards_n_jobs(self, workload):
        est = Proclus(k=3, l=3, seed=7, restarts=2, n_jobs=2, **FAST)
        est.fit(workload.points)
        ref = proclus(workload.points, 3, 3, seed=7, restarts=2, **FAST)
        assert _fingerprint(est.result_) == _fingerprint(ref)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -3, 2.5])
    def test_proclus_rejects_bad_n_jobs(self, workload, bad):
        with pytest.raises(ParameterError, match="n_jobs"):
            proclus(workload.points, 3, 3, seed=1, n_jobs=bad, **FAST)

    def test_config_validates_n_jobs(self, workload):
        from repro.core.config import ProclusConfig
        with pytest.raises(ParameterError, match="n_jobs"):
            ProclusConfig(k=3, l=3, n_jobs=0).validated(600, 10)


class TestDiagnostics:
    def test_serial_restart_diagnostics(self, workload):
        result = proclus(workload.points, 3, 3, seed=5, restarts=3, **FAST)
        p = result.parallelism
        assert p["n_jobs"] == 1 and p["n_workers"] == 1
        assert p["restarts_completed"] == 3
        assert len(p["restart_seconds"]) == 3
        assert all(s > 0 for s in p["restart_seconds"])
        assert p["wall_seconds"] > 0

    def test_parallel_restart_diagnostics(self, workload):
        result = proclus(workload.points, 3, 3, seed=5, restarts=3,
                         n_jobs=2, **FAST)
        p = result.parallelism
        assert p["n_jobs"] == 2 and p["n_workers"] == 2
        assert p["restarts_completed"] == 3
        assert len(p["restart_seconds"]) == 3

    def test_single_restart_has_no_parallelism(self, workload):
        result = proclus(workload.points, 3, 3, seed=5, **FAST)
        assert result.parallelism is None
        assert parallel_report(None) is None

    def test_parallel_report_math(self):
        report = parallel_report({
            "n_jobs": 2, "n_workers": 2, "restarts_completed": 3,
            "restart_seconds": [1.0, 1.0, None], "wall_seconds": 1.0,
        })
        assert report.busy_seconds == pytest.approx(2.0)
        assert report.speedup == pytest.approx(2.0)
        assert report.efficiency == pytest.approx(1.0)
        assert "2 worker(s)" in report.to_text()

    def test_serialization_roundtrip(self, workload, tmp_path):
        result = proclus(workload.points, 3, 3, seed=5, restarts=2, **FAST)
        path = save_result(result, tmp_path / "fit.npz")
        loaded = load_result(path)
        assert loaded.parallelism["restarts_completed"] == 2
        assert loaded.parallelism["n_workers"] == 1

    def test_to_dict_carries_parallelism(self, workload):
        result = proclus(workload.points, 3, 3, seed=5, restarts=2, **FAST)
        assert result.to_dict()["parallelism"]["restarts_completed"] == 2


class TestNotesIsolation:
    """Regression for the restart ``notes`` aliasing: children used to
    share the parent's list, so the winner carried losers' notes."""

    def test_winner_notes_only_appended_once(self, workload):
        dirty = workload.points.copy()
        dirty[::97, 0] = np.nan
        with pytest.warns(UserWarning):
            result = proclus(dirty, 3, 3, seed=5, restarts=3,
                             on_bad_values="drop", **FAST)
        # sanitization notes are parent-level and must appear exactly once,
        # not once per restart child
        for msg in set(result.warnings):
            assert result.warnings.count(msg) == 1

    def test_budget_note_appended_once(self, workload):
        with pytest.warns(UserWarning, match="time budget exhausted"):
            result = proclus(workload.points, 3, 3, seed=5, restarts=40,
                             max_bad_tries=10**6, max_iterations=10**6,
                             time_budget_s=0.05, keep_history=False)
        budget_notes = [w for w in result.warnings
                        if "time budget exhausted" in w]
        assert len(budget_notes) == 1
