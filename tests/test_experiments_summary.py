"""Tests for the one-call reproduction summary."""

import pytest

from repro.experiments import run_reproduction
from repro.experiments.summary import ClaimResult, ReproductionSummary


class TestReproductionSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_reproduction("smoke", seed=70)

    def test_all_claims_checked(self, summary):
        artifacts = {c.artifact for c in summary.claims}
        assert artifacts == {"Tables 1+3", "Tables 2+4", "Figure 1",
                             "Figure 9", "Theorem 3.1", "Section 1"}

    def test_all_held_at_smoke_tier(self, summary):
        failed = [c.artifact for c in summary.claims if not c.held]
        assert summary.all_held, f"claims failed: {failed}"

    def test_evidence_and_timings_recorded(self, summary):
        for c in summary.claims:
            assert c.evidence
            assert c.seconds >= 0.0

    def test_text_rendering(self, summary):
        text = summary.to_text()
        assert "Reproduction summary" in text
        assert "6/6" in text

    def test_invalid_tier(self):
        with pytest.raises(ValueError):
            run_reproduction("huge")

    def test_counters(self):
        s = ReproductionSummary(tier="smoke", claims=[
            ClaimResult("a", "c", True, "e", 0.1),
            ClaimResult("b", "c", False, "e", 0.1),
        ])
        assert s.n_held == 1
        assert not s.all_held
