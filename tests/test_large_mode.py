"""Tests for the CLARA-style fit_sample_size mode."""

import numpy as np
import pytest

from repro import proclus
from repro.data import generate
from repro.exceptions import ParameterError
from repro.metrics import adjusted_rand_index


@pytest.fixture(scope="module")
def big():
    return generate(8000, 12, 3, cluster_dim_counts=[4, 4, 4],
                    outlier_fraction=0.03, seed=70)


class TestFitSampleSize:
    def test_quality_preserved(self, big):
        full = proclus(big.points, 3, 4, seed=71, max_bad_tries=15,
                       keep_history=False)
        sampled = proclus(big.points, 3, 4, seed=71, max_bad_tries=15,
                          fit_sample_size=2000, keep_history=False)
        ari_full = adjusted_rand_index(full.labels, big.labels)
        ari_sampled = adjusted_rand_index(sampled.labels, big.labels)
        assert ari_sampled > ari_full - 0.15
        assert ari_sampled > 0.7

    def test_every_point_labelled(self, big):
        result = proclus(big.points, 3, 4, seed=71, max_bad_tries=10,
                         fit_sample_size=2000, keep_history=False)
        assert result.labels.shape == (8000,)
        assert set(np.unique(result.labels)) <= {-1, 0, 1, 2}

    def test_medoids_are_original_points(self, big):
        result = proclus(big.points, 3, 4, seed=71, max_bad_tries=10,
                         fit_sample_size=2000, keep_history=False)
        assert np.array_equal(result.medoids,
                              big.points[result.medoid_indices])

    def test_faster_hill_climbing(self, big):
        full = proclus(big.points, 3, 4, seed=71, max_bad_tries=15,
                       keep_history=False)
        sampled = proclus(big.points, 3, 4, seed=71, max_bad_tries=15,
                          fit_sample_size=1500, keep_history=False)
        full_fit = full.phase_seconds["iterative"]
        sampled_fit = sampled.phase_seconds["sample_fit"]
        assert sampled_fit < full_fit

    def test_sample_larger_than_n_is_noop_path(self, big):
        a = proclus(big.points[:500], 3, 4, seed=1, max_bad_tries=5,
                    fit_sample_size=10_000, keep_history=False)
        b = proclus(big.points[:500], 3, 4, seed=1, max_bad_tries=5,
                    keep_history=False)
        assert np.array_equal(a.labels, b.labels)

    def test_too_small_sample_rejected(self, big):
        with pytest.raises(ParameterError, match="fit_sample_size"):
            proclus(big.points, 3, 4, fit_sample_size=50)

    def test_dimension_budget_respected(self, big):
        result = proclus(big.points, 3, 4, seed=71, max_bad_tries=10,
                         fit_sample_size=2000, keep_history=False)
        assert sum(len(d) for d in result.dimensions.values()) == 12
