"""Small-scale tests for the ablation runners."""

import pytest

from repro.experiments import (
    run_initialization_ablation,
    run_min_deviation_ablation,
    run_pool_size_ablation,
)
from repro.experiments.ablations import AblationReport


class TestAblationReport:
    def test_best_by(self):
        report = AblationReport(knob="x", rows=[
            {"variant": "a", "score": 1.0},
            {"variant": "b", "score": 3.0},
        ])
        assert report.best_by("score")["variant"] == "b"
        assert report.best_by("score", minimize=True)["variant"] == "a"

    def test_row_for(self):
        report = AblationReport(knob="x", rows=[{"variant": "a", "v": 1.0}])
        assert report.row_for("a")["v"] == 1.0
        with pytest.raises(KeyError):
            report.row_for("missing")

    def test_empty_text(self):
        assert "no rows" in AblationReport(knob="x").to_text()


class TestInitializationAblation:
    def test_three_variants(self):
        report = run_initialization_ablation(n_points=800, n_seeds=1,
                                             seed=70)
        variants = {r["variant"] for r in report.rows}
        assert variants == {"greedy_on_sample (paper)", "random_pool",
                            "greedy_on_full"}
        for r in report.rows:
            assert -1.0 <= r["ari"] <= 1.0
            assert r["objective"] > 0
            assert r["seconds"] > 0

    def test_renders(self):
        report = run_initialization_ablation(n_points=600, n_seeds=1,
                                             seed=70)
        assert "initialization strategy" in report.to_text()


class TestMinDeviationAblation:
    def test_sweep_rows(self):
        report = run_min_deviation_ablation(n_points=800,
                                            values=(0.05, 0.3), seed=70)
        assert [r["variant"] for r in report.rows] == ["0.05", "0.3"]
        for r in report.rows:
            assert r["outliers"] >= 0


class TestPoolSizeAblation:
    def test_b_above_a_skipped(self):
        report = run_pool_size_ablation(n_points=800, a_values=(4,),
                                        b_values=(2, 8), seed=70)
        variants = [r["variant"] for r in report.rows]
        assert variants == ["A=4,B=2"]  # B=8 > A=4 skipped

    def test_grid_size(self):
        report = run_pool_size_ablation(n_points=800, a_values=(5, 10),
                                        b_values=(2, 5), seed=70)
        assert len(report.rows) == 4
