"""RPR009 fixture: live and stale suppression directives side by side."""

import numpy as np


def live_suppression():
    return np.random.rand(3)  # repr: noqa RPR001 -- suppresses a real finding


def stale_named(x):
    return x + 1  # repr: noqa RPR001 -- nothing to suppress here


def stale_blanket(x):
    return x  # repr: noqa
