"""Lint fixture: unpicklable / undeclared process-pool targets."""

from concurrent.futures import ProcessPoolExecutor


def run(items):
    def helper(x):
        return x + 1

    with ProcessPoolExecutor() as pool:
        a = list(pool.map(lambda x: x * 2, items))   # lambda target
        b = list(pool.map(helper, items))            # nested def target
        c = pool.submit(_worker, 1, None).result()
    return a, b, c


def _worker(x, handle: Socket) -> int:  # noqa: F821 - fixture, never imported
    # x unannotated; Socket not a declared-shareable type
    return x
