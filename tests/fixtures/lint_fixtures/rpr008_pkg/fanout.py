"""Call sites that mutate a published matrix after SharedMatrix.publish."""

from .shared import SharedMatrix


def scale_inplace(X, w):
    X *= w


def tweak(X, w):
    scale_inplace(X, w)  # transitive mutation of X


def direct_write_after_publish(X):
    handle = SharedMatrix.publish(X)
    X[0] = 0.0  # workers hold live views of these pages
    return handle


def alias_write_after_publish(X):
    Y = X.T
    handle = SharedMatrix.publish(X)
    Y += 1.0  # writes through the published buffer via the alias
    return handle


def mutating_call_after_publish(X, w):
    handle = SharedMatrix.publish(X)
    tweak(X, w)  # callee chain mutates X
    return handle


def write_before_publish_is_fine(X):
    X[0] = 0.0  # pre-publish mutation: legal
    handle = SharedMatrix.publish(X)
    return handle


def rebinding_is_fine(X):
    handle = SharedMatrix.publish(X)
    X = X - X.mean()  # rebinding the name, not writing the buffer
    return handle, X
