"""A SharedMatrix whose publish method forgets to freeze the view."""

import numpy as np


class SharedMatrix:
    def __init__(self, buf, shape):
        self._buf = buf
        self.shape = shape

    @classmethod
    def publish(cls, X):
        view = np.empty(X.shape, dtype=X.dtype)
        view[...] = X
        # missing: view.flags.writeable = False
        return cls(view, X.shape)
