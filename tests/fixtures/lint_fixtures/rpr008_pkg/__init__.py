"""RPR008 fixture package: publish-then-mutate violations."""
