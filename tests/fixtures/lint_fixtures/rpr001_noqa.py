"""Lint fixture: a suppressed RPR001 finding must not be reported."""

import numpy as np


def entropy():
    return np.random.default_rng()  # repr: noqa RPR001 -- sanctioned here
