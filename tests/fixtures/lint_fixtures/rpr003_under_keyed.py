"""Lint fixture: an IterativeCache whose distance keys omit the metric,
plus a store access from a method with no declared contract."""


class IterativeCache:
    def distance_columns(self, X, rows, metric):
        for row in rows:
            col = self._distance.get((int(row),))  # under-keyed: no metric
            if col is None:
                self._distance.put((int(row),), X[row])
        return X

    def segmental_matrix(self, X, rows, dim_sets):
        for row, dims in zip(rows, dim_sets):
            key = (int(row), tuple(dims))
            if self._segmental.get(key) is None:
                self._segmental.put(key, X[row])
        return X

    def locality_members(self, row, delta, min_size, metric):
        return self._locality.get((row, delta, min_size, metric))

    def store_locality_members(self, row, delta, min_size, metric, members):
        self._locality.put((row, delta, min_size, metric), members)

    def dimension_stats(self, X, rows, localities, deltas, min_size, metric):
        for i, row in enumerate(rows):
            key = (row, deltas[i], min_size, metric)
            if self._stats.get(key) is None:
                self._stats.put(key, X[row])
        return X

    def peek(self, row):
        # undeclared: no contract covers this access
        return self._distance.get((row, "euclidean"))
