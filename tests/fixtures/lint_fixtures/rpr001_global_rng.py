"""Lint fixture: every flavour of RPR001 global-state randomness."""

import random

import numpy as np


def sample(n):
    np.random.seed(42)              # global reseed
    vals = np.random.rand(n)        # legacy global draw
    random.shuffle(vals)            # stdlib global RNG
    gen = np.random.default_rng()   # unseeded factory
    return vals, gen
