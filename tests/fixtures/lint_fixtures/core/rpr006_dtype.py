"""Lint fixture: dtype-destroying float64 coercions inside a core/ module."""

import numpy as np


def widen_everything(X, medoids):
    a = np.asarray(X, dtype=np.float64)          # flagged: kwarg np.float64
    b = np.array(X, dtype="float64")             # flagged: string dtype
    c = np.ascontiguousarray(X, dtype=np.double) # flagged: double alias
    d = np.asarray(medoids, np.float64)          # flagged: positional dtype
    e = X.astype(np.float64)                     # flagged: astype re-widen
    return a, b, c, d, e


def legal_patterns(X, weights):
    buf = np.empty(X.shape, dtype=np.float64)    # allowed: fresh buffer
    idx = np.asarray(weights, dtype=np.intp)     # allowed: non-float64 target
    kept = np.asarray(X)                         # allowed: no dtype rewrite
    total = X.mean(axis=0, dtype=np.float64)     # allowed: accumulator dtype
    back = total.astype(X.dtype, copy=False)     # allowed: working dtype
    return buf, idx, kept, total, back
