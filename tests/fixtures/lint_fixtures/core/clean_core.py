"""Lint fixture: a core-scoped module that honours every contract."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.obs.clock import monotonic_s


def shuffled_copy(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Randomness threads an explicit Generator parameter."""
    out = np.array(values, copy=True)
    rng.shuffle(out)
    return out


def timed_lengths(groups: List[List[int]]) -> List[int]:
    """The sanctioned clock seam and sorted-set iteration are both legal."""
    t0 = monotonic_s()
    sizes = [len(g) for g in groups]
    for tag in sorted({"a", "b"}):
        sizes.append(len(tag))
    sizes.append(int(monotonic_s() - t0 >= 0.0))
    return sizes
