"""Lint fixture: a core-scoped module that honours every contract."""

from __future__ import annotations

import time
from typing import List

import numpy as np


def shuffled_copy(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Randomness threads an explicit Generator parameter."""
    out = np.array(values, copy=True)
    rng.shuffle(out)
    return out


def timed_lengths(groups: List[List[int]]) -> List[int]:
    """perf_counter durations and sorted-set iteration are both legal."""
    t0 = time.perf_counter()
    sizes = [len(g) for g in groups]
    for tag in sorted({"a", "b"}):
        sizes.append(len(tag))
    sizes.append(int(time.perf_counter() - t0 >= 0.0))
    return sizes
