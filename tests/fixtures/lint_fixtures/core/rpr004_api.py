"""Lint fixture: public API with missing annotations and builtin raise."""


def cluster(data, k: int):
    if k < 1:
        raise ValueError("k must be positive")
    return data


def _private_helper(x):
    # private: annotations not required by RPR004
    return x
