"""Lint fixture: nondeterminism primitives inside a core/ module."""

import os
import time


def stamp(values):
    t = time.time()                     # wall clock feeding a result
    salt = os.urandom(8)                # OS entropy
    out = []
    for x in {3, 1, 2}:                 # unordered set iteration
        out.append(x)
    doubled = [v for v in set(values)]  # unordered set comprehension
    return t, salt, out, doubled


def raw_duration(values):
    t0 = time.perf_counter()            # flagged: raw duration clock
    ordered = [v for v in sorted(set(values))]  # allowed: pinned order
    return ordered, time.perf_counter() - t0
