"""RPR007 fixture package: an IterativeCache fed by impure producers.

Linted as a directory (whole-program view) by the tests; excluded from
repo walks via DEFAULT_EXCLUDE_DIRS like every lint fixture.
"""
