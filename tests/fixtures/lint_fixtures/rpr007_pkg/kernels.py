"""Producers for the RPR007 fixture cache: pure, impure, and out-param."""

import numpy as np

_call_log = {"n": 0}  # mutable module global (lowercase: not a constant)

EPS = 1e-9  # ALL_CAPS constant: exempt by convention


def scale_rows(X, w):
    """Impure: mutates its array argument in place."""
    X *= w
    return X


def counted_distance(X, row):
    """Impure: reads (and writes) mutable module state."""
    _call_log["n"] += 1
    return np.abs(X - X[row]).sum(axis=1)


def chained_distance(X, row):
    """Transitively impure through counted_distance."""
    return counted_distance(X, row)


def pure_distance(X, row):
    """Pure: a function of its arguments (plus a module constant)."""
    return np.abs(X - X[row]).sum(axis=1) + EPS


def segmental_columns(X, dims, out=None):
    """Declared out-param producer (DECLARED_OUT_PARAMS sanctions it)."""
    if out is None:
        out = np.empty(X.shape[0], dtype=X.dtype)
    out[...] = X[:, dims].sum(axis=1)
    return out
