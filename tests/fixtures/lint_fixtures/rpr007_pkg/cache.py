"""An IterativeCache whose put sites memoise impure producer results."""

from .kernels import (
    chained_distance,
    counted_distance,
    pure_distance,
    scale_rows,
    segmental_columns,
)


class _Store:
    def __init__(self):
        self._data = {}

    def put(self, key, value):
        self._data[key] = value

    def get(self, key):
        return self._data.get(key)


class IterativeCache:
    def __init__(self):
        self._distance = _Store()
        self._segmental = _Store()

    def distance_columns(self, X, row, metric):
        key = (row, metric)
        col = counted_distance(X, row)  # impure: reads module state
        self._distance.put(key, col)
        return col

    def store_scaled(self, X, w, row, metric):
        key = (row, metric)
        scaled = scale_rows(X, w)  # impure: mutates X in place
        self._distance.put(key, scaled)
        return scaled

    def store_chained(self, X, row, metric):
        key = (row, metric)
        self._distance.put(key, chained_distance(X, row))  # transitive
        return key

    def store_pure(self, X, row, metric):
        key = (row, metric)
        col = pure_distance(X, row)  # clean: no finding here
        self._distance.put(key, col)
        return col

    def segmental_matrix(self, X, row, dims, buf):
        key = (row, dims)
        seg = segmental_columns(X, dims, out=buf)  # cached write-through
        self._segmental.put(key, seg)
        return seg
