"""Unit tests for the named domain workloads."""

import numpy as np
import pytest

from repro import proclus
from repro.data import (
    collaborative_filtering_workload,
    customer_segmentation_workload,
    sensor_fleet_workload,
)
from repro.data.workloads import BEHAVIOUR_FEATURES, PRODUCT_CATEGORIES
from repro.exceptions import ParameterError
from repro.metrics import adjusted_rand_index


class TestCollaborativeFiltering:
    def test_shapes(self):
        ds = collaborative_filtering_workload(100, 20, seed=1)
        assert ds.n_points == 4 * 100 + 20
        assert ds.n_dims == len(PRODUCT_CATEGORIES)
        assert ds.n_clusters == 4
        assert ds.n_outliers == 20

    def test_ground_truth_dims_match_segments(self):
        ds = collaborative_filtering_workload(50, 0, seed=1)
        gaming = PRODUCT_CATEGORIES.index("gaming")
        young_gamers_dims = ds.cluster_dimensions[0]
        assert gaming in young_gamers_dims

    def test_ratings_within_scale(self):
        ds = collaborative_filtering_workload(100, 10, rating_scale=5.0,
                                              seed=2)
        assert ds.points.min() >= 0.0
        assert ds.points.max() <= 5.0

    def test_unknown_category_rejected(self):
        with pytest.raises(ParameterError, match="unknown categories"):
            collaborative_filtering_workload(
                10, 0, segments={"bad": (("no-such-cat",), 5.0)},
            )

    def test_empty_segments_rejected(self):
        with pytest.raises(ParameterError, match="non-empty"):
            collaborative_filtering_workload(10, 0, segments={})

    def test_proclus_recovers_segments(self):
        ds = collaborative_filtering_workload(400, 50, seed=3)
        result = proclus(ds.points, 4, 3.75, seed=3, max_bad_tries=20)
        assert adjusted_rand_index(result.labels, ds.labels) > 0.8

    def test_metadata_names(self):
        ds = collaborative_filtering_workload(10, 0, seed=1)
        assert ds.metadata["feature_names"] == list(PRODUCT_CATEGORIES)
        assert "young gamers" in ds.metadata["segment_names"]


class TestCustomerSegmentation:
    def test_shapes(self):
        ds = customer_segmentation_workload(100, 30, seed=4)
        assert ds.n_dims == len(BEHAVIOUR_FEATURES)
        assert ds.n_clusters == 4
        assert ds.n_outliers == 30

    def test_values_normalised(self):
        ds = customer_segmentation_workload(100, 10, seed=4)
        assert ds.points.min() >= 0.0
        assert ds.points.max() <= 1.0

    def test_defining_features_are_tight(self):
        ds = customer_segmentation_workload(400, 0, sigma=0.04, seed=5)
        for cid, dims in ds.cluster_dimensions.items():
            pts = ds.cluster_points(cid)
            assert pts[:, list(dims)].std(axis=0).max() < 0.1

    def test_each_segment_has_own_dims(self):
        ds = customer_segmentation_workload(50, 0, seed=5)
        sets = list(ds.cluster_dimensions.values())
        assert len(set(sets)) == len(sets)


class TestSensorFleet:
    def test_shapes_and_modes(self):
        ds = sensor_fleet_workload(1200, 60, n_modes=3, seed=6)
        assert ds.n_clusters == 3
        assert ds.n_outliers == 60

    def test_signature_sizes(self):
        ds = sensor_fleet_workload(1000, 0, n_modes=4, seed=7)
        for dims in ds.cluster_dimensions.values():
            assert 3 <= len(dims) <= 5

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            sensor_fleet_workload(n_metrics=4)
        with pytest.raises(ParameterError):
            sensor_fleet_workload(n_modes=0)

    def test_reproducible(self):
        a = sensor_fleet_workload(500, 20, seed=8)
        b = sensor_fleet_workload(500, 20, seed=8)
        assert np.array_equal(a.points, b.points)
        assert a.cluster_dimensions == b.cluster_dimensions
