"""Unit tests for repro.robustness: sanitize, guards, fallback, faults."""

import numpy as np
import pytest

from repro.data import generate
from repro.distance import cross_distances, pairwise_distances
from repro.exceptions import (
    BudgetExceededError,
    DataError,
    DegenerateDataError,
    ParameterError,
    SanitizationWarning,
)
from repro.robustness import (
    BAD_VALUE_POLICIES,
    Deadline,
    DEFAULT_MEMORY_BUDGET_BYTES,
    FaultPlan,
    SanitizationReport,
    distinct_row_count,
    estimate_cross_distance_temp_bytes,
    inject_constant_dims,
    inject_duplicates,
    inject_extreme_scale,
    inject_nan_rows,
    kmedoids_fallback,
    plan_degradation,
    resolve_row_chunk,
    sanitize,
    standard_fault_matrix,
    standard_faults,
)


@pytest.fixture
def clean():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 100, size=(60, 5))


# ----------------------------------------------------------------------
# sanitize
# ----------------------------------------------------------------------
class TestSanitize:
    def test_clean_data_untouched(self, clean):
        Xs, report = sanitize(clean, warn=False)
        assert np.array_equal(Xs, clean)
        assert not report.changed
        assert report.n_rows_out == 60
        assert np.array_equal(report.restore_labels(np.zeros(60, dtype=int)),
                              np.zeros(60, dtype=int))

    def test_raise_policy(self, clean):
        X = clean.copy()
        X[3, 1] = np.nan
        with pytest.raises(DataError):
            sanitize(X, on_bad_values="raise", warn=False)

    def test_drop_policy(self, clean):
        X = clean.copy()
        X[3, 1] = np.nan
        X[10, 0] = np.inf
        Xs, report = sanitize(X, on_bad_values="drop", warn=False)
        assert Xs.shape == (58, 5)
        assert np.all(np.isfinite(Xs))
        assert report.dropped_rows.tolist() == [3, 10]
        labels = report.restore_labels(np.arange(58))
        assert labels.shape == (60,)
        assert labels[3] == -1 and labels[10] == -1
        # surviving rows keep their identity under the mapping
        assert labels[0] == 0 and labels[4] == 3

    def test_impute_median_policy(self, clean):
        X = clean.copy()
        X[5, 2] = np.nan
        Xs, report = sanitize(X, on_bad_values="impute_median", warn=False)
        assert Xs.shape == X.shape
        finite = X[np.isfinite(X[:, 2]), 2]
        assert Xs[5, 2] == pytest.approx(np.median(finite))
        assert report.n_imputed_cells == 1

    def test_clip_policy(self, clean):
        X = clean.copy()
        X[1, 0] = np.inf
        X[2, 0] = -np.inf
        Xs, report = sanitize(X, on_bad_values="clip", warn=False)
        finite = X[np.isfinite(X[:, 0]), 0]
        assert Xs[1, 0] == finite.max()
        assert Xs[2, 0] == finite.min()
        assert report.n_clipped_cells == 2

    def test_all_rows_bad_raises_degenerate(self):
        X = np.full((5, 3), np.nan)
        with pytest.raises(DegenerateDataError):
            sanitize(X, on_bad_values="drop", warn=False)

    def test_collapse_duplicates(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 2.0], [5.0, 6.0],
                      [3.0, 4.0]])
        Xs, report = sanitize(X, collapse_duplicates=True, warn=False)
        # first occurrences, original order
        assert np.array_equal(Xs, X[[0, 1, 3]])
        assert report.n_duplicates_collapsed == 2
        labels = report.restore_labels(np.array([7, 8, 9]))
        assert labels.tolist() == [7, 8, 7, 9, 8]

    def test_constant_dims_detected(self, clean):
        X = clean.copy()
        X[:, 4] = -1.5
        _, report = sanitize(X, warn=False)
        assert report.constant_dims == (4,)

    def test_warns_when_changed(self, clean):
        X = clean.copy()
        X[0, 0] = np.nan
        with pytest.warns(SanitizationWarning):
            sanitize(X, on_bad_values="drop", warn=True)

    def test_invalid_policy_rejected(self, clean):
        with pytest.raises(ParameterError):
            sanitize(clean, on_bad_values="zero-fill", warn=False)
        assert "drop" in BAD_VALUE_POLICIES

    def test_report_round_trip_dict(self, clean):
        X = clean.copy()
        X[0, 0] = np.nan
        _, report = sanitize(X, on_bad_values="drop", warn=False)
        d = report.to_dict()
        assert d["policy"] == "drop"
        assert d["n_rows_out"] == 59
        assert isinstance(report, SanitizationReport)


# ----------------------------------------------------------------------
# guards
# ----------------------------------------------------------------------
class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline.start(None)
        assert d.unlimited
        assert not d.expired()
        assert d.remaining() == np.inf
        d.check()  # never raises

    def test_zero_budget_expires_immediately(self):
        d = Deadline.start(0.0)
        assert d.expired()
        with pytest.raises(BudgetExceededError):
            d.check("unit test")

    def test_negative_budget_rejected(self):
        with pytest.raises(ParameterError):
            Deadline.start(-1.0)

    def test_elapsed_monotone(self):
        d = Deadline.start(100.0)
        a = d.elapsed()
        b = d.elapsed()
        assert b >= a >= 0.0


class TestMemoryGuard:
    def test_small_block_unchunked(self):
        assert resolve_row_chunk(100, 10) is None

    def test_large_block_chunked(self):
        chunk = resolve_row_chunk(10**7, 100)
        assert chunk is not None
        assert 1 <= chunk < 10**7
        assert (estimate_cross_distance_temp_bytes(chunk, 100)
                <= DEFAULT_MEMORY_BUDGET_BYTES)

    def test_chunked_distances_identical(self, clean):
        anchors = clean[:4]
        full = cross_distances(clean, anchors)
        # force a tiny budget -> chunked path
        chunked = cross_distances(clean, anchors, memory_budget_bytes=1024)
        assert np.array_equal(full, chunked)

    def test_chunked_pairwise_identical(self, clean):
        full = pairwise_distances(clean)
        chunked = pairwise_distances(clean, memory_budget_bytes=1024)
        assert np.array_equal(full, chunked)


# ----------------------------------------------------------------------
# fallback
# ----------------------------------------------------------------------
class TestFallback:
    def test_distinct_row_count(self):
        X = np.array([[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]])
        assert distinct_row_count(X) == 2

    def test_plan_noop_on_clean_input(self, clean):
        plan = plan_degradation(clean, 3, 3.0, 10, 2)
        assert not plan.degraded
        assert plan.k == 3 and plan.l == 3.0

    def test_plan_reduces_k(self):
        X = np.tile(np.eye(3), (4, 1))  # 3 distinct rows
        plan = plan_degradation(X, 5, 2.0, 2, 1)
        assert plan.degraded
        assert plan.k <= 2

    def test_plan_clamps_l(self, clean):
        plan = plan_degradation(clean, 2, 99.0, 10, 2)
        assert plan.l == 5.0
        assert plan.degraded

    def test_plan_clamps_factors(self, clean):
        plan = plan_degradation(clean, 3, 3.0, 1000, 1000)
        assert plan.sample_factor * 3 <= 60
        assert plan.pool_factor <= plan.sample_factor
        assert plan.degraded

    def test_plan_excludes_constant_dims(self, clean):
        plan = plan_degradation(clean, 2, 2.0, 10, 2, constant_dims=(1, 3))
        assert plan.exclude_dims == (1, 3)

    def test_kmedoids_fallback_shape(self, clean):
        result = kmedoids_fallback(clean, 3, seed=0)
        assert result.labels.shape == (60,)
        assert result.k == 3
        assert result.degraded
        assert result.terminated_by == "fallback_kmedoids"
        # full-space dimension sets
        assert all(d == tuple(range(5)) for d in result.dimensions.values())


# ----------------------------------------------------------------------
# faults
# ----------------------------------------------------------------------
class TestFaults:
    def test_inject_nan_rows(self, clean):
        X = inject_nan_rows(clean, fraction=0.1, seed=0)
        assert X.shape == clean.shape
        bad = ~np.all(np.isfinite(X), axis=1)
        assert bad.sum() == 6
        assert np.all(np.isfinite(clean))  # input untouched

    def test_inject_duplicates(self, clean):
        X = inject_duplicates(clean, fraction=0.5)
        assert X.shape == (90, 5)

    def test_inject_constant_dims(self, clean):
        X = inject_constant_dims(clean, n_dims=2, value=9.0)
        const = [j for j in range(5) if np.ptp(X[:, j]) == 0.0]
        assert len(const) == 2

    def test_inject_extreme_scale(self, clean):
        X = inject_extreme_scale(clean, factor=1e9, dims=[0])
        assert np.max(np.abs(X[:, 0])) >= 1e9
        assert np.array_equal(X[:, 1:], clean[:, 1:])

    def test_fault_plan_composes(self, clean):
        plans = standard_fault_matrix(max_combination=2)
        names = [p.name for p in plans]
        assert len(plans) == len(set(names))
        singles = [p for p in plans if "+" not in p.name]
        assert len(singles) == len(standard_faults())
        X = plans[-1].apply(clean, seed=1)
        assert isinstance(X, np.ndarray)
        assert isinstance(plans[0], FaultPlan)

    def test_fault_plan_deterministic(self, clean):
        plan = standard_fault_matrix()[0]
        a = plan.apply(clean, seed=3)
        b = plan.apply(clean, seed=3)
        assert np.array_equal(a, b, equal_nan=True)
