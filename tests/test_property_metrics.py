"""Property-based tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    adjusted_rand_index,
    average_overlap,
    confusion_matrix,
    normalized_mutual_info,
    pairwise_f1,
    purity,
)

label_arrays = st.integers(min_value=2, max_value=60).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(min_value=-1, max_value=4), min_size=n,
                 max_size=n).map(np.array),
        st.lists(st.integers(min_value=-1, max_value=4), min_size=n,
                 max_size=n).map(np.array),
    )
)


class TestConfusionProperties:
    @given(label_arrays)
    @settings(max_examples=60)
    def test_mass_conserved(self, pair):
        found, true = pair
        cm = confusion_matrix(found, true)
        assert cm.matrix.sum() == found.shape[0]

    @given(label_arrays)
    @settings(max_examples=60)
    def test_row_sums_are_cluster_sizes(self, pair):
        found, true = pair
        cm = confusion_matrix(found, true)
        for r, cid in enumerate(cm.output_ids):
            assert cm.matrix[r].sum() == np.count_nonzero(found == cid)


class TestIndexProperties:
    @given(label_arrays)
    @settings(max_examples=60)
    def test_symmetry_of_ari(self, pair):
        a, b = pair
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    @given(label_arrays)
    @settings(max_examples=60)
    def test_bounds(self, pair):
        a, b = pair
        assert -1.0 <= adjusted_rand_index(a, b) <= 1.0 + 1e-12
        assert 0.0 <= normalized_mutual_info(a, b) <= 1.0 + 1e-12
        assert 0.0 <= purity(a, b) <= 1.0
        assert 0.0 <= pairwise_f1(a, b) <= 1.0 + 1e-12

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=2,
                    max_size=50).map(np.array))
    @settings(max_examples=60)
    def test_self_comparison_perfect(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
        assert purity(labels, labels) == 1.0

    @given(label_arrays, st.permutations(list(range(5))))
    @settings(max_examples=60)
    def test_relabeling_invariance(self, pair, perm):
        found, true = pair
        remap = np.array(perm)
        relabeled = np.where(found >= 0, remap[np.clip(found, 0, 4)], found)
        assert adjusted_rand_index(found, true) == pytest.approx(
            adjusted_rand_index(relabeled, true)
        )


class TestOverlapProperties:
    @given(st.lists(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                 max_size=10).map(lambda l: np.array(sorted(set(l)))),
        min_size=1, max_size=6,
    ))
    @settings(max_examples=60)
    def test_overlap_at_least_one(self, memberships):
        assert average_overlap(memberships) >= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                    max_size=10).map(lambda l: np.array(sorted(set(l)))))
    @settings(max_examples=40)
    def test_single_cluster_overlap_exactly_one(self, members):
        assert average_overlap([members]) == 1.0
