"""Unit tests for the stability analysis."""

import numpy as np
import pytest

from repro import proclus
from repro.data import generate
from repro.exceptions import ParameterError
from repro.metrics import stability_report


@pytest.fixture(scope="module")
def easy():
    return generate(800, 10, 3, cluster_dim_counts=[4, 4, 4],
                    outlier_fraction=0.02, seed=21)


def proclus_fit(X, seed):
    return proclus(X, 3, 4, seed=seed, max_bad_tries=10, keep_history=False)


class TestStabilityReport:
    def test_counts(self, easy):
        report = stability_report(proclus_fit, easy.points, n_runs=3, seed=1)
        assert report.n_runs == 3
        assert len(report.pairwise_ari) == 3     # C(3,2)
        assert len(report.objectives) == 3

    def test_easy_data_is_stable(self, easy):
        report = stability_report(proclus_fit, easy.points, n_runs=4, seed=1)
        assert report.mean_ari > 0.7
        assert report.mean_dimension_jaccard > 0.7

    def test_deterministic_fit_perfectly_stable(self, easy):
        class Fixed:
            labels = np.repeat([0, 1], 400)
            dimensions = {0: (0, 1), 1: (2, 3)}
            objective = 1.0

        report = stability_report(lambda X, seed: Fixed(), easy.points,
                                  n_runs=3, seed=2)
        assert report.mean_ari == pytest.approx(1.0)
        assert report.mean_dimension_jaccard == pytest.approx(1.0)
        assert report.objective_spread == 0.0

    def test_random_labels_unstable(self, easy):
        def random_fit(X, seed):
            class R:
                labels = np.random.default_rng(
                    seed.integers(2**31) if hasattr(seed, "integers") else seed
                ).integers(0, 3, X.shape[0])
            return R()

        report = stability_report(random_fit, easy.points, n_runs=3, seed=3)
        assert report.mean_ari < 0.1

    def test_requires_two_runs(self, easy):
        with pytest.raises(ParameterError):
            stability_report(proclus_fit, easy.points, n_runs=1)

    def test_text(self, easy):
        report = stability_report(proclus_fit, easy.points, n_runs=2, seed=4)
        text = report.to_text()
        assert "stability over 2 runs" in text
        assert "ARI" in text

    def test_works_without_dimensions_attribute(self, easy):
        class Bare:
            def __init__(self, labels):
                self.labels = labels

        def fit(X, seed):
            return Bare(np.zeros(X.shape[0], dtype=int))

        report = stability_report(fit, easy.points, n_runs=2, seed=5)
        assert report.pairwise_dimension_jaccard == []
        assert report.mean_dimension_jaccard == 1.0
