"""Property-based tests for the dimension-allocation greedy.

The paper reduces dimension selection to a separable convex resource
allocation problem solved exactly by a greedy ([16]).  We verify on
random inputs that our greedy satisfies the constraints and is
*optimal*: no feasible allocation has a smaller total Z-sum.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import allocate_dimensions


@st.composite
def z_matrices(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    d = draw(st.integers(min_value=2, max_value=6))
    values = draw(st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=k * d, max_size=k * d,
    ))
    z = np.array(values).reshape(k, d)
    total = draw(st.integers(min_value=2 * k, max_value=k * d))
    return z, total


@given(z_matrices())
@settings(max_examples=80)
def test_constraints_hold(zt):
    z, total = zt
    sets = allocate_dimensions(z, total, min_per_row=2)
    assert sum(len(s) for s in sets) == total
    assert all(len(s) >= 2 for s in sets)
    for i, s in enumerate(sets):
        assert len(set(s)) == len(s)
        assert all(0 <= j < z.shape[1] for j in s)


def brute_force_optimum(z, total, min_per_row=2):
    """Exact optimum by enumerating per-row selection sizes and using
    the fact that, for a fixed size, each row takes its smallest values."""
    k, d = z.shape
    sorted_rows = [np.sort(z[i]) for i in range(k)]
    prefix = [np.concatenate([[0.0], np.cumsum(r)]) for r in sorted_rows]
    best = np.inf
    sizes = range(min_per_row, d + 1)
    for combo in itertools.product(sizes, repeat=k):
        if sum(combo) != total:
            continue
        cost = sum(prefix[i][c] for i, c in enumerate(combo))
        best = min(best, cost)
    return best


@given(z_matrices())
@settings(max_examples=50, deadline=None)
def test_greedy_is_optimal(zt):
    z, total = zt
    sets = allocate_dimensions(z, total, min_per_row=2)
    greedy_cost = sum(z[i, j] for i, s in enumerate(sets) for j in s)
    optimal = brute_force_optimum(z, total)
    assert greedy_cost == pytest.approx(optimal, abs=1e-9)


def test_known_example_from_paper_structure():
    """k*l budget, 2-per-row floor, most-negative-first (paper Fig. 4)."""
    z = np.array([
        [-3.0, -2.0, -1.0, 5.0],
        [-9.0, 0.0, 1.0, 2.0],
    ])
    sets = allocate_dimensions(z, total=5, min_per_row=2)
    # floors: row0 {0,1}, row1 {0,1}; 5th pick: z[0,2] = -1 beats z[1,2] = 1
    assert sets[0] == (0, 1, 2)
    assert sets[1] == (0, 1)
