"""Unit tests for repro.validation."""

import numpy as np
import pytest

from repro.exceptions import DataError, ParameterError
from repro.validation import (
    check_array,
    check_dimension_subset,
    check_fraction,
    check_k_l,
    check_positive_int,
    check_same_length,
)


class TestCheckArray:
    def test_coerces_lists_to_float64(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_rejects_1d_by_default(self):
        with pytest.raises(DataError, match="2-dimensional"):
            check_array([1.0, 2.0, 3.0])

    def test_allow_1d_reshapes_to_row(self):
        arr = check_array([1.0, 2.0, 3.0], allow_1d=True)
        assert arr.shape == (1, 3)

    def test_rejects_3d(self):
        with pytest.raises(DataError, match="ndim=3"):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(DataError, match="NaN or infinite"):
            check_array([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(DataError, match="NaN or infinite"):
            check_array([[np.inf, 1.0]])

    def test_min_rows_enforced(self):
        with pytest.raises(DataError, match="at least 3 row"):
            check_array([[1.0, 2.0]], min_rows=3)

    def test_min_cols_enforced(self):
        with pytest.raises(DataError, match="at least 2 column"):
            check_array([[1.0], [2.0]], min_cols=2)

    def test_result_is_contiguous(self):
        base = np.zeros((4, 6))[:, ::2]
        arr = check_array(base)
        assert arr.flags["C_CONTIGUOUS"]


class TestCheckPositiveInt:
    def test_accepts_numpy_integers(self):
        assert check_positive_int(np.int64(5), name="x") == 5

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            check_positive_int(True, name="x")

    def test_rejects_float(self):
        with pytest.raises(ParameterError, match="integer"):
            check_positive_int(2.5, name="x")

    def test_minimum(self):
        with pytest.raises(ParameterError, match=">= 2"):
            check_positive_int(1, name="x", minimum=2)

    def test_maximum(self):
        with pytest.raises(ParameterError, match="<= 3"):
            check_positive_int(4, name="x", maximum=3)


class TestCheckFraction:
    def test_bounds_inclusive_by_default(self):
        assert check_fraction(0.0, name="f") == 0.0
        assert check_fraction(1.0, name="f") == 1.0

    def test_exclusive_high(self):
        with pytest.raises(ParameterError):
            check_fraction(1.0, name="f", inclusive_high=False)

    def test_rejects_non_numeric(self):
        with pytest.raises(ParameterError):
            check_fraction("half", name="f")

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            check_fraction(1.5, name="f")


class TestCheckKL:
    def test_valid(self):
        assert check_k_l(5, 7, n_dims=20) == (5, 7.0)

    def test_l_below_two_rejected(self):
        with pytest.raises(ParameterError, match=">= 2"):
            check_k_l(5, 1.5, n_dims=20)

    def test_l_above_d_rejected(self):
        with pytest.raises(ParameterError, match="<= data dimensionality"):
            check_k_l(5, 25, n_dims=20)

    def test_fractional_l_with_integral_product_ok(self):
        k, l = check_k_l(4, 2.5, n_dims=20)
        assert (k, l) == (4, 2.5)

    def test_non_integral_product_rejected(self):
        with pytest.raises(ParameterError, match="integral"):
            check_k_l(3, 2.5, n_dims=20)

    def test_k_exceeding_n_rejected(self):
        with pytest.raises(ParameterError, match="exceeds"):
            check_k_l(10, 2, n_dims=20, n_points=5)


class TestCheckDimensionSubset:
    def test_sorts_and_dedups(self):
        assert check_dimension_subset([3, 1, 3], 5).tolist() == [1, 3]

    def test_rejects_empty(self):
        with pytest.raises(ParameterError, match="non-empty"):
            check_dimension_subset([], 5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            check_dimension_subset([5], 5)
        with pytest.raises(ParameterError):
            check_dimension_subset([-1], 5)


def test_check_same_length():
    check_same_length([1, 2], [3, 4])
    with pytest.raises(DataError, match="equal length"):
        check_same_length([1], [2, 3], names=("a", "b"))
