"""Property-based tests for PROCLUS output invariants.

Whatever the data, a fitted PROCLUS result must satisfy the paper's
structural contract: a (k+1)-way partition (clusters + outliers), k
dimension sets of >= 2 dimensions summing to k*l, and medoids drawn
from the data.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import proclus


@st.composite
def workloads(draw):
    k = draw(st.integers(min_value=2, max_value=4))
    d = draw(st.integers(min_value=4, max_value=10))
    l = draw(st.integers(min_value=2, max_value=min(4, d)))
    n = draw(st.integers(min_value=30 * k, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 100, size=(n, d))
    return X, k, l, seed


@given(workloads())
@settings(max_examples=15, deadline=None)
@pytest.mark.filterwarnings("ignore::repro.exceptions.ConvergenceWarning")
def test_structural_contract(workload):
    X, k, l, seed = workload
    result = proclus(X, k, l, seed=seed, max_bad_tries=3, max_iterations=10,
                     sample_factor=10, pool_factor=3, keep_history=False)
    n, d = X.shape
    # (k+1)-way partition
    assert result.labels.shape == (n,)
    assert set(np.unique(result.labels)) <= set(range(k)) | {-1}
    # dimension sets: >= 2 each, total k*l, valid indices
    assert len(result.dimensions) == k
    assert sum(len(s) for s in result.dimensions.values()) == k * l
    for dims in result.dimensions.values():
        assert len(dims) >= 2
        assert all(0 <= j < d for j in dims)
        assert tuple(sorted(dims)) == dims
    # medoids are data points
    assert np.array_equal(result.medoids, X[result.medoid_indices])
    assert len(set(result.medoid_indices.tolist())) == k
    # objective is finite and non-negative
    assert np.isfinite(result.objective)
    assert result.objective >= 0.0


@given(workloads())
@settings(max_examples=8, deadline=None)
@pytest.mark.filterwarnings("ignore::repro.exceptions.ConvergenceWarning")
def test_seed_determinism(workload):
    X, k, l, seed = workload
    kwargs = dict(seed=seed, max_bad_tries=3, max_iterations=8,
                  sample_factor=10, pool_factor=3, keep_history=False)
    a = proclus(X, k, l, **kwargs)
    b = proclus(X, k, l, **kwargs)
    assert np.array_equal(a.labels, b.labels)
    assert a.dimensions == b.dimensions
