"""Unit tests for dataset transforms."""

import numpy as np
import pytest

from repro.data import (
    add_noise_dimensions,
    generate,
    min_max_normalize,
    shuffle_points,
)
from repro.exceptions import ParameterError


@pytest.fixture
def dataset():
    return generate(200, 5, 2, seed=10)


class TestMinMax:
    def test_range(self, dataset):
        scaled = min_max_normalize(dataset)
        assert scaled.points.min() >= 0.0
        assert scaled.points.max() <= 1.0

    def test_custom_range(self, dataset):
        scaled = min_max_normalize(dataset, feature_range=(-1.0, 1.0))
        assert scaled.points.min() == pytest.approx(-1.0)
        assert scaled.points.max() == pytest.approx(1.0)

    def test_constant_dimension_maps_to_midpoint(self):
        from repro.data import Dataset
        pts = np.column_stack([np.full(5, 7.0), np.arange(5, dtype=float)])
        scaled = min_max_normalize(Dataset(points=pts))
        assert np.allclose(scaled.points[:, 0], 0.5)

    def test_invalid_range(self, dataset):
        with pytest.raises(ParameterError, match="high > low"):
            min_max_normalize(dataset, feature_range=(1.0, 1.0))

    def test_ground_truth_preserved(self, dataset):
        scaled = min_max_normalize(dataset)
        assert np.array_equal(scaled.labels, dataset.labels)
        assert scaled.cluster_dimensions == dataset.cluster_dimensions


class TestNoiseDims:
    def test_appends_dimensions(self, dataset):
        out = add_noise_dimensions(dataset, 3, seed=1)
        assert out.n_dims == dataset.n_dims + 3
        assert np.array_equal(out.points[:, :5], dataset.points)

    def test_zero_is_identity(self, dataset):
        assert add_noise_dimensions(dataset, 0) is dataset

    def test_negative_rejected(self, dataset):
        with pytest.raises(ParameterError):
            add_noise_dimensions(dataset, -1)

    def test_noise_within_bounds(self, dataset):
        out = add_noise_dimensions(dataset, 2, low=5.0, high=6.0, seed=2)
        noise = out.points[:, 5:]
        assert noise.min() >= 5.0
        assert noise.max() <= 6.0


class TestShuffle:
    def test_preserves_multiset(self, dataset):
        shuffled = shuffle_points(dataset, seed=3)
        assert np.allclose(
            np.sort(shuffled.points, axis=0), np.sort(dataset.points, axis=0)
        )

    def test_labels_stay_aligned(self, dataset):
        shuffled, perm = shuffle_points(dataset, seed=3, return_permutation=True)
        assert np.array_equal(shuffled.labels, dataset.labels[perm])
        assert np.array_equal(shuffled.points, dataset.points[perm])
