"""Tests for the curse-of-dimensionality experiment."""

import pytest

from repro.experiments import run_curse_of_dimensionality


class TestCurse:
    @pytest.fixture(scope="class")
    def report(self):
        return run_curse_of_dimensionality(dims=(2, 8, 24), n_points=600,
                                           n_queries=20, n_pairs=150,
                                           seed=11)

    def test_rows_per_dimension(self, report):
        assert report.dims == [2, 8, 24]
        assert len(report.relative_contrast) == 3
        assert len(report.far_pair_probability) == 3

    def test_contrast_positive_and_decaying(self, report):
        assert all(c > 0 for c in report.relative_contrast)
        assert report.contrast_decays()

    def test_probabilities_valid(self, report):
        assert all(0.0 <= p <= 1.0 for p in report.far_pair_probability)
        assert report.separation_grows()

    def test_text(self, report):
        text = report.to_text()
        assert "Curse of dimensionality" in text
        assert "relative contrast" in text

    def test_registered(self):
        from repro.experiments import get_experiment
        assert get_experiment("curse") is not None
