"""Unit tests for the robustness diagnostics (paper section 3)."""

import numpy as np
import pytest

from repro.core import (
    initialize_medoid_pool,
    locality_report,
    piercing_report,
    proclus,
)
from repro.data import generate


class TestPiercingReport:
    def test_piercing_set(self):
        labels = np.array([0, 0, 1, 1, 2, 2, -1])
        report = piercing_report([0, 2, 4], labels)
        assert report.is_piercing
        assert report.clusters_missed == ()
        assert report.n_outlier_points == 0
        assert report.n_duplicated_clusters == 0

    def test_missing_cluster(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        report = piercing_report([0, 1], labels)
        assert not report.is_piercing
        assert set(report.clusters_missed) == {1, 2}
        assert report.n_duplicated_clusters == 1

    def test_outlier_picks_counted(self):
        labels = np.array([0, -1, -1, 1])
        report = piercing_report([0, 1, 2, 3], labels)
        assert report.n_outlier_points == 2
        assert report.is_piercing

    def test_to_text(self):
        labels = np.array([0, 1])
        assert "piercing" in piercing_report([0, 1], labels).to_text()
        assert "NOT piercing" in piercing_report([0], labels).to_text()


class TestLocalityReport:
    def test_basic_fields(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 100, size=(500, 6))
        report = locality_report(X, [0, 100, 200])
        assert len(report.sizes) == 3
        assert len(report.deltas) == 3
        assert report.expected_random == pytest.approx(500 / 3)
        assert report.min_size <= report.mean_size

    def test_to_text(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 100, size=(200, 4))
        text = locality_report(X, [0, 50]).to_text()
        assert "locality sizes" in text
        assert "N/k" in text


class TestSectionThreeClaims:
    def test_greedy_pool_is_piercing_on_paper_workload(self):
        """Section 2.1: the two-step initialization yields a superset
        of a piercing set with high probability."""
        ds = generate(4000, 20, 5, cluster_dim_counts=[7] * 5,
                      outlier_fraction=0.05, seed=70)
        pool = initialize_medoid_pool(ds.points, 150, 25, seed=3)
        assert piercing_report(pool, ds.labels).is_piercing

    def test_greedy_medoid_localities_exceed_random_expectation(self):
        """Section 3: greedy-selected medoids are far apart, so their
        localities should be at least as large as random medoids'."""
        ds = generate(3000, 20, 5, cluster_dim_counts=[7] * 5,
                      outlier_fraction=0.05, seed=70)
        result = proclus(ds.points, 5, 7, seed=71, max_bad_tries=10,
                         keep_history=False)
        report = locality_report(ds.points, result.medoid_indices)
        assert report.meets_theorem_bound
