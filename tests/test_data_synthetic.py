"""Unit tests for the section-4.1 synthetic generator."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, SyntheticDataGenerator, generate
from repro.data.dataset import OUTLIER_LABEL
from repro.exceptions import ParameterError


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticConfig().validate()

    def test_bad_outlier_fraction(self):
        with pytest.raises(ParameterError):
            SyntheticConfig(outlier_fraction=1.0).validate()

    def test_bad_poisson(self):
        with pytest.raises(ParameterError):
            SyntheticConfig(poisson_lambda=0).validate()

    def test_counts_length_mismatch(self):
        with pytest.raises(ParameterError, match="one entry per cluster"):
            SyntheticConfig(n_clusters=3, cluster_dim_counts=[5, 5]).validate()

    def test_count_below_two(self):
        with pytest.raises(ParameterError, match=r"\[2, d\]"):
            SyntheticConfig(n_clusters=1, cluster_dim_counts=[1]).validate()

    def test_explicit_dims_validated(self):
        with pytest.raises(ParameterError, match=">= 2 valid"):
            SyntheticConfig(n_clusters=1, cluster_dims=[[0]]).validate()

    def test_average_cluster_dim(self):
        cfg = SyntheticConfig(n_clusters=2, cluster_dim_counts=[2, 6])
        assert cfg.average_cluster_dim == 4.0


class TestGeneratedStructure:
    def test_shapes_and_counts(self):
        ds = generate(1000, 15, 4, seed=9)
        assert ds.points.shape == (1000, 15)
        assert ds.labels.shape == (1000,)
        assert ds.n_clusters == 4

    def test_outlier_fraction_respected(self):
        ds = generate(2000, 10, 3, outlier_fraction=0.05, seed=4)
        assert ds.n_outliers == 100

    def test_zero_outliers(self):
        ds = generate(500, 10, 3, outlier_fraction=0.0, seed=4)
        assert ds.n_outliers == 0

    def test_sizes_sum_to_n(self):
        ds = generate(997, 10, 5, seed=11)
        assert sum(ds.cluster_sizes().values()) + ds.n_outliers == 997

    def test_pinned_dim_counts(self):
        ds = generate(500, 20, 5, cluster_dim_counts=[7] * 5, seed=1)
        assert all(len(d) == 7 for d in ds.cluster_dimensions.values())

    def test_pinned_dim_sets(self):
        dims = [[0, 1, 2], [3, 4]]
        ds = generate(300, 10, 2, cluster_dims=dims, seed=1)
        assert ds.cluster_dimensions == {0: (0, 1, 2), 1: (3, 4)}

    def test_dimensionality_clamped_to_range(self):
        ds = generate(300, 6, 4, poisson_lambda=1.0, seed=5)
        for d in ds.cluster_dimensions.values():
            assert 2 <= len(d) <= 6

    def test_reproducible(self):
        a = generate(400, 10, 3, seed=77)
        b = generate(400, 10, 3, seed=77)
        assert np.array_equal(a.points, b.points)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate(400, 10, 3, seed=1)
        b = generate(400, 10, 3, seed=2)
        assert not np.array_equal(a.points, b.points)


class TestStatisticalShape:
    def test_cluster_dims_are_tight(self):
        """Cluster-dimension std must be ~ s_ij * r <= 4, far below uniform."""
        ds = generate(4000, 12, 2, cluster_dim_counts=[4, 4],
                      outlier_fraction=0.0, seed=3)
        for cid, dims in ds.cluster_dimensions.items():
            pts = ds.cluster_points(cid)
            non_dims = [j for j in range(12) if j not in dims]
            tight = pts[:, list(dims)].std(axis=0).max()
            loose = pts[:, non_dims].std(axis=0).min()
            assert tight < 6.0          # ~ max scale 2 * spread 2 = sigma 4
            assert loose > 20.0          # uniform on [0,100] has std ~28.9

    def test_outliers_spread_over_box(self):
        ds = generate(5000, 10, 3, outlier_fraction=0.2, seed=8)
        outliers = ds.points[ds.labels == OUTLIER_LABEL]
        assert outliers.min() >= 0.0
        assert outliers.max() <= 100.0
        assert outliers.std(axis=0).min() > 20.0

    def test_clip_keeps_points_in_box(self):
        ds = generate(2000, 8, 3, clip=True, seed=6)
        assert ds.points.min() >= 0.0
        assert ds.points.max() <= 100.0

    def test_inherited_dimensions_overlap(self):
        """Consecutive clusters share min(d_prev, d_i//2) dimensions."""
        gen = SyntheticDataGenerator(SyntheticConfig(n_clusters=4, n_dims=20,
                                                     seed=123))
        rng = np.random.default_rng(5)
        counts = [6, 6, 6, 6]
        sets = gen.draw_dimension_sets(counts, rng)
        for prev, cur in zip(sets, sets[1:]):
            shared = set(prev) & set(cur)
            assert len(shared) >= min(len(prev), 6 // 2)

    def test_exponential_sizes_all_positive(self):
        ds = generate(1000, 10, 8, seed=13)
        assert all(s >= 1 for s in ds.cluster_sizes().values())


class TestGeneratorObject:
    def test_repeated_draws_differ(self):
        gen = SyntheticDataGenerator(SyntheticConfig(n_points=300, seed=5))
        a = gen.generate()
        b = gen.generate()
        assert not np.array_equal(a.points, b.points)

    def test_explicit_seed_overrides_stream(self):
        gen = SyntheticDataGenerator(SyntheticConfig(n_points=300, seed=5))
        a = gen.generate(seed=99)
        gen2 = SyntheticDataGenerator(SyntheticConfig(n_points=300, seed=5))
        b = gen2.generate(seed=99)
        assert np.array_equal(a.points, b.points)

    def test_metadata_records_sizes(self):
        ds = generate(500, 10, 3, seed=21)
        meta_sizes = ds.metadata["cluster_sizes"]
        assert meta_sizes == ds.cluster_sizes()
