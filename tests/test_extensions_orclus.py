"""Tests for the ORCLUS extension and the rotated-workload generator."""

import numpy as np
import pytest

from repro import proclus
from repro.data import generate, generate_rotated, random_rotation, rotate_clusters
from repro.exceptions import ParameterError
from repro.extensions import Orclus, orclus
from repro.metrics import adjusted_rand_index
from repro.rng import ensure_rng


class TestRandomRotation:
    def test_orthogonal(self):
        rng = ensure_rng(0)
        for d in (2, 5, 12):
            q = random_rotation(d, rng)
            assert np.allclose(q @ q.T, np.eye(d), atol=1e-10)

    def test_determinant_plus_one(self):
        rng = ensure_rng(1)
        for _ in range(5):
            q = random_rotation(4, rng)
            assert np.linalg.det(q) == pytest.approx(1.0)

    def test_invalid_dim(self):
        with pytest.raises(ParameterError):
            random_rotation(0, ensure_rng(0))


class TestRotateClusters:
    def test_preserves_labels_and_shape(self):
        ds = generate(500, 8, 2, cluster_dim_counts=[3, 3], seed=2)
        rotated = rotate_clusters(ds, seed=2)
        assert rotated.points.shape == ds.points.shape
        assert np.array_equal(rotated.labels, ds.labels)
        assert rotated.cluster_dimensions is None

    def test_cluster_means_preserved(self):
        ds = generate(500, 8, 2, cluster_dim_counts=[3, 3], seed=2)
        rotated = rotate_clusters(ds, seed=2)
        for cid in ds.cluster_ids:
            before = ds.cluster_points(cid).mean(axis=0)
            after = rotated.points[rotated.labels == cid].mean(axis=0)
            assert np.allclose(before, after, atol=1e-8)

    def test_pairwise_distances_preserved_within_cluster(self):
        """Rotation is an isometry: intra-cluster geometry survives."""
        ds = generate(300, 6, 2, cluster_dim_counts=[2, 2], seed=3)
        rotated = rotate_clusters(ds, seed=3)
        members = np.flatnonzero(ds.labels == 0)[:20]
        before = np.linalg.norm(
            ds.points[members][:, None] - ds.points[members][None], axis=2)
        after = np.linalg.norm(
            rotated.points[members][:, None] - rotated.points[members][None],
            axis=2)
        assert np.allclose(before, after, atol=1e-8)

    def test_axis_alignment_destroyed(self):
        """After rotation, no coordinate dimension is tight anymore."""
        ds = generate(1000, 10, 1, cluster_dims=[[0, 1, 2]],
                      outlier_fraction=0.0, seed=4)
        rotated = rotate_clusters(ds, seed=4)
        stds = rotated.points.std(axis=0)
        # originally dims 0-2 had std <= ~4; now every axis is spread
        assert stds.min() > 5.0

    def test_requires_labels(self):
        from repro.data import Dataset
        with pytest.raises(ParameterError, match="labels"):
            rotate_clusters(Dataset(points=np.zeros((5, 3))))


class TestOrclus:
    def test_output_contract(self):
        ds = generate_rotated(800, 10, 3, cluster_dim_counts=[3, 3, 3],
                              seed=6)
        result = orclus(ds.points, 3, 3, seed=6)
        assert result.labels.shape == (800,)
        assert result.k == 3
        assert len(result.bases) == 3
        for basis in result.bases:
            assert basis.shape == (10, 3)
            assert np.allclose(basis.T @ basis, np.eye(3), atol=1e-8)
        assert result.energy >= 0.0

    def test_recovers_rotated_clusters(self):
        ds = generate_rotated(2000, 12, 3, cluster_dim_counts=[4, 4, 4],
                              seed=5)
        result = orclus(ds.points, 3, 4, seed=5)
        assert adjusted_rand_index(result.labels, ds.labels) > 0.6

    def test_beats_proclus_on_rotated_structure(self):
        """The headline extension claim: oriented subspaces defeat the
        axis-parallel model."""
        ds = generate_rotated(2000, 12, 3, cluster_dim_counts=[4, 4, 4],
                              seed=5)
        o_ari = adjusted_rand_index(
            orclus(ds.points, 3, 4, seed=5).labels, ds.labels)
        p_ari = adjusted_rand_index(
            proclus(ds.points, 3, 4, seed=5, max_bad_tries=20).labels,
            ds.labels)
        assert o_ari > p_ari + 0.3

    def test_works_on_axis_parallel_too(self):
        ds = generate(1500, 12, 3, cluster_dim_counts=[4, 4, 4],
                      outlier_fraction=0.0, seed=7)
        result = orclus(ds.points, 3, 4, seed=7)
        assert adjusted_rand_index(result.labels, ds.labels,
                                   include_outliers=True) > 0.6

    def test_outlier_factor(self):
        ds = generate_rotated(1000, 10, 2, cluster_dim_counts=[3, 3],
                              outlier_fraction=0.1, seed=8)
        result = orclus(ds.points, 2, 3, outlier_factor=3.0, seed=8)
        assert result.n_outliers > 0

    def test_parameter_validation(self):
        X = np.random.default_rng(0).normal(size=(50, 5))
        with pytest.raises(ParameterError):
            orclus(X, 2, 5)        # l must be < d
        with pytest.raises(ParameterError):
            orclus(X, 2, 2, alpha=1.0)
        with pytest.raises(ParameterError):
            orclus(X, 0, 2)

    def test_deterministic(self):
        ds = generate_rotated(600, 8, 2, cluster_dim_counts=[3, 3], seed=9)
        a = orclus(ds.points, 2, 3, seed=9)
        b = orclus(ds.points, 2, 3, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_estimator(self):
        ds = generate_rotated(600, 8, 2, cluster_dim_counts=[3, 3], seed=10)
        est = Orclus(k=2, l=3, seed=10).fit(ds.points)
        assert est.labels_.shape == (600,)
        assert est.result_.subspace_dimensionality() == 3
