"""Unit tests for external indices (ARI/NMI/purity/F1) and internal ones."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.metrics import (
    adjusted_rand_index,
    normalized_mutual_info,
    pairwise_f1,
    projected_objective,
    purity,
    segmental_silhouette,
)


LABELS = np.array([0, 0, 0, 1, 1, 1])
SAME = LABELS
RELABELED = np.array([1, 1, 1, 0, 0, 0])
HALF = np.array([0, 0, 1, 1, 1, 1])
RANDOMISH = np.array([0, 1, 0, 1, 0, 1])


class TestAri:
    def test_identical_is_one(self):
        assert adjusted_rand_index(SAME, LABELS) == 1.0

    def test_permutation_invariant(self):
        assert adjusted_rand_index(RELABELED, LABELS) == 1.0

    def test_partial_between(self):
        v = adjusted_rand_index(HALF, LABELS)
        assert 0.0 < v < 1.0

    def test_orthogonal_near_zero(self):
        v = adjusted_rand_index(RANDOMISH, LABELS)
        assert v < 0.2

    def test_outliers_excluded_by_default(self):
        found = np.array([0, 0, -1, 1, 1])
        true = np.array([0, 0, 0, 1, 1])
        assert adjusted_rand_index(found, true) == 1.0

    def test_outliers_included_on_request(self):
        found = np.array([0, 0, -1, 1, 1])
        true = np.array([0, 0, 0, 1, 1])
        assert adjusted_rand_index(found, true, include_outliers=True) < 1.0

    def test_matches_scipy_free_reference(self):
        """Cross-check against sklearn's published example values."""
        assert adjusted_rand_index(
            np.array([0, 0, 1, 2]), np.array([0, 0, 1, 1])
        ) == pytest.approx(0.5714285714285714)


class TestNmi:
    def test_identical_is_one(self):
        assert normalized_mutual_info(SAME, LABELS) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        assert normalized_mutual_info(RELABELED, LABELS) == pytest.approx(1.0)

    def test_bounds(self):
        v = normalized_mutual_info(HALF, LABELS)
        assert 0.0 <= v <= 1.0

    def test_single_cluster_degenerate(self):
        ones = np.zeros(6, dtype=int)
        assert normalized_mutual_info(ones, ones) == 1.0


class TestPurityF1:
    def test_purity_perfect(self):
        assert purity(SAME, LABELS) == 1.0

    def test_purity_known_value(self):
        found = np.array([0, 0, 0, 1, 1, 1])
        true = np.array([0, 0, 1, 1, 1, 0])
        assert purity(found, true) == pytest.approx(4 / 6)

    def test_f1_perfect(self):
        assert pairwise_f1(SAME, LABELS) == pytest.approx(1.0)

    def test_f1_bounds(self):
        assert 0.0 <= pairwise_f1(HALF, LABELS) <= 1.0


class TestInternal:
    def test_projected_objective_matches_core(self, two_cluster_points):
        labels = np.repeat([0, 1], 40)
        dims = {0: (0, 1), 1: (2, 3)}
        obj = projected_objective(two_cluster_points, labels, dims)
        assert obj > 0.0
        # tight planted clusters: dispersion well under 2 (sigma = 0.5)
        assert obj < 2.0

    def test_silhouette_high_for_planted_structure(self, two_cluster_points):
        labels = np.repeat([0, 1], 40)
        dims = {0: (0, 1), 1: (2, 3)}
        s = segmental_silhouette(two_cluster_points, labels, dims)
        assert s > 0.5

    def test_silhouette_low_for_shuffled_labels(self, two_cluster_points):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 80)
        dims = {0: (0, 1), 1: (2, 3)}
        s = segmental_silhouette(two_cluster_points, labels, dims)
        assert s < 0.3

    def test_silhouette_needs_two_clusters(self, two_cluster_points):
        with pytest.raises(DataError):
            segmental_silhouette(two_cluster_points, np.zeros(80, dtype=int),
                                 {0: (0, 1)})

    def test_silhouette_ignores_outliers(self, two_cluster_points):
        labels = np.repeat([0, 1], 40)
        labels[0] = -1
        dims = {0: (0, 1), 1: (2, 3)}
        s = segmental_silhouette(two_cluster_points, labels, dims)
        assert s > 0.5
