"""Unit tests for the DBSCAN baseline."""

import numpy as np
import pytest

from repro.baselines import DBSCAN, dbscan
from repro.data.dataset import OUTLIER_LABEL
from repro.exceptions import ParameterError
from repro.metrics import purity


@pytest.fixture(scope="module")
def two_blobs_with_noise():
    rng = np.random.default_rng(2)
    a = rng.normal([0.0, 0.0], 0.5, size=(60, 2))
    b = rng.normal([20.0, 20.0], 0.5, size=(60, 2))
    noise = np.array([[10.0, 10.0], [-10.0, 15.0], [30.0, -5.0]])
    X = np.vstack([a, b, noise])
    y = np.array([0] * 60 + [1] * 60 + [-1] * 3)
    return X, y


class TestDbscan:
    def test_finds_two_clusters(self, two_blobs_with_noise):
        X, y = two_blobs_with_noise
        result = dbscan(X, eps=2.0, min_pts=5)
        assert result.n_clusters == 2
        assert purity(result.labels, y) > 0.95

    def test_isolated_points_are_noise(self, two_blobs_with_noise):
        X, y = two_blobs_with_noise
        result = dbscan(X, eps=2.0, min_pts=5)
        assert (result.labels[-3:] == OUTLIER_LABEL).all()
        assert result.n_noise == 3

    def test_core_points_marked(self, two_blobs_with_noise):
        X, _ = two_blobs_with_noise
        result = dbscan(X, eps=2.0, min_pts=5)
        # interior blob points are core; isolated noise is not
        assert result.core_mask[:120].sum() > 100
        assert not result.core_mask[-3:].any()

    def test_tiny_eps_everything_noise(self, two_blobs_with_noise):
        X, _ = two_blobs_with_noise
        result = dbscan(X, eps=1e-6, min_pts=5)
        assert result.n_clusters == 0
        assert result.n_noise == X.shape[0]

    def test_huge_eps_single_cluster(self, two_blobs_with_noise):
        X, _ = two_blobs_with_noise
        result = dbscan(X, eps=1e6, min_pts=5)
        assert result.n_clusters == 1
        assert result.n_noise == 0

    def test_min_pts_one_no_noise(self, two_blobs_with_noise):
        X, _ = two_blobs_with_noise
        result = dbscan(X, eps=2.0, min_pts=1)
        assert result.n_noise == 0

    def test_invalid_eps(self):
        with pytest.raises(ParameterError):
            dbscan(np.zeros((5, 2)), eps=0.0)

    def test_labels_contiguous(self, two_blobs_with_noise):
        X, _ = two_blobs_with_noise
        result = dbscan(X, eps=2.0, min_pts=5)
        ids = sorted(set(result.labels.tolist()) - {OUTLIER_LABEL})
        assert ids == list(range(result.n_clusters))

    def test_estimator(self, two_blobs_with_noise):
        X, y = two_blobs_with_noise
        labels = DBSCAN(eps=2.0, min_pts=5).fit_predict(X)
        assert purity(labels, y) > 0.9

    def test_fails_on_projected_structure(self):
        """Full-dimensional DBSCAN cannot separate projected clusters:
        no single eps both connects clusters spread over irrelevant
        dimensions and separates different clusters."""
        from repro.data import generate
        from repro.metrics import adjusted_rand_index
        ds = generate(800, 20, 3, cluster_dim_counts=[4, 4, 4],
                      outlier_fraction=0.0, seed=9)
        best_ari = -1.0
        for eps in (20.0, 50.0, 80.0, 120.0):
            result = dbscan(ds.points, eps=eps, min_pts=5)
            ari = adjusted_rand_index(result.labels, ds.labels,
                                      include_outliers=True)
            best_ari = max(best_ari, ari)
        assert best_ari < 0.5
