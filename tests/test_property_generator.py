"""Property-based tests for the synthetic generator (paper section 4.1)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import SyntheticConfig, SyntheticDataGenerator
from repro.data.dataset import OUTLIER_LABEL


@st.composite
def configs(draw):
    n_dims = draw(st.integers(min_value=3, max_value=15))
    n_clusters = draw(st.integers(min_value=1, max_value=5))
    n_points = draw(st.integers(min_value=max(20, n_clusters * 5),
                                max_value=400))
    outlier_fraction = draw(st.sampled_from([0.0, 0.05, 0.2]))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return SyntheticConfig(
        n_points=n_points, n_dims=n_dims, n_clusters=n_clusters,
        poisson_lambda=3.0, outlier_fraction=outlier_fraction, seed=seed,
    )


@given(configs())
@settings(max_examples=40, deadline=None)
def test_partition_invariants(cfg):
    ds = SyntheticDataGenerator(cfg).generate()
    # shape
    assert ds.points.shape == (cfg.n_points, cfg.n_dims)
    assert ds.labels.shape == (cfg.n_points,)
    # labels form a partition: every point is outlier or in 0..k-1
    valid = set(range(cfg.n_clusters)) | {OUTLIER_LABEL}
    assert set(np.unique(ds.labels)) <= valid
    # outlier count matches the configured fraction (rounded)
    assert ds.n_outliers == int(round(cfg.n_points * cfg.outlier_fraction))
    # every cluster non-empty
    sizes = ds.cluster_sizes()
    assert len(sizes) == cfg.n_clusters
    assert all(s >= 1 for s in sizes.values())
    # total adds up
    assert sum(sizes.values()) + ds.n_outliers == cfg.n_points


@given(configs())
@settings(max_examples=40, deadline=None)
def test_dimension_set_invariants(cfg):
    ds = SyntheticDataGenerator(cfg).generate()
    for cid, dims in ds.cluster_dimensions.items():
        assert 2 <= len(dims) <= cfg.n_dims
        assert len(set(dims)) == len(dims)
        assert all(0 <= j < cfg.n_dims for j in dims)
        assert tuple(sorted(dims)) == dims


@given(configs())
@settings(max_examples=20, deadline=None)
def test_determinism(cfg):
    a = SyntheticDataGenerator(cfg).generate()
    b = SyntheticDataGenerator(cfg).generate()  # fresh generator, same seed
    assert np.array_equal(a.points, b.points)
    assert np.array_equal(a.labels, b.labels)
    assert a.cluster_dimensions == b.cluster_dimensions
