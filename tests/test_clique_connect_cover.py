"""Unit tests for connectivity (clusters) and the greedy rectangle cover."""

import pytest

from repro.baselines.clique import Rectangle, Unit, connected_components, greedy_cover
from repro.exceptions import ParameterError


def u(dims, intervals):
    return Unit(dims=tuple(dims), intervals=tuple(intervals))


class TestConnectedComponents:
    def test_chain_is_one_component(self):
        units = [u([0], [1]), u([0], [2]), u([0], [3])]
        comps = connected_components(units, xi=10)
        assert len(comps) == 1
        assert len(comps[0]) == 3

    def test_gap_splits_components(self):
        units = [u([0], [1]), u([0], [3])]
        comps = connected_components(units, xi=10)
        assert len(comps) == 2

    def test_subspaces_never_merge(self):
        units = [u([0], [1]), u([1], [1])]
        comps = connected_components(units, xi=10)
        assert len(comps) == 2

    def test_l_shape_connected(self):
        units = [u([0, 1], [0, 0]), u([0, 1], [1, 0]), u([0, 1], [1, 1])]
        comps = connected_components(units, xi=10)
        assert len(comps) == 1

    def test_diagonal_not_connected(self):
        units = [u([0, 1], [0, 0]), u([0, 1], [1, 1])]
        comps = connected_components(units, xi=10)
        assert len(comps) == 2

    def test_deterministic_order(self):
        units = [u([1], [5]), u([0], [2]), u([0], [3])]
        a = connected_components(units, xi=10)
        b = connected_components(list(reversed(units)), xi=10)
        assert [set(c) for c in a] == [set(c) for c in b]


class TestRectangle:
    def test_n_units(self):
        r = Rectangle(dims=(0, 1), ranges=((0, 2), (5, 5)))
        assert r.n_units == 3

    def test_contains(self):
        r = Rectangle(dims=(0, 1), ranges=((0, 2), (5, 6)))
        assert r.contains(u([0, 1], [1, 5]))
        assert not r.contains(u([0, 1], [3, 5]))
        assert not r.contains(u([0], [1]))

    def test_units_enumeration(self):
        r = Rectangle(dims=(0,), ranges=((2, 4),))
        assert set(r.units()) == {u([0], [2]), u([0], [3]), u([0], [4])}

    def test_invalid_range(self):
        with pytest.raises(ParameterError):
            Rectangle(dims=(0,), ranges=((3, 1),))


class TestGreedyCover:
    def test_full_rectangle_single_cover(self):
        units = [u([0, 1], [i, j]) for i in range(2) for j in range(3)]
        rects = greedy_cover(units)
        assert len(rects) == 1
        assert rects[0].n_units == 6

    def test_l_shape_two_rectangles(self):
        units = [u([0, 1], [0, 0]), u([0, 1], [1, 0]), u([0, 1], [1, 1])]
        rects = greedy_cover(units)
        assert len(rects) == 2
        covered = set()
        for r in rects:
            covered |= set(r.units())
        assert covered == set(units)

    def test_cover_is_exact_on_component(self):
        """Cover includes every unit and nothing outside the component."""
        units = [u([0], [2]), u([0], [3]), u([0], [4])]
        rects = greedy_cover(units)
        covered = set()
        for r in rects:
            covered |= set(r.units())
        assert covered == set(units)

    def test_empty(self):
        assert greedy_cover([]) == []

    def test_mixed_subspaces_rejected(self):
        with pytest.raises(ParameterError, match="one subspace"):
            greedy_cover([u([0], [1]), u([1], [1])])

    def test_redundant_rectangle_removed(self):
        # a plus-shape: greedy growth may create overlapping rectangles;
        # the removal step must keep a cover without fully-redundant rects
        units = [
            u([0, 1], [1, 0]), u([0, 1], [1, 1]), u([0, 1], [1, 2]),
            u([0, 1], [0, 1]), u([0, 1], [2, 1]),
        ]
        rects = greedy_cover(units)
        covered = set()
        for r in rects:
            covered |= set(r.units())
        assert covered == set(units)
        # no rectangle may be fully covered by the union of the others
        for i, r in enumerate(rects):
            others = set()
            for j, o in enumerate(rects):
                if j != i:
                    others |= set(o.units())
            assert not set(r.units()) <= others
