"""Tests for the structured observability layer (repro.obs).

Covers the tracer/counters machinery, the JSONL schema validator, the
profile report plumbing through ``proclus`` and serialization, the CLI
flags, and — most importantly — the contract that tracing must not
perturb results: runs with tracing on are bit-identical to runs with
tracing off, across cache/parallel/restart configurations.
"""

import json
import logging

import numpy as np
import pytest

from repro import Tracer, get_tracer, proclus, use_tracer
from repro.cli import main as cli_main
from repro.core.serialization import load_result, save_result
from repro.data import generate
from repro.exceptions import DataError, ParameterError
from repro.obs import (
    NullTracer,
    TRACE_SCHEMA_VERSION,
    configure_logging,
    format_profile,
    get_logger,
    maybe_trace,
    monotonic_s,
    set_tracer,
    validate_trace_file,
    validate_trace_lines,
)


@pytest.fixture
def small_dataset():
    return generate(400, 8, 2, cluster_dim_counts=[3, 4],
                    outlier_fraction=0.05, seed=91)


# ----------------------------------------------------------------------
# Tracer mechanics
# ----------------------------------------------------------------------

class TestTracer:
    def test_span_nesting_records_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.phase("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.kind == "phase" and outer.kind == "span"
        assert inner.end_s >= inner.start_s

    def test_events_anchor_to_open_span(self):
        tracer = Tracer()
        tracer.event("orphan")
        with tracer.span("s"):
            tracer.event("tick", i=3)
        assert tracer.events[0].span_id is None
        assert tracer.events[1].span_id == tracer.spans[0].span_id
        assert tracer.events[1].attrs == {"i": 3}

    def test_counters_accumulate_and_unwrap_numpy(self):
        tracer = Tracer()
        tracer.count("rows", np.int64(5))
        tracer.count("rows", 2)
        tracer.count("other")
        assert tracer.counters.as_dict() == {"other": 1, "rows": 7}
        assert type(tracer.counters.get("rows")) is int

    def test_phase_seconds_sums_by_name(self):
        tracer = Tracer()
        for _ in range(2):
            with tracer.phase("iterative"):
                pass
        with tracer.span("not_a_phase"):
            pass
        seconds = tracer.phase_seconds()
        assert set(seconds) == {"iterative"}
        assert seconds["iterative"] >= 0.0

    def test_span_set_merges_exit_attrs(self):
        tracer = Tracer()
        with tracer.phase("p", k=2) as span:
            span.set(iterations=7)
        assert tracer.spans[0].attrs == {"k": 2, "iterations": 7}

    def test_max_records_cap_drops_and_reports(self):
        tracer = Tracer(max_records=3)
        for i in range(6):
            tracer.event("e", i=i)
        assert len(tracer.events) == 3
        assert tracer.profile()["dropped"] == 3

    def test_attrs_are_json_safe(self):
        tracer = Tracer()
        with tracer.span("s", arr=np.array([1, 2]), t=(1, 2), obj=object()):
            pass
        json.dumps(tracer.spans[0].as_dict())

    def test_clear_resets_everything(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.event("e")
        tracer.count("c")
        tracer.clear()
        assert not tracer.spans and not tracer.events
        assert tracer.counters.as_dict() == {}

    def test_logger_mirrors_phases_at_info(self, caplog):
        logger = logging.getLogger("repro.test-obs")
        tracer = Tracer(logger=logger)
        with caplog.at_level(logging.INFO, logger="repro.test-obs"):
            with tracer.phase("iterative"):
                pass
        assert any("iterative" in r.message for r in caplog.records)


class TestCurrentTracer:
    def test_default_is_null_and_nestable(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer) and not tracer.enabled
        with tracer.phase("p") as span:
            span.set(anything=1)  # no-op, must not raise
        assert tracer.profile() is None

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert not get_tracer().enabled

    def test_set_tracer_none_restores_null(self):
        previous = set_tracer(Tracer())
        try:
            assert get_tracer().enabled
        finally:
            set_tracer(previous)
        assert not get_tracer().enabled

    def test_maybe_trace_false_is_passthrough(self):
        with maybe_trace(False) as tracer:
            assert tracer is get_tracer()
            assert not tracer.enabled

    def test_maybe_trace_true_installs_fresh_tracer(self):
        with maybe_trace(True) as tracer:
            assert tracer.enabled and get_tracer() is tracer
        assert not get_tracer().enabled

    def test_maybe_trace_defers_to_ambient_tracer(self):
        ambient = Tracer()
        with use_tracer(ambient):
            with maybe_trace(True) as tracer:
                assert tracer is ambient

    def test_monotonic_seam_advances(self):
        t0 = monotonic_s()
        assert monotonic_s() >= t0


# ----------------------------------------------------------------------
# JSONL schema
# ----------------------------------------------------------------------

class TestTraceSchema:
    def _trace_lines(self):
        tracer = Tracer()
        with tracer.span("restarts"):
            with tracer.phase("iterative"):
                tracer.event("iteration", iteration=0)
        tracer.count("kernel.rows", 10)
        return [json.dumps(r, sort_keys=True) for r in tracer.iter_records()]

    def test_valid_trace_passes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(self._trace_lines()) + "\n")
        assert validate_trace_file(path) == 5

    def test_write_jsonl_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.phase("p"):
            tracer.event("e")
        tracer.count("c", 2)
        path = tracer.write_jsonl(tmp_path / "t.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == TRACE_SCHEMA_VERSION
        assert records[-1] == {"type": "counters", "values": {"c": 2}}

    def test_clean_trace_has_no_errors(self):
        assert validate_trace_lines(self._trace_lines()) == []

    def test_empty_trace_rejected(self):
        assert validate_trace_lines([]) == ["trace is empty"]

    def test_missing_meta_header_rejected(self):
        errors = validate_trace_lines(self._trace_lines()[1:])
        assert any("meta header" in e for e in errors)

    def test_garbage_json_rejected(self):
        lines = self._trace_lines()
        lines[1] = "{not json"
        errors = validate_trace_lines(lines)
        assert any("not valid JSON" in e for e in errors)

    def test_span_with_negative_duration_rejected(self):
        lines = self._trace_lines()
        record = json.loads(lines[1])
        assert record["type"] == "span"
        record["end_s"] = record["start_s"] - 1.0
        lines[1] = json.dumps(record)
        errors = validate_trace_lines(lines)
        assert any("ends before it starts" in e for e in errors)

    def test_schema_version_mismatch_rejected(self):
        lines = self._trace_lines()
        meta = json.loads(lines[0])
        meta["schema"] = TRACE_SCHEMA_VERSION + 1
        lines[0] = json.dumps(meta)
        errors = validate_trace_lines(lines)
        assert any("schema version" in e for e in errors)

    def test_validate_file_raises_with_problem_preview(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n')
        with pytest.raises(DataError, match="violates the trace schema"):
            validate_trace_file(bad)


# ----------------------------------------------------------------------
# Logging bridge
# ----------------------------------------------------------------------

class TestLogBridge:
    def test_unknown_level_rejected(self):
        with pytest.raises(ParameterError, match="log level"):
            configure_logging("LOUD")

    def test_configure_is_idempotent(self):
        logger = logging.getLogger("repro")
        before = len(logger.handlers)
        configure_logging("INFO")
        configure_logging("DEBUG")
        added = len(logger.handlers) - before
        assert added <= 1
        for handler in logger.handlers[before:]:
            logger.removeHandler(handler)

    def test_get_logger_namespaced(self):
        assert get_logger("cli").name == "repro.cli"
        assert get_logger().name == "repro"


# ----------------------------------------------------------------------
# Profile plumbing + the bit-identity contract
# ----------------------------------------------------------------------

class TestProfilePlumbing:
    def test_profile_off_by_default(self, small_dataset):
        result = proclus(small_dataset.points, 2, 3, seed=4)
        assert result.profile is None
        assert result.to_dict()["profile"] is None

    def test_profile_report_contents(self, small_dataset):
        result = proclus(small_dataset.points, 2, 3, seed=4, profile=True)
        profile = result.profile
        assert profile["schema"] == TRACE_SCHEMA_VERSION
        assert {"initialization", "iterative",
                "refinement"} <= set(profile["phase_seconds"])
        counters = profile["counters"]
        assert counters["kernel.segmental_rows"] > 0
        assert counters["kernel.distance_rows"] > 0
        assert profile["n_spans"] > 0 and profile["n_events"] > 0
        json.dumps(profile)  # JSON-safe by construction

    def test_cache_counters_present_when_caching(self, small_dataset):
        result = proclus(small_dataset.points, 2, 3, seed=4, profile=True,
                         cache=True)
        counters = result.profile["counters"]
        assert counters["cache.segmental_served"] > 0

    def test_profile_survives_to_dict_and_save_load(self, small_dataset,
                                                    tmp_path):
        result = proclus(small_dataset.points, 2, 3, seed=4, profile=True)
        assert result.to_dict()["profile"]["counters"] == \
            result.profile["counters"]
        path = save_result(result, tmp_path / "res.npz")
        loaded = load_result(path)
        assert loaded.profile == json.loads(json.dumps(result.profile))

    def test_parallel_restarts_nest_winner_profile(self, small_dataset):
        result = proclus(small_dataset.points, 2, 3, seed=4, restarts=3,
                         n_jobs=2, profile=True)
        winner = result.profile["winner"]
        assert {"initialization", "iterative",
                "refinement"} <= set(winner["phase_seconds"])

    def test_format_profile_renders(self, small_dataset):
        result = proclus(small_dataset.points, 2, 3, seed=4, restarts=2,
                         n_jobs=2, profile=True)
        text = format_profile(result.profile)
        assert "phase seconds" in text
        assert "counters" in text
        assert "winner" in text

    def test_ambient_tracer_collects_without_profile_flag(self, small_dataset):
        tracer = Tracer()
        with use_tracer(tracer):
            result = proclus(small_dataset.points, 2, 3, seed=4)
        assert result.profile is not None
        assert tracer.counters.get("kernel.segmental_rows") > 0


class TestTracingBitIdentity:
    """Tracing must never perturb results — the layer's core contract."""

    CONFIGS = [
        dict(),
        dict(cache=False),
        dict(metric="manhattan"),
        dict(restarts=3),
        dict(restarts=3, n_jobs=2),
        dict(restarts=2, n_jobs=2, cache=False),
    ]

    @pytest.mark.parametrize("config", CONFIGS,
                             ids=lambda c: ",".join(f"{k}={v}" for k, v
                                                    in c.items()) or "plain")
    def test_traced_equals_untraced(self, small_dataset, config):
        X = small_dataset.points
        for seed in (0, 17):
            plain = proclus(X, 2, 3, seed=seed, **config)
            traced = proclus(X, 2, 3, seed=seed, profile=True, **config)
            assert np.array_equal(plain.labels, traced.labels)
            assert np.array_equal(plain.medoid_indices,
                                  traced.medoid_indices)
            assert plain.dimensions == traced.dimensions
            assert plain.objective == traced.objective
            assert plain.iterative_objective == traced.iterative_objective
            assert plain.objective_history == traced.objective_history


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------

class TestCliObservability:
    @pytest.fixture
    def csv_path(self, tmp_path):
        out = tmp_path / "data.csv"
        assert cli_main(["generate", str(out), "--n-points", "300",
                         "--n-dims", "8", "--n-clusters", "2",
                         "--seed", "3"]) == 0
        return out

    def test_run_alias_matches_cluster(self, csv_path, capsys):
        assert cli_main(["run", str(csv_path), "-k", "2", "-l", "3",
                         "--seed", "5"]) == 0
        run_out = capsys.readouterr().out
        assert cli_main(["cluster", str(csv_path), "-k", "2", "-l", "3",
                         "--seed", "5"]) == 0
        assert capsys.readouterr().out == run_out

    def test_profile_flag_prints_report(self, csv_path, capsys):
        assert cli_main(["run", str(csv_path), "-k", "2", "-l", "3",
                         "--seed", "5", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "phase seconds" in out
        assert "kernel.segmental_rows" in out

    def test_trace_file_written_and_valid(self, csv_path, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert cli_main(["run", str(csv_path), "-k", "2", "-l", "3",
                         "--seed", "5", "--trace-file", str(trace)]) == 0
        assert validate_trace_file(trace) > 0
        assert str(trace) in capsys.readouterr().out

    def test_trace_module_validator_cli(self, csv_path, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main
        trace = tmp_path / "trace.jsonl"
        cli_main(["run", str(csv_path), "-k", "2", "-l", "3", "--seed", "5",
                  "--trace-file", str(trace)])
        capsys.readouterr()
        assert obs_main([str(trace)]) == 0
        assert "ok" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n')
        assert obs_main([str(bad)]) == 1

    def test_log_level_emits_phase_lines(self, csv_path, capsys):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            assert cli_main(["run", str(csv_path), "-k", "2", "-l", "3",
                             "--seed", "5", "--log-level", "INFO"]) == 0
            err = capsys.readouterr().err
            assert "phase iterative" in err
        finally:
            for handler in list(logger.handlers):
                if handler not in before:
                    logger.removeHandler(handler)

    def test_profile_results_match_unprofiled(self, csv_path, capsys):
        assert cli_main(["cluster", str(csv_path), "-k", "2", "-l", "3",
                         "--seed", "5"]) == 0
        plain = capsys.readouterr().out
        assert cli_main(["cluster", str(csv_path), "-k", "2", "-l", "3",
                         "--seed", "5", "--profile"]) == 0
        profiled = capsys.readouterr().out
        # the summary section must be identical; profile is additive
        assert plain.splitlines()[0] in profiled
        for line in plain.splitlines():
            if line.startswith("  cluster"):
                assert line in profiled
