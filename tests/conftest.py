"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, generate


@pytest.fixture
def rng():
    """A fixed-seed generator for ad-hoc randomness in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_projected_dataset() -> Dataset:
    """A small, easy dataset: 3 well-separated projected clusters.

    600 points in 10 dimensions; clusters of dimensionality 3, 3, 4;
    5% outliers.  Deterministic (seed pinned).
    """
    return generate(
        600, 10, 3,
        cluster_dim_counts=[3, 3, 4],
        outlier_fraction=0.05,
        seed=202,
    )


@pytest.fixture
def two_cluster_points() -> np.ndarray:
    """Two hand-built projected clusters in 4-D, 40 points each.

    Cluster 0 is tight on dims (0, 1) and uniform on (2, 3);
    cluster 1 is tight on dims (2, 3) and uniform on (0, 1).
    """
    rng = np.random.default_rng(7)
    a = np.empty((40, 4))
    a[:, 0] = rng.normal(20.0, 0.5, 40)
    a[:, 1] = rng.normal(80.0, 0.5, 40)
    a[:, 2] = rng.uniform(0, 100, 40)
    a[:, 3] = rng.uniform(0, 100, 40)
    b = np.empty((40, 4))
    b[:, 0] = rng.uniform(0, 100, 40)
    b[:, 1] = rng.uniform(0, 100, 40)
    b[:, 2] = rng.normal(50.0, 0.5, 40)
    b[:, 3] = rng.normal(10.0, 0.5, 40)
    return np.vstack([a, b])
