"""Chaos suite: PROCLUS under fault injection (run with ``-m chaos``).

Every fault plan in the standard matrix is applied to a clean workload
and fed to :func:`repro.proclus` with the robustness features on.  The
contract: the call either returns a well-formed, labelled result (with
``degraded``/``warnings`` populated whenever a fallback fired) or raises
a typed :class:`~repro.exceptions.ReproError` — never a bare numpy
error, hang, or silent garbage.
"""

import time

import numpy as np
import pytest

from repro import proclus
from repro.data import generate
from repro.exceptions import ReproError
from repro.robustness import standard_fault_matrix

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.filterwarnings(
        "ignore::repro.exceptions.SanitizationWarning"),
]


@pytest.fixture(scope="module")
def workload():
    return generate(600, 8, 3, cluster_dim_counts=[3, 3, 3],
                    outlier_fraction=0.05, seed=17)


FAST = dict(max_bad_tries=3, max_iterations=40, keep_history=False)


def _assert_well_formed(result, n_points, k):
    assert result.labels.shape == (n_points,)
    valid = set(range(result.k)) | {-1}
    assert set(np.unique(result.labels)) <= valid
    assert result.k <= k
    assert np.isfinite(result.objective)
    assert np.all(np.isfinite(result.medoids))


@pytest.mark.parametrize(
    "plan", standard_fault_matrix(max_combination=2),
    ids=lambda p: p.name,
)
def test_fault_matrix_survived(workload, plan):
    X = plan.apply(workload.points, seed=23)
    try:
        result = proclus(
            X, 3, 3, seed=23,
            on_bad_values="drop", collapse_duplicates=True,
            auto_degrade=True, **FAST,
        )
    except ReproError:
        return  # a typed failure is an acceptable outcome
    _assert_well_formed(result, X.shape[0], 3)
    # every fault in the matrix dirties the data somehow; if a fallback
    # or sanitizer fired, the result must say so
    if result.degraded:
        assert result.warnings or result.sanitization.changed


@pytest.mark.parametrize("policy", ["drop", "impute_median", "clip"])
def test_every_policy_handles_nan_faults(workload, policy):
    plan = [p for p in standard_fault_matrix(max_combination=1)
            if p.name == "nan_rows"][0]
    X = plan.apply(workload.points, seed=5)
    result = proclus(X, 3, 3, seed=5, on_bad_values=policy,
                     auto_degrade=True, **FAST)
    _assert_well_formed(result, X.shape[0], 3)
    assert result.degraded
    rep = result.sanitization
    if policy == "drop":
        assert (result.labels[rep.dropped_rows] == -1).all()
    else:
        assert rep.n_imputed_cells + rep.n_clipped_cells > 0


def test_unsanitized_faulty_input_raises_typed(workload):
    plan = [p for p in standard_fault_matrix(max_combination=1)
            if p.name == "nan_rows"][0]
    X = plan.apply(workload.points, seed=5)
    with pytest.raises(ReproError):
        proclus(X, 3, 3, seed=5, **FAST)


def test_deadline_on_fig7_workload():
    """The acceptance bound: a Fig. 7-scale fit under a 50 ms budget
    must come back via the deadline path in well under 3x the budget."""
    ds = generate(2500, 20, 5, cluster_dim_counts=[5] * 5,
                  outlier_fraction=0.05, seed=7)
    budget = 0.05
    t0 = time.perf_counter()
    result = proclus(
        ds.points, 5, 5, seed=7,
        max_bad_tries=10**6, max_iterations=10**6,
        time_budget_s=budget, keep_history=False,
    )
    elapsed = time.perf_counter() - t0
    assert result.terminated_by == "deadline"
    assert result.labels.shape == (2500,)
    assert np.isfinite(result.objective)
    assert elapsed < 3 * budget + 2.0  # slack for the non-interruptible
    # first iteration + refinement pass on slow CI machines


def test_deadline_skips_remaining_restarts():
    ds = generate(800, 10, 3, cluster_dim_counts=[4] * 3, seed=11)
    result = proclus(
        ds.points, 3, 4, seed=11, restarts=50,
        max_bad_tries=10**6, max_iterations=10**6,
        time_budget_s=0.05, keep_history=False,
    )
    assert result.terminated_by == "deadline"
    assert any("restarts" in w for w in result.warnings)


def test_deadline_mid_restart_fanout():
    """Budget expiry while restarts are fanned out over processes.

    Workers self-terminate on their forwarded remaining-seconds budget
    and the parent cancels not-yet-started restarts, so the call must
    still return a well-formed best-so-far result with the same budget
    note the serial loop produces.
    """
    ds = generate(800, 10, 3, cluster_dim_counts=[4] * 3, seed=11)
    result = proclus(
        ds.points, 3, 4, seed=11, restarts=50, n_jobs=2,
        max_bad_tries=10**6, max_iterations=10**6,
        time_budget_s=0.05, keep_history=False,
    )
    assert result.terminated_by == "deadline"
    assert result.labels.shape == (800,)
    assert np.isfinite(result.objective)
    notes = [w for w in result.warnings
             if "time budget exhausted" in w
             and "returning the best completed run" in w]
    assert len(notes) == 1
    p = result.parallelism
    assert p["n_jobs"] == 2
    assert p["restarts_completed"] < 50
