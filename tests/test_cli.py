"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import load_csv


class TestParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        parser.parse_args(["generate", "out.csv", "--n-points", "100"])
        parser.parse_args(["cluster", "in.csv", "-k", "3", "-l", "4"])
        parser.parse_args(["cluster", "in.csv", "-k", "3", "-l", "4",
                           "--restarts", "3", "--n-jobs", "2"])
        parser.parse_args(["clique", "in.csv", "--tau-percent", "0.5"])
        parser.parse_args(["experiment", "table1"])
        parser.parse_args(["list"])

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEndToEnd:
    def test_generate_then_cluster(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        rc = main(["generate", str(out), "--n-points", "400",
                   "--n-dims", "8", "--n-clusters", "2",
                   "--cluster-dims", "3", "3", "--seed", "5"])
        assert rc == 0
        ds = load_csv(out)
        assert ds.n_points == 400

        rc = main(["cluster", str(out), "-k", "2", "-l", "3", "--seed", "5"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "PROCLUS result" in captured
        assert "adjusted Rand index" in captured

    def test_clique_command(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        main(["generate", str(out), "--n-points", "300", "--n-dims", "6",
              "--n-clusters", "2", "--cluster-dims", "2", "2", "--seed", "3"])
        rc = main(["clique", str(out), "--tau-percent", "2.0",
                   "--max-dim", "2"])
        assert rc == 0
        assert "CLIQUE result" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig7" in out

    def test_experiment_command(self, capsys):
        rc = main(["experiment", "theorem31", "--n-points", "1000"])
        assert rc == 0
        assert "Theorem 3.1" in capsys.readouterr().out

    def test_cluster_without_labels_skips_confusion(self, tmp_path, capsys):
        import numpy as np
        from repro.data import Dataset, save_csv
        rng = np.random.default_rng(0)
        ds = Dataset(points=rng.uniform(0, 100, size=(200, 5)))
        path = tmp_path / "blind.csv"
        save_csv(ds, path)
        rc = main(["cluster", str(path), "-k", "2", "-l", "2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PROCLUS result" in out
        assert "adjusted Rand" not in out

    def test_generate_named_workload(self, tmp_path, capsys):
        out = tmp_path / "cf.csv"
        rc = main(["generate", str(out), "--workload",
                   "collaborative-filtering", "--seed", "4"])
        assert rc == 0
        ds = load_csv(out)
        assert ds.n_dims == 16  # product categories
        assert ds.n_clusters == 4

    def test_sweep_command(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        main(["generate", str(out), "--n-points", "500", "--n-dims", "8",
              "--n-clusters", "2", "--cluster-dims", "3", "3",
              "--seed", "5"])
        rc = main(["sweep", str(out), "-k", "2",
                   "--l-values", "2", "3", "--k-values", "2", "3",
                   "--seed", "5"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "sweep over l" in text
        assert "picked l" in text
        assert "sweep over k" in text

    def test_orclus_command(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        main(["generate", str(out), "--n-points", "400", "--n-dims", "8",
              "--n-clusters", "2", "--cluster-dims", "3", "3",
              "--seed", "6"])
        rc = main(["orclus", str(out), "-k", "2", "-l", "3", "--seed", "6"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "ORCLUS" in text
        assert "adjusted Rand index" in text

    def test_cluster_with_restarts_and_n_jobs(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        main(["generate", str(out), "--n-points", "400", "--n-dims", "8",
              "--n-clusters", "2", "--cluster-dims", "3", "3", "--seed", "5"])
        capsys.readouterr()
        rc = main(["cluster", str(out), "-k", "2", "-l", "3", "--seed", "5",
                   "--restarts", "2", "--n-jobs", "2"])
        assert rc == 0
        parallel_out = capsys.readouterr().out
        assert "PROCLUS result" in parallel_out
        # bit-identity holds through the CLI: the serial run prints the
        # same summary (modulo the parallelism diagnostics, not printed)
        rc = main(["cluster", str(out), "-k", "2", "-l", "3", "--seed", "5",
                   "--restarts", "2"])
        assert rc == 0
        assert capsys.readouterr().out == parallel_out

    def test_cluster_rejects_bad_n_jobs(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        main(["generate", str(out), "--n-points", "200", "--n-dims", "6",
              "--n-clusters", "2", "--cluster-dims", "2", "2", "--seed", "5"])
        capsys.readouterr()
        rc = main(["cluster", str(out), "-k", "2", "-l", "2", "--seed", "5",
                   "--n-jobs", "0"])
        assert rc == 2
        assert "n_jobs" in capsys.readouterr().err

    def test_experiment_n_jobs_unsupported_is_typed_error(self, capsys):
        # theorem31 takes no n_jobs parameter -> ParameterError, exit 2
        rc = main(["experiment", "theorem31", "--n-points", "1000",
                   "--n-jobs", "2"])
        assert rc == 2
        assert "does not support --n-jobs" in capsys.readouterr().err

    def test_experiment_n_jobs_supported(self, capsys):
        rc = main(["experiment", "ablation-mindev", "--n-points", "600",
                   "--n-jobs", "2"])
        assert rc == 0
        assert "min_deviation" in capsys.readouterr().out

    def test_stability_command(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        main(["generate", str(out), "--n-points", "400", "--n-dims", "8",
              "--n-clusters", "2", "--cluster-dims", "3", "3",
              "--seed", "7"])
        rc = main(["stability", str(out), "-k", "2", "-l", "3",
                   "--n-runs", "2", "--seed", "7"])
        assert rc == 0
        assert "stability over 2 runs" in capsys.readouterr().out
