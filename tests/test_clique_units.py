"""Unit tests for CLIQUE units (subspace grid cells)."""

import pytest

from repro.baselines.clique import Unit
from repro.exceptions import ParameterError


class TestConstruction:
    def test_basic(self):
        u = Unit(dims=(0, 3), intervals=(2, 7))
        assert u.dimensionality == 2
        assert u.subspace == (0, 3)

    def test_misaligned_rejected(self):
        with pytest.raises(ParameterError, match="align"):
            Unit(dims=(0, 1), intervals=(2,))

    def test_unsorted_dims_rejected(self):
        with pytest.raises(ParameterError, match="strictly increasing"):
            Unit(dims=(3, 0), intervals=(1, 2))

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ParameterError, match="strictly increasing"):
            Unit(dims=(1, 1), intervals=(0, 0))

    def test_empty_rejected(self):
        with pytest.raises(ParameterError, match="at least one"):
            Unit(dims=(), intervals=())

    def test_hashable_value_object(self):
        a = Unit(dims=(0, 2), intervals=(1, 5))
        b = Unit(dims=(0, 2), intervals=(1, 5))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestFaces:
    def test_two_dim_unit_has_two_faces(self):
        u = Unit(dims=(0, 2), intervals=(1, 5))
        faces = set(u.faces())
        assert faces == {
            Unit(dims=(2,), intervals=(5,)),
            Unit(dims=(0,), intervals=(1,)),
        }

    def test_one_dim_unit_has_no_faces(self):
        assert list(Unit(dims=(0,), intervals=(3,)).faces()) == []

    def test_face_count_equals_dimensionality(self):
        u = Unit(dims=(0, 1, 2, 5), intervals=(1, 2, 3, 4))
        assert len(list(u.faces())) == 4


class TestAdjacency:
    def test_adjacent_one_step(self):
        a = Unit(dims=(0, 1), intervals=(3, 3))
        b = Unit(dims=(0, 1), intervals=(3, 4))
        assert a.is_adjacent(b)
        assert b.is_adjacent(a)

    def test_not_adjacent_diagonal(self):
        a = Unit(dims=(0, 1), intervals=(3, 3))
        b = Unit(dims=(0, 1), intervals=(4, 4))
        assert not a.is_adjacent(b)

    def test_not_adjacent_two_steps(self):
        a = Unit(dims=(0,), intervals=(3,))
        b = Unit(dims=(0,), intervals=(5,))
        assert not a.is_adjacent(b)

    def test_different_subspaces_never_adjacent(self):
        a = Unit(dims=(0,), intervals=(3,))
        b = Unit(dims=(1,), intervals=(3,))
        assert not a.is_adjacent(b)

    def test_self_not_adjacent(self):
        a = Unit(dims=(0,), intervals=(3,))
        assert not a.is_adjacent(a)


class TestNeighbours:
    def test_interior_unit(self):
        u = Unit(dims=(0, 1), intervals=(5, 5))
        nbs = set(u.neighbours(xi=10))
        assert len(nbs) == 4
        assert all(u.is_adjacent(n) for n in nbs)

    def test_corner_unit_clipped(self):
        u = Unit(dims=(0, 1), intervals=(0, 0))
        nbs = list(u.neighbours(xi=10))
        assert len(nbs) == 2

    def test_xi_one_has_no_neighbours(self):
        u = Unit(dims=(0,), intervals=(0,))
        assert list(u.neighbours(xi=1)) == []

    def test_interval_on(self):
        u = Unit(dims=(1, 4), intervals=(2, 9))
        assert u.interval_on(4) == 9
        with pytest.raises(ParameterError, match="not constrained"):
            u.interval_on(0)
