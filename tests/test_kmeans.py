"""Unit tests for k-means (Lloyd + k-means++)."""

import numpy as np
import pytest

from repro.baselines import KMeans, kmeans
from repro.baselines.kmeans import kmeans_pp_init
from repro.exceptions import ParameterError
from repro.metrics import purity


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(11)
    centers = np.array([[0.0, 0.0], [40.0, 0.0], [0.0, 40.0], [40.0, 40.0]])
    pts = np.vstack([c + rng.normal(0, 1.0, size=(50, 2)) for c in centers])
    labels = np.repeat([0, 1, 2, 3], 50)
    return pts, labels


class TestKMeansPP:
    def test_returns_k_centroids(self, blobs):
        pts, _ = blobs
        c = kmeans_pp_init(pts, 4, np.random.default_rng(0))
        assert c.shape == (4, 2)

    def test_spreads_over_blobs(self, blobs):
        """Seeding should usually land in >= 3 distinct blobs."""
        pts, true = blobs
        rng = np.random.default_rng(1)
        c = kmeans_pp_init(pts, 4, rng)
        dist = np.linalg.norm(pts[:, None] - c[None], axis=2)
        blob_hits = {int(true[int(np.argmin(dist[:, j]))]) for j in range(4)}
        assert len(blob_hits) >= 3

    def test_identical_points_fallback(self):
        pts = np.zeros((10, 2))
        c = kmeans_pp_init(pts, 3, np.random.default_rng(2))
        assert c.shape == (3, 2)


class TestKMeans:
    def test_separates_blobs(self, blobs):
        pts, true = blobs
        result = kmeans(pts, 4, seed=3)
        assert purity(result.labels, true) > 0.95

    def test_inertia_decreases(self, blobs):
        pts, _ = blobs
        result = kmeans(pts, 4, n_init=1, seed=3)
        hist = result.inertia_history
        assert all(a >= b - 1e-9 for a, b in zip(hist, hist[1:]))

    def test_converged_flag(self, blobs):
        pts, _ = blobs
        result = kmeans(pts, 4, max_iter=100, seed=3)
        assert result.converged

    def test_max_iter_respected(self, blobs):
        pts, _ = blobs
        result = kmeans(pts, 4, max_iter=1, n_init=1, seed=3)
        assert result.n_iterations == 1

    def test_deterministic(self, blobs):
        pts, _ = blobs
        a = kmeans(pts, 4, seed=7)
        b = kmeans(pts, 4, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_negative_tol_rejected(self, blobs):
        pts, _ = blobs
        with pytest.raises(ParameterError):
            kmeans(pts, 2, tol=-1.0)

    def test_no_empty_clusters(self, blobs):
        pts, _ = blobs
        result = kmeans(pts, 4, seed=9)
        assert len(np.unique(result.labels)) == 4

    def test_estimator(self, blobs):
        pts, true = blobs
        labels = KMeans(4, seed=1).fit_predict(pts)
        assert purity(labels, true) > 0.95
